"""Table 2 — execution time vs the PLM (timed variants).

Runs the full PLM suite on the KCM and PLM configurations and asserts
the paper's shape: KCM wins on every program, average ratio about 3,
every ratio within the paper's 1.4-4.2 band (plus slack), query the
weakest win, the differentiation family among the strongest.
"""

import pytest

from repro.bench import paper_data
from repro.bench.programs import SUITE_ORDER


def test_table2_full(benchmark, kcm_runner, plm_runner):
    def measure():
        rows = {}
        for name in SUITE_ORDER:
            kcm = kcm_runner.run(name, "timed")
            plm = plm_runner.run(name, "timed")
            rows[name] = (plm.milliseconds / kcm.milliseconds,
                          kcm.klips, plm.klips)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print(f"\n{'program':10s} {'PLM/KCM':>8s} {'paper':>7s} "
          f"{'KCM Klips':>10s} {'PLM Klips':>10s}")
    for name, (ratio, kcm_klips, plm_klips) in rows.items():
        paper = paper_data.TABLE2[name].ratio
        print(f"{name:10s} {ratio:8.2f} {paper:7.2f} "
              f"{kcm_klips:10.1f} {plm_klips:10.1f}")

    ratios = {name: row[0] for name, row in rows.items()}
    average = sum(ratios.values()) / len(ratios)

    # KCM wins everywhere.
    assert all(r > 1.0 for r in ratios.values())
    # Average ratio ~3 (paper 3.05).
    assert average == pytest.approx(paper_data.TABLE2_AVG_RATIO, rel=0.25)
    # Every program inside a widened version of the paper's band.
    assert all(1.2 <= r <= 5.5 for r in ratios.values()), ratios
    # query is the weakest win (paper: 1.38, the minimum row).
    assert ratios["query"] == min(ratios.values())
    # The differentiation family sits above average (paper: 4.18/4.02).
    assert ratios["divide10"] > average

    benchmark.extra_info["average_ratio"] = round(average, 2)
    benchmark.extra_info["paper_average"] = paper_data.TABLE2_AVG_RATIO


@pytest.mark.parametrize("name", ["nrev1", "hanoi", "query"])
def test_kcm_klips_magnitude(kcm_runner, name):
    """KCM's own Table 2 Klips stay in the paper's order of magnitude."""
    result = kcm_runner.run(name, "timed")
    paper = paper_data.TABLE2[name].kcm_klips
    assert 0.4 * paper <= result.klips <= 2.2 * paper
