"""Query-service throughput: compile-once cache + worker pool vs the
seed per-query path.

Measures end-to-end queries/sec over a short-query-heavy PLM-suite
batch under the seed path (recompile + fresh machine per query), the
warm in-process service (``workers=0``) and multiprocess pools of
increasing size, cross-checking on every pass that all modes produce
identical solutions and bit-identical simulated statistics (see
repro/bench/parallel_service.py and docs/SERVING.md).  Emits
``BENCH_parallel_service.json``; the committed copy at the repository
root is the CI regression baseline, gated on the dimensionless
speedup-vs-naive ratio so runner hardware does not matter.

Run under pytest-benchmark (``pytest benchmarks/bench_parallel_service.py
--benchmark-only``) or standalone for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_parallel_service.py --quick \
        --baseline BENCH_parallel_service.json
"""

from __future__ import annotations

import argparse
import sys


def _report(report: dict) -> None:
    batch = report["batch"]
    cores = report.get("host", {}).get("cpu_count", "?")
    print(f"\n  batch: {batch['queries']} queries over "
          f"{len(batch['programs'])} programs "
          f"(short x{batch['short_reps']}), host cores: {cores}")
    print(f"  {'mode':>20} {'seconds':>9} {'queries/s':>10} "
          f"{'vs naive':>9}")
    for mode, row in report["modes"].items():
        print(f"  {mode:>20} {row['seconds']:>9.3f} "
              f"{row['queries_per_second']:>10.1f} "
              f"{row['speedup_vs_naive']:>8.2f}x")
    gate = report["gate"]
    print(f"  gate: {gate['mode']} at {gate['speedup_vs_naive']:.2f}x "
          f"vs naive")
    beats = gate.get("beats_cached", {})
    if beats:
        verdicts = ", ".join(f"{mode} {'beats' if won else 'LOSES TO'} "
                             f"cached_sequential"
                             for mode, won in sorted(beats.items()))
        print(f"  gate: {verdicts}")


# -- pytest-benchmark harness ------------------------------------------------

def test_parallel_service(benchmark):
    from repro.bench.parallel_service import QUICK_PROGRAMS, QUICK_REPS, \
        measure_service

    report = benchmark.pedantic(
        lambda: measure_service(programs=QUICK_PROGRAMS, short_reps=2,
                                reps=QUICK_REPS, workers=(2,)),
        rounds=1, iterations=1)
    _report(report)
    benchmark.extra_info["gate_speedup"] = \
        report["gate"]["speedup_vs_naive"]
    assert report["identity_checked"]
    # Amortizing compilation and engine construction must actually
    # pay: a service slower than recompiling per query is pointless.
    assert report["modes"]["cached_sequential"]["speedup_vs_naive"] > 1.0
    # With real cores available, parallelism must pay too: a pool of 2
    # that loses to one warm worker is pure dispatch overhead.  (On a
    # single-core runner this is perf-dependent, so it only gates when
    # the hardware can actually run workers in parallel.)
    import os
    if (os.cpu_count() or 1) >= 2:
        from repro.bench.parallel_service import check_beats_cached
        check_beats_cached(report, min_workers=2)


# -- standalone CI smoke -----------------------------------------------------

def main(argv=None) -> int:
    from repro.bench.parallel_service import (
        FULL_REPS, FULL_SHORT_REPS, QUICK_PROGRAMS, QUICK_REPS,
        SERVING_PROGRAMS, check_beats_cached, check_regression,
        measure_service, write_report,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short programs, fewer reps (CI smoke)")
    parser.add_argument("--output", default="BENCH_parallel_service.json",
                        help="where to write the JSON report")
    parser.add_argument("--baseline", default=None,
                        help="committed report to gate the speedup "
                             "ratio against")
    parser.add_argument("--max-regression", type=float, default=0.35,
                        help="allowed fractional loss of the committed "
                             "speedup ratio (default 0.35)")
    parser.add_argument("--workers", type=int, nargs="+",
                        default=[1, 2, 4],
                        help="pool sizes to measure (default 1 2 4)")
    parser.add_argument("--require-beats-cached", type=int, default=None,
                        metavar="N",
                        help="fail unless every service_wN with N >= "
                             "this beats cached_sequential in qps")
    args = parser.parse_args(argv)

    programs = QUICK_PROGRAMS if args.quick else SERVING_PROGRAMS
    reps = QUICK_REPS if args.quick else FULL_REPS
    short_reps = 4 if args.quick else FULL_SHORT_REPS
    report = measure_service(programs=programs, reps=reps,
                             short_reps=short_reps,
                             workers=tuple(args.workers))
    _report(report)
    # Gate against the baseline BEFORE writing: --output may name the
    # same file (the docstring example does), and writing first would
    # make the regression check compare the report against itself.
    gate_failure = None
    gate_message = None
    if args.baseline:
        try:
            gate_message = check_regression(report, args.baseline,
                                            args.max_regression)
        except AssertionError as exc:
            gate_failure = exc
    write_report(report, args.output)
    print(f"\n  report written to {args.output}")
    if gate_message:
        print("  " + gate_message)
    if gate_failure is not None:
        raise gate_failure
    if args.require_beats_cached is not None:
        print("  " + check_beats_cached(
            report, min_workers=args.require_beats_cached))
    return 0


if __name__ == "__main__":
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    os.pardir, "src"))
    sys.exit(main())
