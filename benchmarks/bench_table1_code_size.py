"""Table 1 — static code size: PLM vs SPUR vs KCM.

Regenerates every row of the paper's Table 1 and asserts the headline
averages: KCM/PLM instructions ~1.1, KCM/PLM bytes ~3, SPUR/KCM
instructions ~13.6, SPUR/KCM bytes ~6.4.
"""

import pytest

from repro.bench import paper_data
from repro.bench.programs import SUITE, SUITE_ORDER
from repro.api import compile_and_load
from repro.baselines.plm import PLMCodeModel
from repro.baselines.spur import SPURCodeModel


def test_table1_full(benchmark):
    from repro.bench.tables import table1
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    print("\n" + result.render())

    instr_ratios = [row["kcm_plm_instr_ratio"]
                    for row in result.data.values()]
    byte_ratios = [row["kcm_plm_byte_ratio"]
                   for row in result.data.values()]
    spur_instr = [row["spur_kcm_instr_ratio"]
                  for row in result.data.values()]
    spur_bytes = [row["spur_kcm_byte_ratio"]
                  for row in result.data.values()]

    avg = lambda xs: sum(xs) / len(xs)
    # Paper: 1.10 / 2.96 / 13.61 / 6.43.
    assert avg(instr_ratios) == pytest.approx(
        paper_data.TABLE1_AVG_KCM_PLM_INSTR, abs=0.25)
    assert avg(byte_ratios) == pytest.approx(
        paper_data.TABLE1_AVG_KCM_PLM_BYTES, abs=0.8)
    assert avg(spur_instr) == pytest.approx(
        paper_data.TABLE1_AVG_SPUR_KCM_INSTR, rel=0.25)
    assert avg(spur_bytes) == pytest.approx(
        paper_data.TABLE1_AVG_SPUR_KCM_BYTES, rel=0.25)

    benchmark.extra_info["avg_kcm_plm_instr"] = round(avg(instr_ratios), 2)
    benchmark.extra_info["avg_kcm_plm_bytes"] = round(avg(byte_ratios), 2)
    benchmark.extra_info["avg_spur_kcm_instr"] = round(avg(spur_instr), 2)
    benchmark.extra_info["avg_spur_kcm_bytes"] = round(avg(spur_bytes), 2)


@pytest.mark.parametrize("name", ["nrev1", "qs4"])
def test_cdr_coding_hurts_kcm_on_long_static_lists(name):
    """Section 4.1: 'high ratios for nrev1 and qs4 which include long
    input lists' — cdr-coding lets the PLM compile a static list cell
    in one instruction vs two on KCM."""
    benchmark_def = SUITE[name]
    image = compile_and_load(benchmark_def.source_timed,
                             benchmark_def.query_timed).image
    plm = PLMCodeModel().measure(image, benchmark_def.source_timed,
                                 benchmark_def.query_timed)
    ratio = image.program_instructions / plm.instructions
    assert ratio > 1.15                  # clearly above the 1.10 average


def test_compile_throughput(benchmark):
    """How fast the toolchain itself compiles the whole suite."""
    def compile_suite():
        total = 0
        for name in SUITE_ORDER:
            b = SUITE[name]
            total += compile_and_load(
                b.source_timed, b.query_timed).image.program_words
        return total
    words = benchmark.pedantic(compile_suite, rounds=1, iterations=1)
    assert words > 1000
    benchmark.extra_info["total_code_words"] = words
