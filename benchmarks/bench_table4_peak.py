"""Table 4 — peak performance of dedicated Prolog machines.

The KCM row is measured (one concatenation step; warm nrev); the other
machines are literature constants.  Asserts the paper's headline:
833 Klips on concatenation (15 cycles/step at 80 ns), ~760 on nrev,
placing KCM above PSI-II/X-1/CHI-II and below the ECL-based IPP.
"""

import pytest

from repro.bench import paper_data
from repro.bench.tables import (
    measure_concat_step_cycles, measure_nrev_klips, table4,
)
from repro.core.costs import KCM_CYCLE_SECONDS


def test_concat_step(benchmark):
    step = benchmark.pedantic(measure_concat_step_cycles, rounds=1,
                              iterations=1)
    assert step == pytest.approx(paper_data.KCM_CON1_STEP_CYCLES,
                                 abs=0.5)
    klips = 1 / (step * KCM_CYCLE_SECONDS) / 1e3
    benchmark.extra_info["step_cycles"] = step
    benchmark.extra_info["peak_klips"] = round(klips)
    assert 780 <= klips <= 880           # paper: 833


def test_nrev_peak(benchmark):
    klips = benchmark.pedantic(measure_nrev_klips, rounds=1,
                               iterations=1)
    assert 700 <= klips <= 880           # paper: 760
    benchmark.extra_info["nrev_klips"] = round(klips)


def test_table4_ranking(benchmark):
    result = benchmark.pedantic(table4, rounds=1, iterations=1)
    print("\n" + result.render())
    kcm_con = result.data["kcm_con_klips"]["value"]
    # The paper's ranking argument: KCM above PSI-II, X-1 and CHI-II,
    # below the ECL IPP, comparable to DLM-1.
    assert kcm_con > paper_data.TABLE4["PSI-II"].con_klips
    assert kcm_con > paper_data.TABLE4["X-1"].con_klips
    assert kcm_con > paper_data.TABLE4["CHI-II"].con_klips
    assert kcm_con < paper_data.TABLE4["IPP"].con_klips
    assert kcm_con == pytest.approx(paper_data.TABLE4["DLM-1"].con_klips,
                                    rel=0.15)
