"""Shared fixtures for the benchmark harness.

Each bench file regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  pytest-benchmark measures the
simulator's wall-clock; the *simulated* figures (cycles, ms at 80 ns,
Klips) are attached as extra_info and asserted against the paper's
bands.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture(scope="session")
def kcm_runner():
    from repro.bench.runner import SuiteRunner
    return SuiteRunner()


@pytest.fixture(scope="session")
def plm_runner():
    from repro.baselines.plm import plm_machine
    from repro.bench.runner import SuiteRunner
    return SuiteRunner(machine_factory=lambda s: plm_machine(s))


@pytest.fixture(scope="session")
def quintus_runner():
    from repro.baselines.quintus import quintus_machine
    from repro.bench.runner import SuiteRunner
    return SuiteRunner(machine_factory=lambda s: quintus_machine(s))
