"""Ablations A1-A3: the influence of each specialized unit.

The paper's future-work section promises exactly this study.  Each
test switches one KCM mechanism off, reruns representative suite
programs, and asserts the unit actually pays for itself.
"""

import pytest

from repro.bench.ablations import run_ablation

#: A representative, fast subset: a deterministic kernel, a guard-
#: selection workload, a backtracking search and an arithmetic scan.
PROGRAMS = ["nrev1", "pri2", "queens", "query"]


def _mean_slowdown(rows):
    return sum(r.slowdown for r in rows) / len(rows)


def test_ablation_shallow_backtracking(benchmark):
    """A1: delayed choice-point creation off -> eager WAM choice
    points.  pri2's guard-driven clause selection suffers most."""
    rows = benchmark.pedantic(run_ablation, args=("shallow", PROGRAMS),
                              rounds=1, iterations=1)
    by_name = {r.program: r for r in rows}
    for r in rows:
        print(f"\n  {r.program:8s} slowdown {r.slowdown:.3f}")
        assert r.slowdown >= 1.0, r.program
    assert _mean_slowdown(rows) > 1.01
    assert by_name["pri2"].slowdown > 1.05
    benchmark.extra_info["mean_slowdown"] = round(_mean_slowdown(rows), 3)


def test_ablation_parallel_trail(benchmark):
    """A2: trail comparators serialised (2 cycles per conditional
    binding check)."""
    rows = benchmark.pedantic(run_ablation, args=("trail", PROGRAMS),
                              rounds=1, iterations=1)
    for r in rows:
        print(f"\n  {r.program:8s} slowdown {r.slowdown:.3f}")
        assert r.slowdown >= 1.0, r.program
    assert _mean_slowdown(rows) > 1.0
    benchmark.extra_info["mean_slowdown"] = round(_mean_slowdown(rows), 3)


def test_ablation_mwac(benchmark):
    """MWAC multi-way dispatch off: serial type tests on switches and
    unification instructions."""
    rows = benchmark.pedantic(run_ablation, args=("mwac", PROGRAMS),
                              rounds=1, iterations=1)
    for r in rows:
        print(f"\n  {r.program:8s} slowdown {r.slowdown:.3f}")
        assert r.slowdown >= 1.0, r.program
    # Every Prolog program leans on dispatch: a solid mean effect.
    assert _mean_slowdown(rows) > 1.05
    benchmark.extra_info["mean_slowdown"] = round(_mean_slowdown(rows), 3)


def test_ablation_sectioned_cache(benchmark):
    """A3: plain direct-mapped data cache instead of zone sections.
    Timing-only effect (misses), so assert on cycles not semantics."""
    rows = benchmark.pedantic(run_ablation, args=("cache", PROGRAMS),
                              rounds=1, iterations=1)
    for r in rows:
        print(f"\n  {r.program:8s} slowdown {r.slowdown:.3f}")
        # A plain cache can only add conflict misses, never remove any.
        assert r.slowdown >= 0.999, r.program
    benchmark.extra_info["mean_slowdown"] = round(_mean_slowdown(rows), 3)


def test_units_compose():
    """Stacking ablations must not change any answer, only cycles."""
    from repro.bench.runner import SuiteRunner
    from repro.core.costs import Features
    from repro.core.machine import Machine
    everything_off = SuiteRunner(machine_factory=lambda s: Machine(
        symbols=s, features=Features(
            shallow_backtracking=False, mwac=False, parallel_trail=False,
            sectioned_cache=False)))
    reference = SuiteRunner()
    for program in PROGRAMS:
        fast = reference.run(program, "pure")
        slow = everything_off.run(program, "pure")
        assert fast.inferences == slow.inferences, program
        assert slow.stats.cycles > fast.stats.cycles, program
