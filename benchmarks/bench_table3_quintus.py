"""Table 3 — execution time vs Quintus 2.0 on a SUN-3/280 (I/O removed).

Asserts the reproduced shape: KCM beats the emulated commercial system
everywhere, by mid-single-digit to 10x factors; deterministic list
kernels (nrev1) show the *lowest* ratios exactly as the paper reports
("the lower ratios are obtained for intrinsically deterministic
programs").  Known residual: the paper's query row (10.17) is only
partially reached; see EXPERIMENTS.md.
"""

import pytest

from repro.bench import paper_data
from repro.bench.programs import SUITE_ORDER

#: programs with published Quintus rows (the paper leaves holes for
#: those "too small to get significant results").
PAPER_ROWS = [name for name in SUITE_ORDER
              if paper_data.TABLE3[name].ratio is not None]


def test_table3_full(benchmark, kcm_runner, quintus_runner):
    def measure():
        rows = {}
        for name in SUITE_ORDER:
            kcm = kcm_runner.run(name, "pure")
            quintus = quintus_runner.run(name, "pure")
            rows[name] = (quintus.milliseconds / kcm.milliseconds,
                          kcm.klips, quintus.klips)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print(f"\n{'program':10s} {'Q/KCM':>7s} {'paper':>7s} "
          f"{'KCM Klips':>10s} {'Q Klips':>9s}")
    for name, (ratio, kcm_klips, q_klips) in rows.items():
        paper = paper_data.TABLE3[name].ratio
        print(f"{name:10s} {ratio:7.2f} "
              f"{paper if paper else float('nan'):7.2f} "
              f"{kcm_klips:10.1f} {q_klips:9.1f}")

    ratios = {name: rows[name][0] for name in PAPER_ROWS}
    average = sum(ratios.values()) / len(ratios)

    # KCM wins everywhere, by a clear margin.
    assert all(r > 2.5 for r in ratios.values()), ratios
    # Average in the high single digits (paper 7.85; model reaches ~6).
    assert 5.0 <= average <= 9.5
    # Deterministic nrev1 has the lowest ratio among the paper's
    # deterministic rows -- and matches its published 5.08 closely.
    assert ratios["nrev1"] == pytest.approx(5.08, rel=0.15)
    # Backtracking-heavy rows beat the deterministic kernel.
    assert ratios["queens"] > ratios["nrev1"]
    assert ratios["hanoi"] > ratios["nrev1"]

    benchmark.extra_info["average_ratio"] = round(average, 2)
    benchmark.extra_info["paper_average"] = paper_data.TABLE3_AVG_RATIO


def test_quintus_klips_magnitude(quintus_runner):
    """The emulated Quintus lands in the tens-to-150 Klips band the
    paper's Table 3 reports (33-151)."""
    for name in ("nrev1", "mutest", "queens"):
        result = quintus_runner.run(name, "pure")
        assert 25 <= result.klips <= 220, (name, result.klips)
