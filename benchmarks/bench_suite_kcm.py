"""The PLM suite on the calibrated KCM: per-program simulated figures.

One pytest-benchmark entry per program (measuring simulator wall time)
with the simulated cycles/ms/Klips attached as extra_info -- the raw
material behind Tables 2 and 3's KCM columns.
"""

import pytest

from repro.bench.programs import SUITE_ORDER
from repro.bench import paper_data


@pytest.mark.parametrize("name", SUITE_ORDER)
def test_program(benchmark, kcm_runner, name):
    machine = kcm_runner.load(name, "pure")

    def once():
        return kcm_runner.run(name, "pure", warm=False)

    result = benchmark.pedantic(once, rounds=1, iterations=1,
                                warmup_rounds=1)
    benchmark.extra_info["inferences"] = result.inferences
    benchmark.extra_info["sim_cycles"] = result.stats.cycles
    benchmark.extra_info["sim_ms_at_80ns"] = round(result.milliseconds, 4)
    benchmark.extra_info["sim_klips"] = round(result.klips, 1)
    benchmark.extra_info["paper_klips"] = \
        paper_data.TABLE3[name].kcm_klips

    assert result.stats.cycles > 0
    assert result.inferences > 0
