"""Host throughput: the predecoded fast path vs the seed interpreter.

Measures the simulator's own wall-clock on the KCM suite under
``Machine(fast_path=True)`` (predecoded threaded dispatch plus the
fused memory path, see docs/PERF.md) and under the ablation
(``fast_path=False``, the seed per-instruction loop), cross-checking
on every round that both produce bit-identical simulated statistics.
Emits ``BENCH_host_throughput.json``; the committed copy at the
repository root is the CI regression baseline, gated on the
dimensionless speedup ratio so runner hardware does not matter.

Run under pytest-benchmark (``pytest benchmarks/bench_host_throughput.py
--benchmark-only``) or standalone for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_host_throughput.py --quick \
        --baseline BENCH_host_throughput.json
"""

from __future__ import annotations

import argparse
import sys

#: Best-of-N rounds; the full report uses more rounds than the smoke
#: run because the committed baseline should be low-noise.
FULL_REPS = 8
QUICK_REPS = 3


def _report(report: dict) -> None:
    rows = report["programs"]
    print(f"\n  {'program':>10} {'fast ms':>9} {'ablation ms':>12} "
          f"{'speedup':>8} {'host klips':>11}")
    for name, row in rows.items():
        print(f"  {name:>10} {row['fast_ms']:>9.2f} "
              f"{row['ablation_ms']:>12.2f} {row['speedup']:>7.2f}x "
              f"{row['host_klips_fast']:>11.1f}")
    agg = report["aggregate"]
    print(f"  {'TOTAL':>10} {agg['fast_ms_total']:>9.2f} "
          f"{agg['ablation_ms_total']:>12.2f} {agg['speedup']:>7.2f}x "
          f"(geomean {agg['geomean_speedup']:.2f}x)")


# -- pytest-benchmark harness ------------------------------------------------

def test_host_throughput(benchmark):
    from repro.bench.host_throughput import measure_suite

    report = benchmark.pedantic(
        lambda: measure_suite(reps=QUICK_REPS), rounds=1, iterations=1)
    _report(report)
    benchmark.extra_info["aggregate_speedup"] = \
        report["aggregate"]["speedup"]
    benchmark.extra_info["geomean_speedup"] = \
        report["aggregate"]["geomean_speedup"]
    assert report["identity_checked"]
    # The fast path must decisively be one: with superinstruction
    # fusion the full suite runs ~2.5x on an idle host, so even a
    # noisy shared runner clears 1.8x with margin — dropping under it
    # means the fusion layer (or the predecode layer under it) has
    # stopped carrying its weight.
    assert report["aggregate"]["speedup"] > 1.8


# -- standalone CI smoke -----------------------------------------------------

def main(argv=None) -> int:
    from repro.bench.host_throughput import (
        QUICK_PROGRAMS, check_regression, measure_suite, write_report,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="four programs, fewer rounds (CI smoke)")
    parser.add_argument("--output", default="BENCH_host_throughput.json",
                        help="where to write the JSON report")
    parser.add_argument("--baseline", default=None,
                        help="committed report to gate the speedup "
                             "ratio against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional loss of the committed "
                             "speedup ratio (default 0.25)")
    args = parser.parse_args(argv)

    programs = QUICK_PROGRAMS if args.quick else None
    reps = QUICK_REPS if args.quick else FULL_REPS
    report = measure_suite(programs=programs, reps=reps)
    _report(report)
    # Gate against the baseline BEFORE writing: --output may name the
    # same file, and writing first would make the regression check
    # compare the report against itself.
    gate_failure = None
    gate_message = None
    if args.baseline:
        try:
            gate_message = check_regression(report, args.baseline,
                                            args.max_regression)
        except AssertionError as exc:
            gate_failure = exc
    write_report(report, args.output)
    print(f"\n  report written to {args.output}")
    if gate_message:
        print("  " + gate_message)
    if gate_failure is not None:
        raise gate_failure
    return 0


if __name__ == "__main__":
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    os.pardir, "src"))
    sys.exit(main())
