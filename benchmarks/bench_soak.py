"""Open-loop soak over the query service (docs/SERVING.md).

Offers a fixed-rate Poisson arrival stream of PLM-corpus queries to a
worker pool — optionally while a seeded
:class:`~repro.serve.chaos.ChaosPolicy` kills workers mid-query — and
measures how the service holds up: sustained qps, p50/p99 latency
(completion minus scheduled arrival, queueing included), shed rate,
and the resilience counters.  The schedule is 100k+ arrivals at
pressure rates, time-boxed by a wall-clock budget: arrivals the
budget cuts off are reported as ``unsubmitted``.  The gate is
**exactly-once accounting** (every submitted arrival ends in exactly
one of ok / shed / typed error, and submitted + unsubmitted equals
offered) plus solution correctness for every ``ok`` against a
fault-free in-process reference.

Run under pytest (``pytest benchmarks/bench_soak.py``) or standalone
as the CI soak smoke::

    PYTHONPATH=src python benchmarks/bench_soak.py --quick --output BENCH_soak.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: short PLM suite programs: quick enough that a CI-sized soak turns
#: hundreds of queries over in seconds, long enough for chaos kills
#: and deadline checks to land mid-run.
CORPUS = ["con1", "con6", "nrev1", "qs4", "times10", "divide10",
          "log10", "ops8"]


def run_soak_bench(seed: int = 2026, rate_qps: float = 60.0,
                   total_queries: int = 300, workers: int = 2,
                   timeout_s: float = 10.0,
                   chaos_kills: bool = True,
                   max_wave: int = 64,
                   max_queue_depth: int = 16,
                   budget_s: float = None) -> dict:
    from repro.bench.programs import SUITE
    from repro.serve import (ChaosPolicy, QueryService, RetryPolicy,
                             SupervisorPolicy)
    from repro.serve.loadgen import LoadSpec, OpenLoopGenerator, run_soak

    programs = {name: SUITE[name].source_pure for name in CORPUS}
    mix = [(name, SUITE[name].query_pure) for name in CORPUS]
    spec = LoadSpec(rate_qps=rate_qps, total_queries=total_queries,
                    seed=seed)
    arrivals = OpenLoopGenerator(spec, mix).arrivals()

    chaos = None
    retry = None
    if chaos_kills:
        chaos = ChaosPolicy(seed=seed, kill_rate=0.03,
                            kill_window=(400, 6_000),
                            max_kills_per_slot=1)
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.01, seed=seed)

    # The wave cap deliberately exceeds admission capacity
    # (workers + max_queue_depth): under sustained overload the
    # backlog wave overflows the queue and admission control sheds
    # by (priority, age) — the soak *measures* shedding, it does not
    # prevent it.
    with QueryService(programs, workers=workers,
                      max_queue_depth=max_queue_depth,
                      supervisor=SupervisorPolicy(
                          max_respawns=max(8, total_queries // 10),
                          backoff_base_s=0.01, backoff_max_s=0.25),
                      ) as service:
        report = run_soak(service, arrivals, offered_qps=rate_qps,
                          timeout_s=timeout_s, retry=retry, chaos=chaos,
                          max_wave=max_wave, check_solutions=True,
                          budget_s=budget_s)

    health = report.health
    return {
        "seed": seed,
        "workers": workers,
        "rate_qps": rate_qps,
        "chaos_kills": chaos_kills,
        "offered": report.offered,
        "submitted": report.submitted,
        "unsubmitted": report.unsubmitted,
        "budget_s": budget_s,
        "waves": report.waves,
        "elapsed_s": round(report.elapsed_s, 3),
        "ok": report.ok,
        "shed": report.shed,
        "errors": report.errors,
        "accounting_ok": report.accounting_ok,
        "solutions_ok": report.solutions_ok,
        "mismatches": report.mismatches,
        "sustained_qps": round(report.sustained_qps, 1),
        "shed_rate": round(report.shed_rate, 4),
        "p50_latency_s": round(report.p50_latency_s, 4),
        "p99_latency_s": round(report.p99_latency_s, 4),
        "max_latency_s": round(report.max_latency_s, 4),
        "crashes": health.crashes,
        "retries": health.retries,
        "respawns": health.respawns,
        "timeouts": health.timeouts,
        "deadline_abandons": health.deadline_abandons,
        "quarantines": health.quarantines,
        "workers_retired": health.workers_retired,
        "degraded": health.degraded,
    }


def _report(row: dict) -> None:
    print(f"\n  open-loop soak: seed {row['seed']}, {row['workers']} "
          f"workers, {row['rate_qps']} qps offered"
          + (", chaos kills on" if row["chaos_kills"] else "")
          + (f", budget {row['budget_s']}s" if row.get("budget_s")
             else ""))
    print(f"  {row['offered']} arrivals offered, {row['submitted']} "
          f"submitted in {row['waves']} waves over "
          f"{row['elapsed_s']:.2f}s ({row['unsubmitted']} cut off by "
          f"the budget): {row['ok']} ok, {row['shed']} shed, "
          f"errors {row['errors'] or '{}'}")
    print(f"  accounting: "
          f"{'exactly-once OK' if row['accounting_ok'] else 'VIOLATED'}; "
          f"solutions: {'OK' if row['solutions_ok'] else 'MISMATCHED'}")
    for mismatch in row["mismatches"]:
        print(f"    mismatch: {mismatch}")
    print(f"  sustained {row['sustained_qps']:.1f} qps, shed rate "
          f"{row['shed_rate']:.1%}, latency p50 {row['p50_latency_s']*1e3:.0f}ms "
          f"p99 {row['p99_latency_s']*1e3:.0f}ms "
          f"max {row['max_latency_s']*1e3:.0f}ms")
    print(f"  crashes {row['crashes']}, retries {row['retries']}, "
          f"respawns {row['respawns']}, abandons {row['deadline_abandons']}, "
          f"quarantines {row['quarantines']}, "
          f"retired {row['workers_retired']}, degraded {row['degraded']}")


def _gate(row: dict) -> list:
    """The CI gate: the failures (empty list: pass)."""
    failures = []
    if not row["accounting_ok"]:
        failures.append("exactly-once accounting violated")
    if not row["solutions_ok"]:
        failures.append("ok solutions diverged from the reference")
    if row["sustained_qps"] <= 0:
        failures.append("sustained qps floor: no query completed")
    if row["submitted"] <= 0:
        failures.append("nothing submitted before the budget elapsed")
    if row["submitted"] + row["unsubmitted"] != row["offered"]:
        failures.append("submitted + unsubmitted != offered")
    return failures


# -- pytest harness ----------------------------------------------------------

def test_soak_smoke():
    # Time-boxed slice of the 100k-arrival pressure schedule.
    row = run_soak_bench(rate_qps=2500.0, total_queries=20_000,
                         budget_s=8.0)
    _report(row)
    assert not _gate(row), _gate(row)


# -- standalone CI smoke -----------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--rate", type=float, default=2500.0)
    parser.add_argument("--queries", type=int, default=100_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--budget", type=float, default=60.0,
                        help="wall-clock budget in seconds; arrivals "
                             "not submitted when it elapses are "
                             "reported as unsubmitted (0: unbounded)")
    parser.add_argument("--no-chaos", action="store_true",
                        help="soak without chaos worker kills")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized soak: the same 100k pressure "
                             "schedule under a ~25s budget")
    parser.add_argument("--output", help="write the report as JSON here")
    args = parser.parse_args(argv)
    if args.quick:
        args.budget = 25.0
    row = run_soak_bench(seed=args.seed, rate_qps=args.rate,
                         total_queries=args.queries, workers=args.workers,
                         timeout_s=args.timeout,
                         chaos_kills=not args.no_chaos,
                         budget_s=args.budget or None)
    _report(row)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(row, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {args.output}")
    failures = _gate(row)
    for failure in failures:
        print(f"  GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    os.pardir, "src"))
    sys.exit(main())
