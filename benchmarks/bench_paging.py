"""Demand-paging sensitivity (sections 2.1 and 3.2.5).

KCM has no disk: "It uses the host with its operating system (UNIX) as
server for I/O including ... paging".  A page fault is therefore a
round trip over the VME interface, costing orders of magnitude more
than a cache miss.  This bench measures how the host's paging service
cost bleeds into cold-start execution time, and that a warm working
set insulates the machine completely — the paper's design bet behind
the big 16K-word pages and the RAM-resident page table.
"""

import pytest

from repro.api import compile_and_load
from repro.core.machine import Machine
from repro.core.symbols import SymbolTable
from repro.memory.memory_system import MemorySystem

NREV = """
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
"""
QUERY = ("nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20], R)")


def run_with_fault_cost(page_fault_cycles: int):
    memory = MemorySystem(page_fault_cycles=page_fault_cycles)
    machine = Machine(symbols=SymbolTable(), memory=memory)
    machine = compile_and_load(NREV, QUERY, machine=machine)
    cold = machine.run(machine.image.entry, answer_names=["R"])
    cold_cycles = cold.cycles
    machine.memory.reset_statistics()
    warm = machine.run(machine.image.entry, answer_names=["R"])
    return cold_cycles, warm.cycles, machine.memory.mmu.faults


def test_page_fault_cost_sweep(benchmark):
    def sweep():
        return {cost: run_with_fault_cost(cost)
                for cost in (0, 500, 2000, 10000)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    free_cold = results[0][0]
    for cost, (cold, warm, faults) in results.items():
        print(f"\n  fault={cost:6d} cycles: cold {cold:8d} "
              f"warm {warm:8d} (faults {faults})")
        benchmark.extra_info[f"cold_at_{cost}"] = cold

    # Cold time grows linearly with the host service cost...
    costs = sorted(results)
    colds = [results[c][0] for c in costs]
    assert colds == sorted(colds)
    assert colds[-1] > colds[0]
    # ...by exactly faults * cost.
    faults = results[10000][2]
    assert results[10000][0] - free_cold == faults * 10000

    # The warm run never faults: identical cycles at any service cost.
    warms = {results[c][1] for c in costs}
    assert len(warms) == 1


def test_big_pages_keep_fault_counts_low():
    """16K-word pages mean the whole benchmark working set is a
    handful of pages (the paper: 'pages can be quite large')."""
    _, _, faults = run_with_fault_cost(2000)
    assert faults <= 8
