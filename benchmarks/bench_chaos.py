"""Seeded chaos smoke over the query service (docs/RESILIENCE.md).

Runs a PLM-corpus batch through a worker pool while a deterministic
:class:`~repro.serve.chaos.ChaosPolicy` kills workers mid-query, delays
result delivery and injects machine faults, then verifies the ISSUE 5
invariant: solutions and statuses bit-identical to the fault-free
reference, no slot lost or duplicated, and identical simulated
``RunStats`` wherever no faults touched the simulation itself.  Also
reports the host-time cost of surviving the chaos (reference vs
chaos-ridden wall seconds) and the recovery counters (kills, retries,
checkpoint resumes).

Run under pytest (``pytest benchmarks/bench_chaos.py``) or standalone
as the CI chaos smoke::

    PYTHONPATH=src python benchmarks/bench_chaos.py --seed 2026
"""

from __future__ import annotations

import argparse
import sys
import time

#: short-to-medium PLM suite programs; enough cycles for kills and
#: checkpoints to land, small enough for a CI smoke.
CORPUS = ["con1", "con6", "nrev1", "qs4", "times10", "divide10",
          "log10", "ops8"]


def run_chaos_smoke(seed: int = 2026, workers: int = 2,
                    checkpoint_every: int = 1_500) -> dict:
    from repro.bench.programs import SUITE
    from repro.serve import ChaosPolicy, QueryService, RetryPolicy
    from repro.serve.chaos import verify_chaos_invariant

    programs = {name: SUITE[name].source_pure for name in CORPUS}
    batch = [(name, SUITE[name].query_pure) for name in CORPUS]
    chaos = ChaosPolicy(seed=seed, kill_rate=0.6, kill_window=(400, 6_000),
                        max_kills_per_slot=1,
                        delay_rate=0.5, max_delay_s=0.02,
                        inject_rate=0.4, inject_horizon=6_000)
    retry = RetryPolicy(max_attempts=3, base_delay_s=0.02, seed=seed)

    started = time.perf_counter()
    with QueryService(programs, workers=workers) as service:
        service.run_many(batch)
    clean_seconds = time.perf_counter() - started

    started = time.perf_counter()
    report = verify_chaos_invariant(programs, batch, chaos, retry=retry,
                                    workers=workers,
                                    checkpoint_every=checkpoint_every)
    chaos_seconds = time.perf_counter() - started

    health = report["health"]
    return {
        "seed": seed,
        "workers": workers,
        "checkpoint_every": checkpoint_every,
        "slots": report["ok"] and report["slots"],
        "invariant_ok": report["ok"],
        "mismatches": report["mismatches"],
        "stats_checked": report["stats_checked"],
        "clean_seconds": clean_seconds,
        "chaos_seconds": chaos_seconds,
        "kills": health.crashes,
        "retries": health.retries,
        "resumes": health.resumes,
        "checkpoints": health.checkpoints_received,
        "respawns": health.respawns,
    }


def _report(row: dict) -> None:
    print(f"\n  chaos smoke: seed {row['seed']}, {row['workers']} workers, "
          f"checkpoint every {row['checkpoint_every']} cycles")
    print(f"  invariant: {'OK' if row['invariant_ok'] else 'VIOLATED'} "
          f"({row['stats_checked']} slots stats-checked)")
    for mismatch in row["mismatches"]:
        print(f"    mismatch: {mismatch}")
    print(f"  kills {row['kills']}, retries {row['retries']}, "
          f"resumes {row['resumes']}, checkpoints {row['checkpoints']}, "
          f"respawns {row['respawns']}")
    print(f"  fault-free {row['clean_seconds']:.2f}s vs chaos "
          f"{row['chaos_seconds']:.2f}s (includes reference run)")


# -- pytest harness ----------------------------------------------------------

def test_chaos_smoke():
    row = run_chaos_smoke()
    _report(row)
    assert row["invariant_ok"], row["mismatches"]
    assert row["kills"] > 0, "the seed must actually kill workers"


# -- standalone CI smoke -----------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--checkpoint-every", type=int, default=1_500)
    args = parser.parse_args(argv)
    row = run_chaos_smoke(seed=args.seed, workers=args.workers,
                          checkpoint_every=args.checkpoint_every)
    _report(row)
    if not row["invariant_ok"]:
        return 1
    if row["kills"] == 0:
        print("  warning: this seed killed nothing; pick another")
    return 0


if __name__ == "__main__":
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    os.pardir, "src"))
    sys.exit(main())
