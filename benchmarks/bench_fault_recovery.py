"""Fault-recovery overhead: cycles per serviced fault.

The recovery subsystem's claim (docs/TRAPS.md) is twofold: armed but
idle it costs nothing — simulated cycle counts are bit-identical to the
seed loop — and under deterministic fault injection every PLM suite
program still computes exactly its fault-free answers, at a quantified
cycle cost per serviced fault.  This bench measures both, plus a forced
stack-squeeze scenario exercising the growth/GC handlers.

Run under pytest-benchmark (``pytest benchmarks/bench_fault_recovery.py
--benchmark-only``) or standalone for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --quick
"""

from __future__ import annotations

import argparse
import sys

PROGRAMS = ["con6", "divide10", "nrev1", "qs4", "queens"]
QUICK_PROGRAMS = ["con6", "nrev1"]

#: injection mix per program (scaled to each program's own run length
#: via ``horizon``).
PAGE_FAULTS = 3
ZONE_SQUEEZES = 2
SPURIOUS = 3
SEED = 1989  # the paper's year; any fixed value works


def _run_suite_program(name: str, injector=None, recovery: bool = False):
    from repro.api import run_query
    from repro.bench.programs import SUITE

    bench = SUITE[name]
    return run_query(bench.source_pure, bench.query_pure,
                     all_solutions=bench.all_solutions,
                     injector=injector, recovery=recovery)


def measure_program(name: str) -> dict:
    """Fault-free vs armed-idle vs injected runs of one program."""
    from repro.recovery import FaultInjector

    baseline = _run_suite_program(name)
    armed = _run_suite_program(name, recovery=True)
    injector = FaultInjector(seed=SEED,
                             page_faults=PAGE_FAULTS,
                             zone_squeezes=ZONE_SQUEEZES,
                             spurious=SPURIOUS,
                             horizon=max(baseline.stats.cycles, 100))
    faulted = _run_suite_program(name, injector=injector)

    assert armed.solutions == baseline.solutions, \
        f"{name}: armed-idle run changed the answers"
    assert armed.stats.cycles == baseline.stats.cycles, \
        f"{name}: armed-idle run changed cycle counts " \
        f"({armed.stats.cycles} vs {baseline.stats.cycles})"
    assert faulted.solutions == baseline.solutions, \
        f"{name}: injected run changed the answers"
    stats = faulted.stats
    assert stats.traps_raised == stats.traps_recovered, \
        f"{name}: {stats.traps_raised - stats.traps_recovered} " \
        f"faults went unrecovered"

    serviced = stats.traps_recovered
    return {
        "name": name,
        "base_cycles": baseline.stats.cycles,
        "faulted_cycles": stats.cycles,
        "faults_injected": stats.faults_injected,
        "traps_serviced": serviced,
        "recovery_cycles": stats.recovery_cycles,
        "cycles_per_fault": (stats.recovery_cycles / serviced
                             if serviced else 0.0),
        "per_trap": dict(stats.per_trap),
    }


#: naive reverse of a 90-element list: ~8K words of heap, most of it
#: dead intermediate lists — guaranteed to overflow a one-granule
#: (4K-word) GLOBAL zone and give the GC something to reclaim.
SQUEEZE_SOURCE = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
mklist(0, []).
mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).
run(N, R) :- mklist(N, L), nrev(L, R).
"""
SQUEEZE_QUERY = "run(90, R)"


def measure_stack_squeeze() -> dict:
    """A guaranteed stack-overflow scenario: naive reverse on a
    one-granule GLOBAL zone so the growth/GC handlers must fire.

    Both runs use ``timing_enabled=False``: compaction relocates the
    whole heap, so cache behaviour legitimately differs from the
    baseline and functional cycles are the comparable quantity (the
    recovery-accounting invariant is exact over them).
    """
    from repro.api import compile_and_load, run_query
    from repro.core.machine import Machine
    from repro.core.symbols import SymbolTable
    from repro.core.tags import Zone
    from repro.memory.layout import DEFAULT_LAYOUT, Region
    from repro.memory.memory_system import MemorySystem
    from repro.recovery import install_default_recovery

    baseline = run_query(
        SQUEEZE_SOURCE, SQUEEZE_QUERY,
        machine=Machine(symbols=SymbolTable(),
                        memory=MemorySystem(timing_enabled=False)))

    layout = dict(DEFAULT_LAYOUT)
    region = DEFAULT_LAYOUT[Zone.GLOBAL]
    layout[Zone.GLOBAL] = Region(Zone.GLOBAL, region.base, 0x1000)
    machine = Machine(symbols=SymbolTable(),
                      memory=MemorySystem(layout=layout,
                                          timing_enabled=False))
    handlers = install_default_recovery(machine)
    machine = compile_and_load(SQUEEZE_SOURCE, SQUEEZE_QUERY,
                               machine=machine)
    stats = machine.run(machine.image.entry,
                        answer_names=machine.image.query_variable_names)

    assert machine.solutions == baseline.solutions, \
        "squeezed run changed the answers"
    assert stats.traps_recovered >= 1, "squeeze never trapped"
    return {
        "name": "nrev90/squeezed",
        "base_cycles": baseline.stats.cycles,
        "faulted_cycles": stats.cycles,
        "faults_injected": 0,
        "traps_serviced": stats.traps_recovered,
        "recovery_cycles": stats.recovery_cycles,
        "cycles_per_fault": stats.recovery_cycles / stats.traps_recovered,
        "per_trap": dict(stats.per_trap),
        "growths": dict(handlers["stack-growth"].growths),
        "collections": len(handlers["heap-gc"].collections),
    }


def _report(rows) -> None:
    print(f"\n  {'program':>16} {'base':>9} {'faulted':>9} "
          f"{'serviced':>8} {'recovery':>9} {'cyc/fault':>9}")
    for row in rows:
        print(f"  {row['name']:>16} {row['base_cycles']:>9} "
              f"{row['faulted_cycles']:>9} {row['traps_serviced']:>8} "
              f"{row['recovery_cycles']:>9} "
              f"{row['cycles_per_fault']:>9.0f}")


# -- pytest-benchmark harness ------------------------------------------------

def test_fault_recovery_overhead(benchmark):
    def sweep():
        rows = [measure_program(name) for name in PROGRAMS]
        rows.append(measure_stack_squeeze())
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _report(rows)
    for row in rows:
        benchmark.extra_info[f"cycles_per_fault_{row['name']}"] = \
            round(row["cycles_per_fault"], 1)
    # Every scenario serviced at least one fault and paid for it.
    assert all(row["traps_serviced"] >= 1 for row in rows)
    assert all(row["recovery_cycles"] > 0 for row in rows)
    # Recovery overhead is bounded: the faulted run costs at most the
    # base run plus what was accounted as recovery (page-fault service,
    # GC sweeps, limit moves, dispatch) — nothing leaks unaccounted.
    for row in rows:
        overhead = row["faulted_cycles"] - row["base_cycles"]
        assert overhead <= row["recovery_cycles"], \
            f"{row['name']}: unaccounted overhead"


# -- standalone CI smoke -----------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="two programs only (the CI smoke run)")
    args = parser.parse_args(argv)

    names = QUICK_PROGRAMS if args.quick else PROGRAMS
    rows = [measure_program(name) for name in names]
    if not args.quick:
        rows.append(measure_stack_squeeze())
    _report(rows)
    assert any(row["traps_serviced"] for row in rows)
    print(f"\n  all {len(rows)} scenarios: identical solutions, "
          f"all faults recovered")
    return 0


if __name__ == "__main__":
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    os.pardir, "src"))
    sys.exit(main())
