"""Real-size programs on KCM vs the baselines (paper section 5's
promised evaluation "on real-size programs")."""

import pytest

from repro.api import run_query
from repro.baselines.plm import plm_machine
from repro.bench.real_programs import REAL_PROGRAMS
from repro.core.symbols import SymbolTable


@pytest.mark.parametrize("name", sorted(REAL_PROGRAMS))
def test_real_program_on_kcm(benchmark, name):
    program = REAL_PROGRAMS[name]

    def once():
        return run_query(program.source, program.query,
                         all_solutions=program.all_solutions,
                         max_cycles=2_000_000_000)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert result.succeeded, name
    if program.check_binding:
        assert result.bindings_text() == program.check_binding
    benchmark.extra_info["inferences"] = result.stats.inferences
    benchmark.extra_info["sim_cycles"] = result.stats.cycles
    benchmark.extra_info["sim_ms_at_80ns"] = round(result.milliseconds, 2)
    benchmark.extra_info["klips"] = round(result.klips, 1)
    benchmark.extra_info["shallow_fails"] = result.stats.shallow_fails
    benchmark.extra_info["deep_fails"] = result.stats.deep_fails
    print(f"\n  {name}: {result.stats.inferences} inferences, "
          f"{result.milliseconds:.2f} ms, {result.klips:.0f} Klips, "
          f"{result.stats.shallow_fails} shallow / "
          f"{result.stats.deep_fails} deep fails")


def test_kcm_beats_plm_on_search(benchmark):
    """The comparison shape carries over from the micro-suite to a
    real search workload."""
    program = REAL_PROGRAMS["send_more_money"]

    def measure():
        kcm = run_query(program.source, program.query,
                        max_cycles=2_000_000_000)
        plm = run_query(program.source, program.query,
                        machine=plm_machine(SymbolTable()),
                        max_cycles=4_000_000_000)
        return kcm, plm

    kcm, plm = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert kcm.solutions == plm.solutions
    ratio = plm.milliseconds / kcm.milliseconds
    print(f"\n  PLM/KCM on send+more=money: {ratio:.2f}x")
    assert 1.5 <= ratio <= 5.5         # the Table 2 band holds
    benchmark.extra_info["plm_kcm_ratio"] = round(ratio, 2)


def test_expert_system_is_index_friendly():
    """Rule chaining over an attribute database: KCM-style dispatch
    keeps the whole identification nearly choice-point-free."""
    program = REAL_PROGRAMS["animals"]
    result = run_query(program.source, program.query)
    assert result.bindings_text() == "Animal = cheetah"
    assert result.stats.choice_points_created \
        < result.stats.inferences / 2
