"""Section 3.2.4's cache experiment (DESIGN.md E1).

Direct-mapped data cache under two top-of-stack initialisations: the
paper found hit ratios "very good" when the stacks used different
cache locations and "dropped quite dramatically" when they collided;
KCM's zone-sectioned cache removes the sensitivity.
"""

import pytest

from repro.bench.figures import cache_collision_experiment


def test_cache_collision_experiment(benchmark):
    results = benchmark.pedantic(cache_collision_experiment, rounds=1,
                                 iterations=1)
    for name, r in results.items():
        print(f"\n{name:22s} hit ratio {r.hit_ratio:.4f} "
              f"({r.misses} misses / {r.accesses} accesses)")
        benchmark.extra_info[name.replace("/", "_")] = round(r.hit_ratio,
                                                             4)

    plain_good = results["plain/staggered"].hit_ratio
    plain_bad = results["plain/colliding"].hit_ratio
    sect_good = results["sectioned/staggered"].hit_ratio
    sect_bad = results["sectioned/colliding"].hit_ratio

    # The paper's observation: the plain cache degrades when the
    # pointers collide...
    assert plain_bad < plain_good
    # ...by a meaningful margin...
    assert plain_good - plain_bad > 0.03
    # ...while the zone-sectioned cache is completely insensitive.
    assert sect_good == sect_bad
    # And sectioning beats the plain cache outright.
    assert sect_good > plain_good


def test_sectioned_cache_warm_hit_ratio_is_perfect():
    """With per-zone sections and a resident working set, the second
    run of the experiment program misses nothing at all."""
    results = cache_collision_experiment()
    assert results["sectioned/staggered"].hit_ratio == 1.0
