"""Session capacity and stream latency under hibernation pressure
(docs/SESSIONS.md).

Soaks a :class:`~repro.serve.session.SessionService` with a concurrent
PLM-corpus session mix twice — once with every paused engine resident,
once under a deliberately tiny :class:`~repro.serve.engine.EngineStore`
budget so (nearly) every step must wake a hibernated resume token from
disk — and reports sessions-per-worker capacity, solution-stream step
latency (p50/p99) for both modes, and the dimensionless **hibernation
overhead** ratio (hibernated p50 / resident p50) the regression gate
holds against the committed ``BENCH_sessions.json``: the ratio strips
hardware speed out, so it transfers across runners the way the other
bench gates do.

``--chaos`` instead runs the ISSUE 10 session chaos smoke:
:func:`~repro.serve.chaos.verify_session_chaos_invariant` over the
corpus — seeded worker kills plus forced lease expiries mid-stream must
leave every surviving session's solution sequence and ``RunStats``
bit-identical to the fault-free reference, with no engine leaked.

Run under pytest (``pytest benchmarks/bench_sessions.py``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_sessions.py --output BENCH_sessions.json
    PYTHONPATH=src python benchmarks/bench_sessions.py --chaos --seed 2026
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: session-friendly PLM corpus: queens/mutest stream several solutions
#: each (so sessions live across many steps), the short ones exercise
#: the open/done churn path, query exercises the zero-solution stream.
CORPUS = ["queens", "mutest", "con1", "nrev1", "divide10", "query"]

#: forces hibernation: far below one pickled checkpoint, so every
#: idle session's resume token spills and every step wakes one.
PRESSURE_BUDGET = 4_096


def _soak(programs, mix, spec, workers, store_budget) -> dict:
    from repro.serve import EngineStore, SessionService
    from repro.serve.loadgen import run_session_soak

    store = (EngineStore(budget_bytes=store_budget)
             if store_budget is not None else EngineStore())
    started = time.perf_counter()
    with SessionService(programs, workers=workers, store=store) as service:
        report = run_session_soak(service, spec, mix)
    seconds = time.perf_counter() - started
    effective_workers = max(1, workers)
    return {
        "elapsed_s": round(seconds, 3),
        "rounds": report.rounds,
        "solutions_streamed": report.solutions_streamed,
        "done": report.done,
        "expired": report.expired,
        "failed": report.failed,
        "accounting_ok": report.accounting_ok,
        "solutions_ok": report.solutions_ok,
        "mismatches": report.mismatches,
        "hibernation_spills": report.hibernation_spills,
        "hibernation_wakes": report.hibernation_wakes,
        "p50_step_latency_s": round(report.p50_step_latency_s, 6),
        "p99_step_latency_s": round(report.p99_step_latency_s, 6),
        "steps_per_s": round((report.solutions_streamed + report.done)
                             / seconds, 1) if seconds > 0 else 0.0,
        "sessions_per_worker_per_s": round(
            report.done / seconds / effective_workers, 2)
            if seconds > 0 else 0.0,
    }


def run_sessions_bench(seed: int = 2026, sessions: int = 24,
                       workers: int = 0) -> dict:
    from repro.bench.programs import SUITE
    from repro.serve.loadgen import SessionLoadSpec

    programs = {name: SUITE[name].source_pure for name in CORPUS}
    mix = [(name, SUITE[name].query_pure) for name in CORPUS]
    spec = SessionLoadSpec(sessions=sessions, seed=seed,
                           abandon_rate=0.2)
    resident = _soak(programs, mix, spec, workers, store_budget=None)
    hibernated = _soak(programs, mix, spec, workers,
                       store_budget=PRESSURE_BUDGET)
    overhead = (hibernated["p50_step_latency_s"]
                / resident["p50_step_latency_s"]
                if resident["p50_step_latency_s"] > 0 else 0.0)
    return {
        "seed": seed,
        "sessions": sessions,
        "workers": workers,
        "corpus": CORPUS,
        "resident": resident,
        "hibernated": hibernated,
        "gate": {"hibernation_overhead": round(overhead, 3)},
    }


def run_sessions_chaos_smoke(seed: int = 2026, workers: int = 2,
                             checkpoint_every: int = 2_000) -> dict:
    from repro.bench.programs import SUITE
    from repro.serve import ChaosPolicy, RetryPolicy
    from repro.serve.chaos import verify_session_chaos_invariant

    programs = {name: SUITE[name].source_pure for name in CORPUS}
    mix = [(name, SUITE[name].query_pure) for name in CORPUS]
    chaos = ChaosPolicy(seed=seed, kill_rate=0.5,
                        kill_window=(200, 4_000), kill_relative=True,
                        max_kills_per_slot=1)
    retry = RetryPolicy(max_attempts=3, base_delay_s=0.02, seed=seed)
    started = time.perf_counter()
    report = verify_session_chaos_invariant(
        programs, mix, chaos, retry=retry, workers=workers,
        checkpoint_every=checkpoint_every, seed=seed,
        store_budget=PRESSURE_BUDGET)
    seconds = time.perf_counter() - started
    health = report["health"]
    return {
        "seed": seed,
        "workers": workers,
        "checkpoint_every": checkpoint_every,
        "slots": report["slots"],
        "ok": report["ok"],
        "mismatches": report["mismatches"],
        "stats_checked": report["stats_checked"],
        "expired": report["expired"],
        "migrations": report["migrations"],
        "elapsed_s": round(seconds, 3),
        "crashes": health.crashes,
        "retries": health.retries,
        "resumes": health.resumes,
        "leases_expired": health.leases_expired,
    }


def _report_bench(row: dict) -> None:
    print(f"\n  session soak: seed {row['seed']}, {row['sessions']} "
          f"sessions, {row['workers']} workers, corpus of "
          f"{len(row['corpus'])}")
    for mode in ("resident", "hibernated"):
        r = row[mode]
        print(f"  {mode:>10}: {r['done']} done / {r['expired']} expired "
              f"in {r['rounds']} rounds, {r['solutions_streamed']} "
              f"solutions, {r['steps_per_s']:.0f} steps/s, "
              f"p50 {r['p50_step_latency_s']*1e3:.2f}ms "
              f"p99 {r['p99_step_latency_s']*1e3:.2f}ms, "
              f"spills {r['hibernation_spills']} "
              f"wakes {r['hibernation_wakes']}")
    print(f"  hibernation overhead (p50 ratio): "
          f"{row['gate']['hibernation_overhead']:.3f}x; capacity "
          f"{row['resident']['sessions_per_worker_per_s']:.2f} "
          f"sessions/worker/s resident")


def _report_chaos(row: dict) -> None:
    print(f"\n  session chaos smoke: seed {row['seed']}, "
          f"{row['workers']} workers, {row['slots']} sessions")
    print(f"  invariant {'HELD' if row['ok'] else 'VIOLATED'}: "
          f"{row['stats_checked']} survivors bit-identical, "
          f"expired {row['expired']}, migrations {row['migrations']}, "
          f"crashes {row['crashes']}, resumes {row['resumes']}, "
          f"leases expired {row['leases_expired']} "
          f"in {row['elapsed_s']:.2f}s")
    for mismatch in row["mismatches"]:
        print(f"    mismatch: {mismatch}")


def _gate_bench(row: dict) -> list:
    failures = []
    for mode in ("resident", "hibernated"):
        if not row[mode]["accounting_ok"]:
            failures.append(f"{mode}: exactly-once accounting violated")
        if not row[mode]["solutions_ok"]:
            failures.append(f"{mode}: streams diverged from reference")
        if row[mode]["failed"]:
            failures.append(f"{mode}: {row[mode]['failed']} sessions "
                            f"failed")
    if row["hibernated"]["hibernation_spills"] == 0:
        failures.append("pressure budget produced no hibernation")
    if row["resident"]["hibernation_spills"] != 0:
        failures.append("resident mode unexpectedly hibernated")
    return failures


def check_regression(report: dict, baseline_path: str,
                     max_regression: float = 0.75) -> str:
    """Gate the dimensionless hibernation-overhead ratio against the
    committed baseline: hardware speed cancels out of the ratio, so a
    ceiling of ``committed * (1 + max_regression)`` transfers across
    runners.  The tolerance is wide because both numerators are
    single-digit-millisecond step latencies.  Raises AssertionError on
    regression; returns the gate message otherwise."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    committed = baseline["gate"]["hibernation_overhead"]
    current = report["gate"]["hibernation_overhead"]
    ceiling = committed * (1.0 + max_regression)
    assert current <= ceiling, (
        f"session bench regression: hibernation overhead {current:.3f}x "
        f"exceeds {ceiling:.3f}x ({100 * max_regression:.0f}% over the "
        f"committed {committed:.3f}x)")
    return (f"hibernation overhead {current:.3f}x within "
            f"{ceiling:.3f}x ceiling (committed {committed:.3f}x)")


# -- pytest harness ----------------------------------------------------------

def test_sessions_smoke():
    row = run_sessions_bench(sessions=8)
    _report_bench(row)
    assert not _gate_bench(row), _gate_bench(row)


def test_sessions_chaos_smoke():
    row = run_sessions_chaos_smoke()
    _report_chaos(row)
    assert row["ok"], row["mismatches"]


# -- standalone CI smoke -----------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--sessions", type=int, default=24)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--chaos", action="store_true",
                        help="run the session chaos invariant smoke "
                             "instead of the capacity/latency soak")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized soak (8 sessions)")
    parser.add_argument("--baseline",
                        help="gate against this committed report")
    parser.add_argument("--output", help="write the report as JSON here")
    args = parser.parse_args(argv)

    if args.chaos:
        row = run_sessions_chaos_smoke(seed=args.seed,
                                       workers=args.workers or 2)
        _report_chaos(row)
        failures = [] if row["ok"] else ["session chaos invariant violated"]
    else:
        if args.quick:
            args.sessions = 8
        row = run_sessions_bench(seed=args.seed, sessions=args.sessions,
                                 workers=args.workers)
        _report_bench(row)
        failures = _gate_bench(row)
        if args.baseline and not failures:
            try:
                print(f"  gate: {check_regression(row, args.baseline)}")
            except AssertionError as err:
                failures.append(str(err))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(row, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {args.output}")
    for failure in failures:
        print(f"  GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    os.pardir, "src"))
    sys.exit(main())
