"""Section 4.2's arithmetic claim, measured.

"Actually, some programs, e.g. query, will even be speeded up with
generic arithmetic (floating arithmetic is significantly faster than
integer arithmetic on multiplications and divisions)."

The TTL ALU multiplies/divides in microcode loops; the FPU does not.
This bench runs the query benchmark's density computation in both
integer and floating arithmetic and checks the paradox: floats win.
"""

import pytest

from repro.api import run_query
from repro.bench.programs import QUERY

#: the same database and join, but density computed in floating point.
QUERY_FLOAT = QUERY.replace("D is P * 100 // A", "D is P * 100.0 / A")


def _run(source):
    return run_query(source, "query(C1, D1, C2, D2), fail",
                     max_cycles=2_000_000_000)


def test_float_query_beats_integer_query(benchmark):
    def measure():
        return _run(QUERY), _run(QUERY_FLOAT)

    integer, floating = benchmark.pedantic(measure, rounds=1,
                                           iterations=1)
    print(f"\n  integer density: {integer.milliseconds:8.3f} ms")
    print(f"  float   density: {floating.milliseconds:8.3f} ms "
          f"({integer.milliseconds / floating.milliseconds:.2f}x faster)")
    # The paper's claim: the float version is *faster*.
    assert floating.stats.cycles < integer.stats.cycles
    benchmark.extra_info["int_ms"] = round(integer.milliseconds, 3)
    benchmark.extra_info["float_ms"] = round(floating.milliseconds, 3)


def test_multiplication_cost_gap():
    """Microbenchmark of the raw gap: N multiplications each way."""
    program_int = """
    mul(0, _) :- !.
    mul(N, X) :- _ is X * X, M is N - 1, mul(M, X).
    """
    int_run = run_query(program_int, "mul(100, 1234)",
                        max_cycles=10_000_000)
    float_run = run_query(program_int, "mul(100, 1234.5)",
                          max_cycles=10_000_000)
    assert float_run.stats.cycles < int_run.stats.cycles
    # The gap per multiplication is the cost-table gap (30 vs 5).
    gap = (int_run.stats.cycles - float_run.stats.cycles) / 100
    assert 15 <= gap <= 40
