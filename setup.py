"""Setuptools shim so `python setup.py develop` works in offline
environments lacking the `wheel` package (pip editable installs need it).
All real metadata lives in pyproject.toml."""
from setuptools import setup

setup()
