"""First-class logic engines: streamed solutions, pause, migrate.

The BinProlog engine model (Tarau, arXiv 1102.1178, PAPERS.md) treats a
running query as a first-class value: an *engine* you create, ask for
one answer at a time, suspend, ship somewhere else, and resume.  PR 4's
durable :class:`~repro.core.traps.MachineCheckpoint` plus the
stop-at-solution hook in the ``'$answer'`` escape make that one small
API on this machine:

- :class:`Engine` — owns a warm :class:`~repro.core.machine.Machine`
  over a cached image.  :meth:`~Engine.next_solution` drives the
  search to the next answer and pauses the machine at an instruction
  boundary (the resumed search is **bit-identical** — solutions and
  ``RunStats`` — to an uninterrupted all-solutions run);
- :class:`EngineSnapshot` — :meth:`~Engine.pause` frozen into a
  pickle-safe value: the engine's checkpoint plus the identity needed
  to rebuild it anywhere the same program source is available
  (:meth:`Engine.resume` — same process, another process, another
  host);
- :class:`EngineStore` — a byte-budgeted parking lot for paused
  engines.  Resident payloads are LRU-bounded; cold ones spill to
  disk (hibernate) and rehydrate on demand, each wake verified
  against the content hash recorded at spill time
  (:class:`EngineStoreCorrupt` on mismatch).  A worker can schedule
  thousands of concurrent paused engines under a bounded RSS.

:class:`~repro.serve.session.SessionService` layers leases, crash
migration and reaping over these pieces; see docs/SESSIONS.md for the
lifecycle state machine.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.core.traps import MachineCheckpoint
from repro.errors import KCMError
from repro.serve.cache import ImageCache, default_image_cache, image_key

#: default resident-byte budget for an :class:`EngineStore` (beyond it,
#: least-recently-used paused engines hibernate to disk).
DEFAULT_STORE_BUDGET = 64 * 1024 * 1024


class EngineStoreCorrupt(KCMError):
    """A hibernated engine's bytes failed content-hash verification on
    wake: the spill file was truncated, tampered with or mixed up.  The
    engine is unrecoverable; the session layer fails the session rather
    than resume from silently wrong state."""


@dataclass(frozen=True)
class EngineSnapshot:
    """A paused engine, frozen into a pickle-safe value.

    Carries the full machine checkpoint plus the identity needed to
    rebuild the engine against a compile cache: the image *key* pins
    exactly which compiled image the checkpoint belongs to, and
    program/query/io_mode let any process holding the same sources
    recompile it on demand.  ``streamed`` and ``started`` restore the
    stream position so :meth:`Engine.next_solution` carries on where
    the paused engine left off.
    """

    key: str
    program: str
    query: str
    io_mode: str
    checkpoint: MachineCheckpoint
    streamed: int = 0
    started: bool = False

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "EngineSnapshot":
        snapshot = pickle.loads(payload)
        if not isinstance(snapshot, cls):
            raise TypeError(f"not an EngineSnapshot: {type(snapshot)}")
        return snapshot


class Engine:
    """One first-class logic engine: a query you pull answers from.

    Create it from program/query source (compiled through the shared
    :class:`~repro.serve.cache.ImageCache`, so engines over the same
    pair share one image) and call :meth:`next_solution` until it
    returns ``None``.  Between calls the machine sits paused at an
    instruction boundary; :meth:`pause` freezes it into a picklable
    :class:`EngineSnapshot` and :meth:`resume` rebuilds it — in this
    process or any other — continuing bit-identically.

    With ``checkpoint_every`` the engine executes in cycle slices and
    hands each boundary's *incremental* checkpoint (``since=``
    dirty-chunk deltas) to ``on_checkpoint`` — the durability hook the
    serving layer uses for crash migration.
    """

    def __init__(self, program: str, query: str,
                 io_mode: str = "stub",
                 cache: Optional[ImageCache] = None,
                 max_cycles: Optional[int] = None,
                 checkpoint_every: Optional[int] = None,
                 on_checkpoint: Optional[Callable] = None,
                 _snapshot: Optional[EngineSnapshot] = None):
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.cache = cache if cache is not None else default_image_cache()
        self.program = program
        self.query = query
        self.io_mode = io_mode
        self.key = image_key(program, query, io_mode)
        self.image = self.cache.get(program, query, io_mode=io_mode)
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint

        machine = Machine(symbols=self.image.symbols)
        self.image.install(machine)
        machine.image = self.image
        if max_cycles is not None:
            machine.max_cycles = max_cycles
        machine.stop_on_solution = True
        self._machine = machine
        self._started = False
        self._finished = False
        self._streamed = 0
        #: latest incremental capture (the ``since=`` base of the next)
        self._last_checkpoint: Optional[MachineCheckpoint] = None
        if _snapshot is not None:
            if _snapshot.key != self.key:
                raise ValueError(
                    f"snapshot key {_snapshot.key[:12]}... does not match "
                    f"this program/query ({self.key[:12]}...)")
            if _snapshot.started:
                machine._bootstrap_stub(self.image.entry)
                _snapshot.checkpoint.restore(machine)
                machine.stop_on_solution = True
                self._started = True
                self._finished = machine.halted or machine.exhausted
                self._last_checkpoint = _snapshot.checkpoint
            self._streamed = _snapshot.streamed
        if checkpoint_every is not None:
            # Armed for the engine's lifetime: the dirty set must keep
            # accumulating across next_solution() pauses, or a later
            # since= capture would wrongly share chunks written in an
            # earlier call's post-checkpoint tail.
            machine.memory.store.track_dirty = True

    # -- streaming -------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """No further solutions will come."""
        return self._finished

    @property
    def streamed(self) -> int:
        """Solutions handed out so far."""
        return self._streamed

    @property
    def solutions(self):
        """Every solution found so far (grows by one per
        :meth:`next_solution`)."""
        return self._machine.solutions

    @property
    def stats(self) -> RunStats:
        """Cumulative run statistics (final values once exhausted are
        bit-identical to an uninterrupted all-solutions run's)."""
        return self._machine.stats

    def next_solution(self) -> Optional[dict]:
        """Drive the search to the next answer; ``None`` when the
        search space is exhausted."""
        if self._finished:
            return None
        machine = self._machine
        before = len(machine.solutions)
        if self.checkpoint_every is not None:
            self._drive_sliced()
        elif not self._started:
            self._started = True
            machine.run(self.image.entry, collect_all=True,
                        answer_names=self.image.query_variable_names)
        else:
            machine.resume()
        if machine.halted or machine.exhausted:
            self._finished = True
        new = machine.solutions[before:]
        if new:
            self._streamed += 1
            return new[0]
        return None

    def _drive_sliced(self) -> None:
        """One stop-at-solution leg under the cycle-sliced checkpoint
        grid (same cadence semantics as the serving layer's)."""
        machine = self._machine
        every = self.checkpoint_every

        def next_stop(cycles: int) -> int:
            return cycles - cycles % every + every

        def on_stop(m: Machine) -> None:
            ckpt = MachineCheckpoint.capture(m, since=self._last_checkpoint)
            self._last_checkpoint = ckpt
            if self.on_checkpoint is not None:
                self.on_checkpoint(ckpt)

        if not self._started:
            self._started = True
            machine.run_sliced(self.image.entry, next_stop, on_stop,
                               collect_all=True,
                               answer_names=self.image.query_variable_names)
        else:
            machine.resume_sliced(next_stop, on_stop)

    # -- pause / resume --------------------------------------------------------

    def pause(self) -> EngineSnapshot:
        """Freeze the engine into a picklable snapshot.

        The capture is complete (safe to resume from with nothing
        else), and the engine itself remains usable — pausing is a
        read.
        """
        ckpt = MachineCheckpoint.capture(self._machine)
        # A full capture consumed the dirty set; it is the new base any
        # later incremental capture must diff against.
        self._last_checkpoint = ckpt
        return EngineSnapshot(
            key=self.key, program=self.program, query=self.query,
            io_mode=self.io_mode, checkpoint=ckpt,
            streamed=self._streamed, started=self._started)

    @classmethod
    def resume(cls, snapshot: EngineSnapshot,
               cache: Optional[ImageCache] = None,
               checkpoint_every: Optional[int] = None,
               on_checkpoint: Optional[Callable] = None) -> "Engine":
        """Rebuild a paused engine from its snapshot (any process with
        the same program source), continuing bit-identically."""
        return cls(snapshot.program, snapshot.query,
                   io_mode=snapshot.io_mode, cache=cache,
                   checkpoint_every=checkpoint_every,
                   on_checkpoint=on_checkpoint, _snapshot=snapshot)


class EngineStore:
    """A byte-budgeted parking lot for paused engines.

    Maps session ids to opaque payload bytes (pickled snapshots or
    checkpoints).  The newest payloads stay resident; once resident
    bytes exceed ``budget_bytes`` the least-recently-used spill to
    disk — *hibernate* — each recorded with its SHA-256.  :meth:`get`
    rehydrates a hibernated payload and verifies the hash
    (:class:`EngineStoreCorrupt` on mismatch), so a session never
    resumes from silently corrupted state.

    The accounting invariant the session chaos gate leans on: every
    payload is exactly resident or hibernated, and
    ``len(store) == 0`` once every session has been closed, exhausted
    or reaped — a nonzero count at :meth:`close` is a leaked engine.
    """

    def __init__(self, budget_bytes: int = DEFAULT_STORE_BUDGET,
                 directory: Optional[str] = None):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = budget_bytes
        self._resident: "OrderedDict[str, bytes]" = OrderedDict()
        self._resident_bytes = 0
        #: session id -> (spill path, sha256 hex, nbytes)
        self._hibernated: Dict[str, Tuple[str, str, int]] = {}
        self._directory = directory
        self._own_directory = directory is None
        self._seq = 0
        self.spills = 0                 # payloads written to disk
        self.wakes = 0                  # payloads read back and verified
        self._closed = False

    # -- accounting ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._resident) + len(self._hibernated)

    def __contains__(self, session_id: str) -> bool:
        return (session_id in self._resident
                or session_id in self._hibernated)

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def hibernated_count(self) -> int:
        return len(self._hibernated)

    # -- the parking lot -------------------------------------------------------

    def put(self, session_id: str, payload: bytes) -> None:
        """Park ``session_id``'s engine payload (replacing any previous
        one), spilling cold entries past the byte budget."""
        if self._closed:
            raise RuntimeError("engine store is closed")
        self._evict_entry(session_id)
        self._resident[session_id] = payload
        self._resident_bytes += len(payload)
        self._enforce_budget()

    def get(self, session_id: str) -> bytes:
        """The parked payload, rehydrated (and hash-verified) from disk
        if it had hibernated.  Raises ``KeyError`` when absent."""
        payload = self._resident.get(session_id)
        if payload is not None:
            self._resident.move_to_end(session_id)
            return payload
        path, digest, nbytes = self._hibernated.pop(session_id)
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
        except OSError as err:
            raise EngineStoreCorrupt(
                f"hibernated engine for session {session_id} is "
                f"unreadable: {err}") from err
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass
        if (len(payload) != nbytes
                or hashlib.sha256(payload).hexdigest() != digest):
            raise EngineStoreCorrupt(
                f"hibernated engine for session {session_id} failed "
                f"content verification (expected {nbytes} bytes, "
                f"sha256 {digest[:12]}...)")
        self.wakes += 1
        # Re-admit as the most recently used entry; something colder
        # may hibernate in its place.
        self._resident[session_id] = payload
        self._resident_bytes += len(payload)
        self._enforce_budget()
        return payload

    def pop(self, session_id: str) -> bool:
        """Forget ``session_id``'s payload entirely (session closed,
        exhausted or reaped); ``True`` if one was parked."""
        return self._evict_entry(session_id)

    def close(self) -> None:
        """Drop every payload and remove the spill directory (if this
        store created it)."""
        if self._closed:
            return
        self._closed = True
        for path, _, _ in self._hibernated.values():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._hibernated.clear()
        self._resident.clear()
        self._resident_bytes = 0
        if self._own_directory and self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None

    def __enter__(self) -> "EngineStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _evict_entry(self, session_id: str) -> bool:
        payload = self._resident.pop(session_id, None)
        if payload is not None:
            self._resident_bytes -= len(payload)
            return True
        entry = self._hibernated.pop(session_id, None)
        if entry is not None:
            try:
                os.unlink(entry[0])
            except OSError:
                pass
            return True
        return False

    def _enforce_budget(self) -> None:
        while (self._resident_bytes > self.budget_bytes
               and len(self._resident) > 1):
            session_id, payload = self._resident.popitem(last=False)
            self._resident_bytes -= len(payload)
            self._spill(session_id, payload)

    def _spill(self, session_id: str, payload: bytes) -> None:
        if self._directory is None:
            self._directory = tempfile.mkdtemp(prefix="kcm-engine-store-")
        self._seq += 1
        name = (hashlib.sha256(session_id.encode()).hexdigest()[:16]
                + f"-{self._seq}.engine")
        path = os.path.join(self._directory, name)
        with open(path, "wb") as handle:
            handle.write(payload)
        self._hibernated[session_id] = (
            path, hashlib.sha256(payload).hexdigest(), len(payload))
        self.spills += 1
