"""Deterministic chaos harness for the query service.

A :class:`ChaosPolicy` is a seeded generator of per-(slot, attempt)
:class:`ChaosPlan`\\ s, shipped to workers inside the task options:

- **kills** — the worker executes the query in cycle slices
  (:meth:`~repro.core.machine.Machine.run_sliced`) and commits suicide
  at the planned simulated-cycle threshold, after flushing any
  checkpoints already queued, so the parent observes a dead process
  mid-query exactly as a real crash would present;
- **delays** — the worker sleeps before delivering its result, widening
  the window for the timeout-expiry race the service must win in the
  result's favour;
- **injected machine faults** — the plan arms a
  :class:`~repro.recovery.FaultInjector` schedule (page faults, zone
  squeezes, spurious traps) inside the worker, with recovery handlers
  installed, exercising checkpoint/resume *across* trap recovery.

Everything is a pure function of ``(policy, slot index, attempt)``:
kills and delays are drawn per attempt (so a killed slot's retry runs
clean once ``max_kills_per_slot`` is spent), while the injector spec is
drawn per *slot* — every attempt of a slot replays the identical fault
schedule, which is what makes a resumed-from-checkpoint attempt and a
from-scratch retry agree bit-for-bit with the uninterrupted run.

:func:`verify_chaos_invariant` is the acceptance gate used by the tests
and the CI chaos smoke job: chaos-ridden ``run_many`` must return
solutions and statuses identical to the fault-free reference, with no
slot lost or duplicated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class ChaosKilled(Exception):
    """Raised inside a worker when its chaos plan says to die here.

    Internal control flow: the worker loop catches it, flushes its
    result pipe (checkpoints already shipped must survive — the crash
    model is SIGKILL between IPC writes, not a torn write) and calls
    ``os._exit``.
    """


@dataclass(frozen=True)
class ChaosPlan:
    """The concrete mischief for one (slot, attempt) execution."""

    kill_after_cycles: Optional[int] = None   # worker suicide threshold
    delay_result_s: float = 0.0               # sleep before result delivery
    inject: Optional[Dict[str, int]] = None   # FaultInjector kwargs
    #: interpret the kill threshold relative to the cycles the run
    #: starts at (session steps resume mid-stream at high cumulative
    #: counts an absolute window could never reach).
    kill_relative: bool = False

    @property
    def empty(self) -> bool:
        """Whether this plan changes nothing."""
        return (self.kill_after_cycles is None
                and not self.delay_result_s and self.inject is None)

    def apply(self, opts: dict) -> dict:
        """Task options with this plan folded in (the input is not
        mutated — plans differ per slot, the base options are shared)."""
        if self.empty:
            return opts
        merged = dict(opts)
        if self.kill_after_cycles is not None:
            merged["chaos_kill_cycles"] = self.kill_after_cycles
            if self.kill_relative:
                merged["chaos_kill_relative"] = True
        if self.delay_result_s:
            merged["chaos_delay_s"] = self.delay_result_s
        if self.inject is not None:
            merged["inject"] = self.inject
        return merged


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded chaos source for :meth:`QueryService.run_many`.

    Rates are probabilities per slot (kills/delays re-drawn per
    attempt).  ``max_kills_per_slot`` bounds how many attempts of one
    slot may be killed, so a kill-heavy policy still converges within a
    retry budget of ``max_kills_per_slot + 1`` attempts.
    """

    seed: int = 0
    kill_rate: float = 0.0
    kill_window: Tuple[int, int] = (1_000, 120_000)
    #: draw kill thresholds relative to each run's starting cycle count
    #: instead of as absolute simulated-time windows.  Session streams
    #: accumulate cycles across steps, so only a relative threshold
    #: keeps late steps killable (see ``ChaosPlan.kill_relative``).
    kill_relative: bool = False
    max_kills_per_slot: int = 1
    #: restrict kills to these batch slots (None: every slot draws).
    #: The poison-query tests use a single-slot tuple to model one
    #: query that murders every worker it touches while its batchmates
    #: run clean.
    kill_slots: Optional[Tuple[int, ...]] = None
    delay_rate: float = 0.0
    max_delay_s: float = 0.05
    inject_rate: float = 0.0
    inject_page_faults: int = 1
    inject_zone_squeezes: int = 1
    inject_spurious: int = 1
    inject_horizon: int = 50_000

    def plan(self, index: int, attempt: int) -> ChaosPlan:
        """The deterministic plan for execution ``attempt`` (1-based)
        of batch slot ``index``."""
        slot_rng = random.Random(self.seed * 2_000_003 + index * 7_919)
        inject = None
        if slot_rng.random() < self.inject_rate:
            inject = {
                "seed": self.seed * 65_537 + index,
                "page_faults": self.inject_page_faults,
                "zone_squeezes": self.inject_zone_squeezes,
                "spurious": self.inject_spurious,
                "horizon": self.inject_horizon,
            }
        attempt_rng = random.Random(self.seed * 4_000_037
                                    + index * 104_729 + attempt)
        kill_after = None
        killable = (self.kill_slots is None or index in self.kill_slots)
        if killable and attempt <= self.max_kills_per_slot \
                and attempt_rng.random() < self.kill_rate:
            low, high = self.kill_window
            kill_after = attempt_rng.randrange(low, high)
        delay = 0.0
        if attempt_rng.random() < self.delay_rate:
            delay = attempt_rng.random() * self.max_delay_s
        return ChaosPlan(kill_after_cycles=kill_after,
                         delay_result_s=delay, inject=inject,
                         kill_relative=self.kill_relative)

    def injects(self, index: int) -> bool:
        """Whether slot ``index`` runs with injected machine faults
        (injection is per slot, identical across attempts)."""
        return self.plan(index, 1).inject is not None


def verify_chaos_invariant(programs: Dict[str, str],
                           batch: Sequence,
                           chaos: ChaosPolicy,
                           retry=None,
                           workers: int = 2,
                           checkpoint_every: Optional[int] = 20_000,
                           timeout_s: Optional[float] = None,
                           all_solutions: bool = False,
                           **service_kwargs) -> Dict[str, object]:
    """Run ``batch`` fault-free and under ``chaos``; compare.

    The invariant (ISSUE 5 acceptance): solutions and statuses must be
    bit-identical to the fault-free in-process reference for every
    slot, with no slot lost or duplicated.  Simulated ``RunStats`` must
    additionally match for every slot whose plan injects no machine
    faults (injected faults legitimately add recovery cycles and trap
    counts; kills, delays and timeouts are host events that may never
    move simulated time).

    Returns a report dict with ``ok`` plus the mismatch lists the CI
    smoke job prints on failure.  Extra ``service_kwargs`` go to the
    chaos-ridden service (e.g. ``batch_max``/``use_shared_memory``, to
    pin the invariant across IPC protocol configurations).
    """
    from repro.serve.retry import RetryPolicy
    from repro.serve.service import QueryService

    if retry is None:
        retry = RetryPolicy(max_attempts=chaos.max_kills_per_slot + 2)
    with QueryService(programs, workers=0,
                      all_solutions=all_solutions) as reference_service:
        reference = reference_service.run_many(batch)
    with QueryService(programs, workers=workers,
                      all_solutions=all_solutions,
                      **service_kwargs) as service:
        chaotic = service.run_many(batch, timeout_s=timeout_s,
                                   retry=retry, chaos=chaos,
                                   checkpoint_every=checkpoint_every)
        health = service.health()

    mismatches: List[str] = []
    if len(chaotic) != len(batch):
        mismatches.append(f"slot count {len(chaotic)} != {len(batch)}")
    indices = [result.index for result in chaotic]
    if indices != list(range(len(batch))):
        mismatches.append(f"slot indices wrong or duplicated: {indices}")
    stats_checked = 0
    for expected, got in zip(reference, chaotic):
        where = f"slot {expected.index} ({expected.program!r})"
        if got.solutions != expected.solutions:
            mismatches.append(f"{where}: solutions differ")
        expected_kind = expected.error.kind if expected.error else None
        got_kind = got.error.kind if got.error else None
        if got_kind != expected_kind:
            mismatches.append(f"{where}: status {got_kind!r} "
                              f"!= {expected_kind!r}")
        if not chaos.injects(expected.index):
            stats_checked += 1
            if got.stats != expected.stats:
                mismatches.append(f"{where}: RunStats differ")
    return {
        "ok": not mismatches,
        "slots": len(batch),
        "stats_checked": stats_checked,
        "mismatches": mismatches,
        "health": health,
    }


def verify_session_chaos_invariant(programs: Dict[str, str],
                                   mix: Sequence[Tuple[str, str]],
                                   chaos: ChaosPolicy,
                                   retry=None,
                                   workers: int = 2,
                                   checkpoint_every: Optional[int] = 5_000,
                                   expire_slots: Optional[
                                       Dict[int, int]] = None,
                                   seed: int = 0,
                                   store_budget: Optional[int] = None,
                                   **session_kwargs) -> Dict[str, object]:
    """The session-layer chaos invariant (ISSUE 10 acceptance).

    Opens one session per ``mix`` slot, advances them round-robin
    (every still-open session steps in each round, so the steps
    micro-batch together) under ``chaos`` kills plus forced lease
    expiries, and checks:

    - every *surviving* session's solution sequence — and its final
      ``RunStats`` — is bit-identical to the fault-free in-process
      all-solutions reference for the same query;
    - expired sessions were reclaimed exactly as planned
      (``leases_expired`` matches, no surviving stream for them);
    - no engine leaked: the store and the active-session gauge are
      both zero once all traffic drained, and the disposition counters
      balance (``opened == done + failed + expired``).

    ``expire_slots`` maps slot index to the 1-based round *before*
    which its lease is forced to lapse; ``None`` draws a seeded plan
    expiring roughly a third of the slots in rounds 1-3.  Fault
    injection is rejected: injected traps legitimately add recovery
    cycles, which would make the bit-identity check vacuous.

    Returns a report dict shaped like :func:`verify_chaos_invariant`.
    """
    from repro.serve.engine import EngineStore
    from repro.serve.retry import RetryPolicy
    from repro.serve.session import (DONE, EXPIRED, FAILED, SOLUTION,
                                     SessionService)
    if chaos.inject_rate:
        raise ValueError("session invariant requires inject_rate == 0: "
                         "injected faults move simulated time")
    if retry is None:
        retry = RetryPolicy(max_attempts=chaos.max_kills_per_slot + 2)
    if expire_slots is None:
        rng = random.Random(seed)
        expire_slots = {index: rng.randrange(1, 4)
                        for index in range(len(mix))
                        if rng.random() < 0.34}

    from repro.serve.service import QueryService
    with QueryService(programs, workers=0,
                      all_solutions=True) as reference_service:
        reference = reference_service.run_many(list(mix))

    store = (EngineStore(budget_bytes=store_budget)
             if store_budget is not None else EngineStore())
    streams: Dict[int, List[dict]] = {i: [] for i in range(len(mix))}
    finals: Dict[int, object] = {}
    expired: set = set()
    failures: Dict[int, object] = {}
    migrations_seen = 0
    with SessionService(programs, workers=workers, chaos=chaos,
                        retry=retry, checkpoint_every=checkpoint_every,
                        store=store, **session_kwargs) as service:
        session_ids = [service.open(name, query) for name, query in mix]
        slot_of = {sid: i for i, sid in enumerate(session_ids)}
        open_ids = list(session_ids)
        round_number = 0
        while open_ids:
            round_number += 1
            for slot, when in expire_slots.items():
                if when == round_number and session_ids[slot] in open_ids:
                    service.expire_lease(session_ids[slot])
            outcomes = service.advance(open_ids)
            still_open = []
            for session_id, outcome in zip(open_ids, outcomes):
                slot = slot_of[session_id]
                migrations_seen += max(0, outcome.attempts - 1)
                if outcome.status == SOLUTION:
                    streams[slot].append(outcome.solution)
                    still_open.append(session_id)
                elif outcome.status == DONE:
                    finals[slot] = outcome
                elif outcome.status == EXPIRED:
                    expired.add(slot)
                else:
                    assert outcome.status == FAILED
                    failures[slot] = outcome.error
            open_ids = still_open
        health = service.health()
        counters = service.counters
        leaked = (len(service.store), service.active_sessions)

    mismatches: List[str] = []
    stats_checked = 0
    for slot, expected in enumerate(reference):
        name = mix[slot][0]
        where = f"slot {slot} ({name!r})"
        if slot in expired:
            if slot in finals:
                mismatches.append(f"{where}: both expired and finished")
            continue
        if slot in failures:
            mismatches.append(f"{where}: failed — {failures[slot]}")
            continue
        if slot not in finals:
            mismatches.append(f"{where}: never finished")
            continue
        outcome = finals[slot]
        if streams[slot] != expected.solutions:
            mismatches.append(f"{where}: streamed solutions differ")
        if outcome.solutions != expected.solutions:
            mismatches.append(f"{where}: final solutions differ")
        stats_checked += 1
        if outcome.stats != expected.stats:
            mismatches.append(f"{where}: RunStats differ")
    planned = {slot for slot, when in expire_slots.items()
               if slot in expired}
    if expired - set(expire_slots):
        mismatches.append(
            f"unplanned expiries: {sorted(expired - set(expire_slots))}")
    if health.leases_expired != len(expired):
        mismatches.append(
            f"leases_expired {health.leases_expired} != {len(expired)}")
    if leaked != (0, 0):
        mismatches.append(
            f"engines leaked at drain: store={leaked[0]} "
            f"active={leaked[1]}")
    opened = counters["sessions_opened"]
    settled = (counters["sessions_done"] + counters["sessions_failed"]
               + counters["leases_expired"] + counters["sessions_closed"])
    if opened != settled:
        mismatches.append(
            f"disposition imbalance: opened {opened} != settled {settled}")
    return {
        "ok": not mismatches,
        "slots": len(mix),
        "stats_checked": stats_checked,
        "expired": sorted(expired),
        "planned_expiries": sorted(planned),
        "migrations": migrations_seen,
        "mismatches": mismatches,
        "health": health,
    }
