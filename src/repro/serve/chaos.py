"""Deterministic chaos harness for the query service.

A :class:`ChaosPolicy` is a seeded generator of per-(slot, attempt)
:class:`ChaosPlan`\\ s, shipped to workers inside the task options:

- **kills** — the worker executes the query in cycle slices
  (:meth:`~repro.core.machine.Machine.run_sliced`) and commits suicide
  at the planned simulated-cycle threshold, after flushing any
  checkpoints already queued, so the parent observes a dead process
  mid-query exactly as a real crash would present;
- **delays** — the worker sleeps before delivering its result, widening
  the window for the timeout-expiry race the service must win in the
  result's favour;
- **injected machine faults** — the plan arms a
  :class:`~repro.recovery.FaultInjector` schedule (page faults, zone
  squeezes, spurious traps) inside the worker, with recovery handlers
  installed, exercising checkpoint/resume *across* trap recovery.

Everything is a pure function of ``(policy, slot index, attempt)``:
kills and delays are drawn per attempt (so a killed slot's retry runs
clean once ``max_kills_per_slot`` is spent), while the injector spec is
drawn per *slot* — every attempt of a slot replays the identical fault
schedule, which is what makes a resumed-from-checkpoint attempt and a
from-scratch retry agree bit-for-bit with the uninterrupted run.

:func:`verify_chaos_invariant` is the acceptance gate used by the tests
and the CI chaos smoke job: chaos-ridden ``run_many`` must return
solutions and statuses identical to the fault-free reference, with no
slot lost or duplicated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class ChaosKilled(Exception):
    """Raised inside a worker when its chaos plan says to die here.

    Internal control flow: the worker loop catches it, flushes its
    result pipe (checkpoints already shipped must survive — the crash
    model is SIGKILL between IPC writes, not a torn write) and calls
    ``os._exit``.
    """


@dataclass(frozen=True)
class ChaosPlan:
    """The concrete mischief for one (slot, attempt) execution."""

    kill_after_cycles: Optional[int] = None   # worker suicide threshold
    delay_result_s: float = 0.0               # sleep before result delivery
    inject: Optional[Dict[str, int]] = None   # FaultInjector kwargs

    @property
    def empty(self) -> bool:
        """Whether this plan changes nothing."""
        return (self.kill_after_cycles is None
                and not self.delay_result_s and self.inject is None)

    def apply(self, opts: dict) -> dict:
        """Task options with this plan folded in (the input is not
        mutated — plans differ per slot, the base options are shared)."""
        if self.empty:
            return opts
        merged = dict(opts)
        if self.kill_after_cycles is not None:
            merged["chaos_kill_cycles"] = self.kill_after_cycles
        if self.delay_result_s:
            merged["chaos_delay_s"] = self.delay_result_s
        if self.inject is not None:
            merged["inject"] = self.inject
        return merged


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded chaos source for :meth:`QueryService.run_many`.

    Rates are probabilities per slot (kills/delays re-drawn per
    attempt).  ``max_kills_per_slot`` bounds how many attempts of one
    slot may be killed, so a kill-heavy policy still converges within a
    retry budget of ``max_kills_per_slot + 1`` attempts.
    """

    seed: int = 0
    kill_rate: float = 0.0
    kill_window: Tuple[int, int] = (1_000, 120_000)
    max_kills_per_slot: int = 1
    #: restrict kills to these batch slots (None: every slot draws).
    #: The poison-query tests use a single-slot tuple to model one
    #: query that murders every worker it touches while its batchmates
    #: run clean.
    kill_slots: Optional[Tuple[int, ...]] = None
    delay_rate: float = 0.0
    max_delay_s: float = 0.05
    inject_rate: float = 0.0
    inject_page_faults: int = 1
    inject_zone_squeezes: int = 1
    inject_spurious: int = 1
    inject_horizon: int = 50_000

    def plan(self, index: int, attempt: int) -> ChaosPlan:
        """The deterministic plan for execution ``attempt`` (1-based)
        of batch slot ``index``."""
        slot_rng = random.Random(self.seed * 2_000_003 + index * 7_919)
        inject = None
        if slot_rng.random() < self.inject_rate:
            inject = {
                "seed": self.seed * 65_537 + index,
                "page_faults": self.inject_page_faults,
                "zone_squeezes": self.inject_zone_squeezes,
                "spurious": self.inject_spurious,
                "horizon": self.inject_horizon,
            }
        attempt_rng = random.Random(self.seed * 4_000_037
                                    + index * 104_729 + attempt)
        kill_after = None
        killable = (self.kill_slots is None or index in self.kill_slots)
        if killable and attempt <= self.max_kills_per_slot \
                and attempt_rng.random() < self.kill_rate:
            low, high = self.kill_window
            kill_after = attempt_rng.randrange(low, high)
        delay = 0.0
        if attempt_rng.random() < self.delay_rate:
            delay = attempt_rng.random() * self.max_delay_s
        return ChaosPlan(kill_after_cycles=kill_after,
                         delay_result_s=delay, inject=inject)

    def injects(self, index: int) -> bool:
        """Whether slot ``index`` runs with injected machine faults
        (injection is per slot, identical across attempts)."""
        return self.plan(index, 1).inject is not None


def verify_chaos_invariant(programs: Dict[str, str],
                           batch: Sequence,
                           chaos: ChaosPolicy,
                           retry=None,
                           workers: int = 2,
                           checkpoint_every: Optional[int] = 20_000,
                           timeout_s: Optional[float] = None,
                           all_solutions: bool = False,
                           **service_kwargs) -> Dict[str, object]:
    """Run ``batch`` fault-free and under ``chaos``; compare.

    The invariant (ISSUE 5 acceptance): solutions and statuses must be
    bit-identical to the fault-free in-process reference for every
    slot, with no slot lost or duplicated.  Simulated ``RunStats`` must
    additionally match for every slot whose plan injects no machine
    faults (injected faults legitimately add recovery cycles and trap
    counts; kills, delays and timeouts are host events that may never
    move simulated time).

    Returns a report dict with ``ok`` plus the mismatch lists the CI
    smoke job prints on failure.  Extra ``service_kwargs`` go to the
    chaos-ridden service (e.g. ``batch_max``/``use_shared_memory``, to
    pin the invariant across IPC protocol configurations).
    """
    from repro.serve.retry import RetryPolicy
    from repro.serve.service import QueryService

    if retry is None:
        retry = RetryPolicy(max_attempts=chaos.max_kills_per_slot + 2)
    with QueryService(programs, workers=0,
                      all_solutions=all_solutions) as reference_service:
        reference = reference_service.run_many(batch)
    with QueryService(programs, workers=workers,
                      all_solutions=all_solutions,
                      **service_kwargs) as service:
        chaotic = service.run_many(batch, timeout_s=timeout_s,
                                   retry=retry, chaos=chaos,
                                   checkpoint_every=checkpoint_every)
        health = service.health()

    mismatches: List[str] = []
    if len(chaotic) != len(batch):
        mismatches.append(f"slot count {len(chaotic)} != {len(batch)}")
    indices = [result.index for result in chaotic]
    if indices != list(range(len(batch))):
        mismatches.append(f"slot indices wrong or duplicated: {indices}")
    stats_checked = 0
    for expected, got in zip(reference, chaotic):
        where = f"slot {expected.index} ({expected.program!r})"
        if got.solutions != expected.solutions:
            mismatches.append(f"{where}: solutions differ")
        expected_kind = expected.error.kind if expected.error else None
        got_kind = got.error.kind if got.error else None
        if got_kind != expected_kind:
            mismatches.append(f"{where}: status {got_kind!r} "
                              f"!= {expected_kind!r}")
        if not chaos.injects(expected.index):
            stats_checked += 1
            if got.stats != expected.stats:
                mismatches.append(f"{where}: RunStats differ")
    return {
        "ok": not mismatches,
        "slots": len(batch),
        "stats_checked": stats_checked,
        "mismatches": mismatches,
        "health": health,
    }
