"""Multiprocess query service over warm machine pools.

``QueryService`` turns the single-shot :func:`repro.api.run_query` into
a persistent serving loop, the shape BinProlog's first-class logic
engines suggest (PAPERS.md): compile once, keep engines warm, fan
queries out.

Architecture
    The parent owns the compile-once image cache
    (:mod:`repro.serve.cache`) and ``workers`` persistent **spawn**
    processes.  Each worker runs :func:`_worker_main`: a loop over a
    private task queue, executing queries on an :class:`EnginePool` —
    one warm :class:`~repro.core.machine.Machine` per image, returned
    to power-on state between queries by
    :meth:`~repro.core.machine.Machine.reset_for_reuse`, whose
    run-after-reuse ≡ run-on-fresh guarantee is what makes results
    independent of which worker (and which machine incarnation) served
    a query.

Spawn safety and image transport
    Workers are started with the ``spawn`` method — nothing is
    inherited by fork, so the protocol must ship everything explicitly.
    Images cross the boundary pickled (builtin handlers travel as
    (name, arity) specs, rebuilt on arrival); machines are built inside
    the worker, so the unpicklable fused memory closures and dispatch
    tables never cross at all.  The pickled image bytes live in a
    parent-owned :mod:`multiprocessing.shared_memory` segment, pickled
    **once per service**: each worker — including every respawn after
    a crash — registers an image from a constant-size
    ``("image_shm", key, name, nbytes)`` message, copying the bytes
    out and detaching immediately.  Segments are unlinked in step with
    :class:`~repro.serve.cache.ImageCache` eviction (deferred to batch
    end while a chunk may still attach) and at :meth:`close`.  Where
    shared memory is unavailable the service falls back to shipping
    the payload over each worker's task queue, at most once per
    worker incarnation.

Scheduling and ordering
    ``run_many`` dispatches **micro-batches**: up to ``batch_max``
    runnable slots sharing one image key coalesce into a single
    ``("tasks", key, [(index, attempt, opts, ckpt), ...])`` message —
    one queue hop and one image lookup amortized over the chunk — and
    each worker holds at most one chunk in flight, so a slow query
    delays only its own worker.  Workers **stream** outcomes back in
    coalesced ``("done", ...)`` messages: sub-millisecond chunk-mates
    usually return as one reply, while anything slower flushes on a
    short cadence, so completion never waits for a whole chunk.
    Results are collected into the input slot order —
    ``run_many(queries)[i]`` always answers ``queries[i]`` — and
    failures are captured per query as structured :class:`QueryError`
    records; a failed query never kills the pool.  Deadline, retry,
    quarantine and chaos semantics stay **per-query**: each task in a
    chunk carries its own attempt counter and is disposed of
    individually (see ``_lose_worker`` for how a dead worker's chunk
    is accounted).

Resilience (docs/RESILIENCE.md)
    Failures are classified transient vs permanent
    (:mod:`repro.serve.retry`); with a :class:`RetryPolicy`,
    ``run_many`` re-dispatches transiently-failed slots after
    deterministic exponential backoff.  With ``checkpoint_every``, a
    worker executes long queries in cycle slices, shipping an
    incremental :class:`~repro.core.traps.MachineCheckpoint` to the
    parent at each boundary; a retry after a crash **resumes** the
    query on a fresh worker from its last checkpoint, bit-identical to
    an uninterrupted run.  ``max_queue_depth`` bounds admission —
    excess slots fail fast with ``QueryError(kind="Shed")`` instead of
    queueing unboundedly — ``deadline_s`` bounds the whole batch, and
    :meth:`QueryService.health` reports a :class:`ServiceHealth`
    counter snapshot.  The deterministic chaos harness
    (:mod:`repro.serve.chaos`) drives all of it under seeded worker
    kills, delivery delays and injected machine faults.

    Every resilience feature is opt-in and strictly zero-cost when
    idle: with no retry policy, no checkpoint cadence and no chaos,
    the dispatch path and the machine inner loops are exactly the
    non-resilient ones (the parallel-service benchmark pins this).

Timeouts
    Two budgets per query: ``max_cycles`` bounds *simulated* time (the
    machine's own watchdog raises ``CycleLimitExceeded``, captured like
    any error), and ``timeout_s`` bounds *host* time.  With deadline
    propagation (the default), the deadline ships to the worker and the
    engine abandons the query cooperatively at the next cycle-grid
    check — the worker survives and reports a ``WallTimeout`` failure;
    the parent's terminate-and-respawn only fires after a grace window,
    as the backstop for a worker wedged outside the interpreter.  A
    result that reaches the parent in the same poll interval as its
    deadline wins over the expiry: the collector drains delivered
    messages before judging deadlines.

Overload hardening (docs/RESILIENCE.md §7, :mod:`repro.serve.overload`)
    Per-query deadlines **propagate to workers**: the engine pool folds
    a cycle-grid stop check into ``run_sliced`` and abandons an expired
    query cooperatively (:class:`~repro.serve.overload.
    DeadlineAbandoned`), so a timeout costs the cycles to the next
    check instead of a worker kill and respawn; the parent's reaper and
    ``_expire_batch`` give in-flight workers a grace window to
    self-report before falling back to the kill.  A
    :class:`~repro.serve.overload.QuarantinePolicy` arms a per-query-key
    circuit breaker: a query whose attempts repeatedly kill workers or
    exhaust budgets is failed with ``QueryError(kind="poisoned")`` —
    immediately, on this and every later submission — instead of being
    retried forever.  A :class:`~repro.serve.overload.SupervisorPolicy`
    bounds worker respawns with exponential backoff; when every worker
    slot has exhausted its budget the pool has collapsed and the
    service turns **degraded**, draining the remaining work through the
    parent's in-process fallback pool (still correct, no longer
    parallel).  Admission control sheds by **priority class and age**
    (``run_many(..., priorities=...)``) rather than FIFO position.

``workers=0`` degrades to in-process serving over the same engine-pool
code path (no processes, no pickling); the parallel-service benchmark
uses it as the warm sequential baseline.  The in-process path cannot
preempt, kill or respawn anything, so retry policies, admission
control and chaos are worker-pool features; ``max_cycles``,
``checkpoint_every`` (cycle-sliced execution) and — via cooperative
deadline propagation — ``timeout_s``/``deadline_s`` work everywhere.
"""

from __future__ import annotations

import gc
import heapq
import os
import pickle
import threading
import time
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import multiprocessing as mp
from multiprocessing import connection as mp_connection

from repro.compiler.linker import LinkedImage
from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.core.traps import MachineCheckpoint
from repro.errors import KCMError, MachineError
from repro.serve.cache import ImageCache, default_image_cache, image_key
from repro.serve.chaos import ChaosKilled, ChaosPolicy
from repro.serve.overload import (
    POISONED, DeadlineAbandoned, QuarantineBreaker, QuarantinePolicy,
    SupervisorPolicy, WorkerSupervisor,
)
from repro.serve.retry import RetryPolicy, is_transient

#: default name a bare-string program is registered under.
DEFAULT_PROGRAM = "main"

#: how long the collector waits on the result pipes per poll when no
#: wall deadline is pending (also bounds crash detection latency).
_POLL_SECONDS = 1.0

#: seconds a worker gets to exit voluntarily on close() before being
#: terminated.
_CLOSE_GRACE = 5.0

#: exit status a chaos-killed worker dies with (distinguishable from a
#: SIGKILL'd or faulted worker in the process table; the parent treats
#: both identically as WorkerCrashed).
_CHAOS_EXIT = 13

#: default cycle cadence of the in-engine deadline stop check (only
#: armed when the query actually carries a host deadline).
_DEADLINE_CHECK_CYCLES = 25_000

#: grace the parent gives a deadline-carrying worker to abandon the
#: query and self-report before falling back to terminate-and-respawn.
_DEADLINE_GRACE = 1.5

#: default micro-batch size: how many same-image tasks may coalesce
#: into one ``("tasks", ...)`` message (and, usually, one reply).
_BATCH_MAX = 8

#: how far into the runnable queue the chunker looks for same-image
#: tasks to coalesce (bounds the per-dispatch scan on huge batches).
_COALESCE_WINDOW = 256

#: a worker flushes buffered outcomes at least this often while a
#: chunk is still producing results — short queries batch into one
#: reply, anything slower streams back as it finishes.
_STREAM_FLUSH_S = 0.05

#: minimum interval between worker liveness signals while a sliced
#: run is in progress (checkpoint / deadline-check boundaries).
_HB_INTERVAL = 0.5

#: a worker runs with the cyclic garbage collector disabled and
#: collects explicitly every this many completed tasks — collection
#: happens between micro-batches, off the query path.  The in-process
#: (workers=0) path never touches GC state: it runs in the caller's
#: interpreter, which is not ours to tune.
_GC_DEFER_TASKS = 200


@dataclass
class QueryError:
    """A structured per-query failure (the pool survives it).

    ``transient`` marks host-side failure kinds (worker death, wall
    budget, shedding — see :mod:`repro.serve.retry`) that may succeed
    if re-submitted; deterministic machine failures reproduce exactly
    and are permanent.  ``attempts`` counts how many executions the
    slot consumed before the failure became final (0: never
    dispatched).
    """

    kind: str                       # exception class name or budget kind
    message: str
    pc: Optional[int] = None        # faulting PC for machine errors
    cycles: Optional[int] = None    # simulated cycles at the failure
    transient: bool = False
    attempts: int = 1

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class ServiceHealth:
    """A point-in-time snapshot of service liveness and lifetime
    counters (:meth:`QueryService.health`)."""

    workers: int                    # configured pool size
    workers_alive: int              # processes currently alive
    queue_depth: int                # admitted-but-undispatched slots
    inflight: int                   # queries currently on workers
    degraded: bool                  # worker pool collapsed; serving
                                    # through the local fallback path
    quarantined_keys: int           # query keys with an open breaker
    respawns: int                   # worker processes restarted
    retries: int                    # transient failures re-dispatched
    resumes: int                    # retries resumed from a checkpoint
    sheds: int                      # slots refused by admission control
    timeouts: int                   # WallTimeout expiries
    crashes: int                    # WorkerCrashed detections
    completed: int                  # slots finished ok
    failed: int                     # slots finished with a final error
    checkpoints_received: int       # checkpoint payloads collected
    quarantines: int                # slots failed poisoned by the breaker
    deadline_abandons: int          # queries abandoned cooperatively
                                    # at an in-engine deadline check
    local_fallbacks: int            # slots served by the degraded-mode
                                    # in-process fallback pool
    workers_retired: int            # worker slots past their restart
                                    # budget (never respawned again)
    # Session-layer gauges and counters (zero on a bare QueryService;
    # filled in by repro.serve.session.SessionService.health()).
    active_sessions: int = 0        # open sessions holding an engine
    hibernated_engines: int = 0     # paused engines spilled to disk
    migrations: int = 0             # session steps recovered on another
                                    # worker after a mid-stream crash
    leases_expired: int = 0         # sessions reclaimed by the reaper
    #: seconds since each worker was last heard from (startup herald or
    #: any result/checkpoint message).
    heartbeat_age_s: Dict[int, float] = field(default_factory=dict)


@dataclass
class ServiceResult:
    """One query's outcome, detached from any machine or image.

    Unlike :class:`repro.api.QueryResult`, a service result never
    references a machine: a batch of 10k results retains solutions and
    statistics, not 10k simulated heaps.
    """

    index: int                      # position in the run_many batch
    program: str
    query: str
    solutions: List[dict] = field(default_factory=list)
    stats: Optional[RunStats] = None
    output: str = ""
    error: Optional[QueryError] = None
    worker: int = -1                # -1: parent (in-process or pre-run)
    host_seconds: float = 0.0       # wall time inside the engine
    #: session streaming (:meth:`QueryService.run_steps`): the engine
    #: paused at a fresh solution instead of running to exhaustion;
    #: ``session_payload`` is its pickled checkpoint, the token the
    #: next step resumes from.  ``attempts`` counts executions this
    #: step consumed (>1 means crashed attempts were recovered).
    paused: bool = False
    session_payload: Optional[bytes] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Whether the query executed to completion."""
        return self.error is None

    @property
    def succeeded(self) -> bool:
        """Whether it completed with at least one solution."""
        return self.error is None and bool(self.solutions)


class EnginePool:
    """Warm machines keyed by image, reset between queries.

    Shared by the worker processes and the ``workers=0`` in-process
    path, so both execute queries through identical code.  The pool is
    LRU-bounded on machines; evicting a machine is always safe because
    a fresh machine over the same image produces bit-identical results
    (the warm-reuse determinism guarantee).
    """

    def __init__(self, max_machines: int = 64):
        self.max_machines = max_machines
        self._machines: "OrderedDict[str, Machine]" = OrderedDict()
        #: constructor-default cycle budget, restored before every
        #: query so a per-query ``max_cycles`` never leaks to the next.
        self._default_budget: Dict[str, int] = {}
        #: keys whose pooled machine has recovery handlers installed
        #: (reset_for_reuse keeps trap handlers, so once is enough).
        self._recovered: Set[str] = set()

    def machine_for(self, key: str, image: LinkedImage,
                    recovery: bool = False) -> Machine:
        """A power-on-state machine loaded with ``image``."""
        machine = self._machines.get(key)
        if machine is None:
            machine = Machine(symbols=image.symbols)
            image.install(machine)
            machine.image = image
            while len(self._machines) >= self.max_machines:
                evicted_key, _ = self._machines.popitem(last=False)
                self._default_budget.pop(evicted_key, None)
                self._recovered.discard(evicted_key)
            self._machines[key] = machine
            self._default_budget[key] = machine.max_cycles
        else:
            self._machines.move_to_end(key)
            machine.max_cycles = self._default_budget[key]
            machine.reset_for_reuse()
        if recovery and key not in self._recovered:
            from repro.recovery import install_default_recovery
            install_default_recovery(machine)
            self._recovered.add(key)
        return machine

    def drop(self, key: str) -> None:
        """Forget the warm machine for ``key`` (safe at any time: a
        fresh machine over the same image is bit-identical)."""
        self._machines.pop(key, None)
        self._default_budget.pop(key, None)
        self._recovered.discard(key)

    def run(self, key: str, image: LinkedImage, opts: dict,
            on_checkpoint: Optional[Callable] = None,
            resume_from: Optional[MachineCheckpoint] = None,
            on_slice: Optional[Callable[[], None]] = None,
            ) -> Tuple[Machine, RunStats, float]:
        """Execute one query; returns (machine, stats, host_seconds).

        With ``resume_from``, the query continues from a
        :class:`MachineCheckpoint` captured by an earlier (possibly
        dead) incarnation instead of starting over; with
        ``opts["checkpoint_every"]`` and an ``on_checkpoint`` callback,
        execution proceeds in cycle slices and each boundary's
        incremental checkpoint is handed to the callback.  Raises
        whatever the run raises — the caller owns failure capture.
        """
        inject = opts.get("inject")
        machine = self.machine_for(
            key, image,
            recovery=bool(opts.get("recovery")) or inject is not None)
        if inject is not None:
            from repro.recovery import FaultInjector
            # Rebuilt from the same spec on every attempt: the schedule
            # is a pure function of its arguments, and restore() below
            # re-applies the checkpointed mid-run progress on resume.
            FaultInjector(**inject).attach(machine)
        if resume_from is not None:
            # The stub gives resume() its exit continuation (the run
            # bootstrap normally writes it); the checkpoint then
            # overwrites registers, store, timing and host state.  The
            # checkpoint's saved cycle budget is the *slice* target it
            # was captured under — restore the real budget after.
            machine._bootstrap_stub(image.entry)
            resume_from.restore(machine)
            machine.max_cycles = (opts["max_cycles"]
                                  if opts.get("max_cycles") is not None
                                  else self._default_budget[key])
        elif opts.get("max_cycles") is not None:
            machine.max_cycles = opts["max_cycles"]
        # Assigned (not just set) every run: a pooled machine must not
        # leak one query's stop-at-solution mode into the next, and a
        # restored checkpoint's captured flag must yield to the step's.
        machine.stop_on_solution = bool(opts.get("stop_on_solution"))
        return self._drive(machine, image, opts, on_checkpoint, resume_from,
                           on_slice)

    def _drive(self, machine: Machine, image: LinkedImage, opts: dict,
               on_checkpoint: Optional[Callable],
               resume_from: Optional[MachineCheckpoint],
               on_slice: Optional[Callable[[], None]] = None,
               ) -> Tuple[Machine, RunStats, float]:
        """Run (or resume) the machine, plain or cycle-sliced."""
        collect_all = opts.get("all_solutions", False)
        every = opts.get("checkpoint_every")
        kill_at = opts.get("chaos_kill_cycles")
        deadline = opts.get("deadline_monotonic")
        check = opts.get("deadline_check_cycles")
        # Deadline propagation: only armed when the query carries a
        # host deadline *and* a check cadence — otherwise the dispatch
        # path is byte-identical to the deadline-free one.
        armed_deadline = (deadline if deadline is not None
                          and check is not None else None)
        started = time.perf_counter()
        if every is None and kill_at is None and armed_deadline is None:
            # The idle path: exactly the pre-resilience dispatch.
            if resume_from is None:
                stats = machine.run(image.entry, collect_all=collect_all,
                                    answer_names=image.query_variable_names)
            else:
                stats = machine.resume()
            return machine, stats, time.perf_counter() - started

        # A chaos kill planned at a cycle the resumed run is already
        # past stays disarmed — otherwise a resume could die instantly
        # at its first boundary, forever.  Relative plans instead arm
        # at start + threshold: a session step deep into a stream (high
        # cumulative cycles) stays killable mid-step.
        start_cycles = machine.cycles if resume_from is not None else 0
        if kill_at is not None and opts.get("chaos_kill_relative"):
            kill_at = start_cycles + kill_at
        armed_kill = (kill_at if kill_at is not None
                      and start_cycles < kill_at else None)

        def next_stop(cycles: int) -> Optional[int]:
            targets = []
            if every is not None:
                # Cycle-aligned grid: a resumed run stops at the same
                # absolute boundaries an uninterrupted one does.
                targets.append(cycles - cycles % every + every)
            if armed_kill is not None:
                targets.append(armed_kill)
            if armed_deadline is not None:
                targets.append(cycles - cycles % check + check)
            return min(targets) if targets else None

        previous = [resume_from]

        def on_stop(m: Machine) -> None:
            # Liveness first: a worker slicing a long query signals the
            # parent even when this boundary is about to raise.
            if on_slice is not None:
                on_slice()
            if armed_kill is not None and m.cycles >= armed_kill:
                raise ChaosKilled(f"chaos kill at cycle {m.cycles}")
            if (armed_deadline is not None
                    and time.monotonic() >= armed_deadline):
                raise DeadlineAbandoned(
                    opts.get("deadline_kind", "WallTimeout"), m.cycles)
            if every is not None and on_checkpoint is not None:
                ckpt = MachineCheckpoint.capture(m, since=previous[0])
                previous[0] = ckpt
                on_checkpoint(ckpt)

        track = every is not None and on_checkpoint is not None
        store = machine.memory.store
        if track:
            # Arm dirty-page tracking before the run builds its fused
            # write closure, so post-checkpoint captures copy only the
            # chunks the run actually touched since the last one.
            store.track_dirty = True
            store.dirty_chunks.clear()
        try:
            if resume_from is None:
                stats = machine.run_sliced(
                    image.entry, next_stop, on_stop,
                    collect_all=collect_all,
                    answer_names=image.query_variable_names)
            else:
                stats = machine.resume_sliced(next_stop, on_stop)
            return machine, stats, time.perf_counter() - started
        finally:
            if track:
                store.track_dirty = False
                store.dirty_chunks.clear()


def _capture_error(err: BaseException,
                   machine: Optional[Machine]) -> QueryError:
    if machine is not None:
        cycles = machine.cycles
    else:
        # MachineError carries the partial run statistics; compile-time
        # errors carry neither and report no cycle count.
        stats = getattr(err, "stats", None)
        cycles = stats.cycles if stats is not None else None
    kind = type(err).__name__
    return QueryError(
        kind=kind,
        message=str(err),
        pc=getattr(err, "pc", None),
        cycles=cycles,
        transient=is_transient(kind),
    )


class _ResultSender:
    """Worker-side result streaming: buffer per-task outcomes and ship
    them in coalesced ``("done", ...)`` messages.

    Short queries amortize — a whole micro-batch of sub-millisecond
    tasks usually returns as one pipe message — while anything slower
    streams: :meth:`add` flushes whenever ``flush_interval_s`` has
    passed since the last send, so the parent sees results (and
    liveness) at that granularity without a per-task round-trip.
    :meth:`tick` is the sliced-run liveness hook: called at checkpoint
    and deadline-check boundaries, it flushes stale buffers and emits
    an explicit heartbeat when there is nothing else to say.  The clock
    is injectable for tests.
    """

    def __init__(self, result_conn, worker_id: int,
                 flush_interval_s: float = _STREAM_FLUSH_S,
                 hb_interval_s: float = _HB_INTERVAL,
                 clock: Callable[[], float] = time.monotonic):
        self._conn = result_conn
        self._worker_id = worker_id
        self._flush_interval = flush_interval_s
        self._hb_interval = hb_interval_s
        self._clock = clock
        self._buffer: List[tuple] = []
        self._last_send = clock()

    def send_now(self, message: tuple) -> None:
        """Ship ``message`` immediately (checkpoints, heartbeats)."""
        self._conn.send(message)
        self._last_send = self._clock()

    def heartbeat(self) -> None:
        self.send_now(("hb", self._worker_id, time.monotonic()))

    def add(self, outcome: tuple) -> None:
        """Buffer one task outcome; flush if the stream went stale."""
        self._buffer.append(outcome)
        if self._clock() - self._last_send >= self._flush_interval:
            self.flush()

    def flush(self) -> None:
        """Ship everything buffered as one ``("done", ...)`` message."""
        if self._buffer:
            self._conn.send(("done", self._worker_id, self._buffer))
            self._buffer = []
            self._last_send = self._clock()

    def tick(self) -> None:
        """Mid-run liveness: flush or heartbeat if we have been quiet
        longer than the heartbeat interval."""
        if self._clock() - self._last_send < self._hb_interval:
            return
        if self._buffer:
            self.flush()
        else:
            self.heartbeat()


def _shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` is importable here
    (absent on some minimal platforms; the service falls back to
    per-worker queue shipping)."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
        return True
    except Exception:
        return False


def _attach_shared_image(name: str, nbytes: int) -> LinkedImage:
    """Unpickle a parent-shipped image out of a shared-memory segment.

    The worker copies the bytes out and detaches immediately — the
    parent owns the segment's lifetime (unlinked on cache eviction or
    close), so the attachment must stay out of the resource tracker:
    spawn children share the parent's tracker process, and a tracked
    attachment would clobber the parent's own registration for the
    segment (every worker death by ``os._exit`` — the chaos model —
    would then leave the shared tracker confused about who owns what).
    ``track=False`` does that on Python >= 3.13; earlier versions
    attach-register unconditionally, so registration is suppressed for
    the duration of the attach instead (the worker loop is
    single-threaded, and the patch filters only shared-memory
    registrations).
    """
    from multiprocessing import shared_memory
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker
        original = resource_tracker.register

        def _register(rname, rtype, _original=original):
            if rtype != "shared_memory":
                _original(rname, rtype)

        resource_tracker.register = _register
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    try:
        return pickle.loads(bytes(shm.buf[:nbytes]))
    finally:
        shm.close()


def _worker_main(worker_id: int, task_queue, result_conn,
                 max_machines: int) -> None:
    """The worker process loop (must stay a module-level function: the
    spawn start method imports this module and looks it up by name).

    Protocol, parent to worker:
      ``("image", key, payload)`` — register a pickled image,
      ``("image_shm", key, segment_name, nbytes)`` — register an image
      from a parent-owned shared-memory segment (copied out and
      detached on arrival),
      ``("drop", key)`` — forget a registered image (cache eviction),
      ``("tasks", key, [(index, attempt, opts, ckpt_or_None), ...])``
      — execute a micro-batch of same-image queries in order,
      ``None`` — exit.
    Worker to parent (a per-worker result pipe — single writer, no
    queue feeder thread; every outcome carries the attempt number so
    replies from a superseded execution are dropped):
      ``("hb", worker_id, monotonic_ts)`` — startup herald / liveness,
      ``("ckpt", worker_id, index, attempt, payload)`` — shipped
      immediately (a buffered checkpoint would be useless after a
      crash),
      ``("done", worker_id, [outcome, ...])`` — streamed batches of
      ``(index, attempt, "ok", solutions, stats, output, seconds)``,
      ``(index, attempt, "paused", solutions, stats, output, seconds,
      ckpt_payload)`` (stop-at-solution session steps), or
      ``(index, attempt, "err", QueryError, stats_or_None)``.

    The worker defers cyclic garbage collection: the collector is
    disabled at startup and run explicitly between micro-batches every
    ``_GC_DEFER_TASKS`` tasks — a dedicated serving process can move
    GC pauses off the query path, which an in-process library call
    (workers=0 shares the caller's interpreter) must not do.

    A chaos-killed worker (:class:`ChaosKilled` from its plan's cycle
    threshold) flushes buffered outcomes and checkpoints — completed
    work already handed to IPC must survive; the crash model is death
    *between* IPC writes, not a torn write — then dies via
    ``os._exit`` so the parent observes a dead process mid-chunk: the
    flushed tasks stand, the rest fail ``WorkerCrashed`` and retry.
    """
    images: Dict[str, LinkedImage] = {}
    pool = EnginePool(max_machines=max_machines)
    sender = _ResultSender(result_conn, worker_id)
    sender.heartbeat()
    gc.disable()
    tasks_since_collect = 0
    while True:
        message = task_queue.get()
        if message is None:
            sender.flush()
            return
        kind = message[0]
        if kind == "image":
            _, key, payload = message
            images[key] = pickle.loads(payload)
            continue
        if kind == "image_shm":
            _, key, name, nbytes = message
            try:
                images[key] = _attach_shared_image(name, nbytes)
            except Exception:
                # Segment gone (evicted in a rare race): leave the key
                # unregistered; the tasks below fail ImageUnavailable
                # and the parent re-ships on retry.
                images.pop(key, None)
            continue
        if kind == "drop":
            _, key = message
            images.pop(key, None)
            pool.drop(key)
            continue
        _, key, tasks = message
        image = images.get(key)
        for index, attempt, opts, ckpt_payload in tasks:
            machine: Optional[Machine] = None
            try:
                if image is None:
                    sender.add((index, attempt, "err", QueryError(
                        kind="ImageUnavailable",
                        message=f"image {key[:12]}... not registered "
                                f"with worker {worker_id}",
                        transient=True), None))
                    continue
                deadline = opts.get("deadline_monotonic")
                if (deadline is not None
                        and opts.get("deadline_check_cycles") is not None
                        and time.monotonic() >= deadline):
                    # Expired while queued behind its chunk-mates: same
                    # cooperative abandonment, zero cycles spent.
                    raise DeadlineAbandoned(
                        opts.get("deadline_kind", "WallTimeout"), 0)
                resume_from = (pickle.loads(ckpt_payload)
                               if ckpt_payload is not None else None)
                on_checkpoint = None
                if opts.get("checkpoint_every") is not None:
                    def on_checkpoint(ckpt, _index=index,
                                      _attempt=attempt):
                        sender.send_now(
                            ("ckpt", worker_id, _index, _attempt,
                             pickle.dumps(
                                 ckpt,
                                 protocol=pickle.HIGHEST_PROTOCOL)))
                machine, stats, seconds = pool.run(
                    key, image, opts,
                    on_checkpoint=on_checkpoint, resume_from=resume_from,
                    on_slice=sender.tick)
                delay = opts.get("chaos_delay_s")
                if delay:
                    time.sleep(delay)
                if (machine.solution_paused
                        and not machine.halted and not machine.exhausted):
                    # Stop-at-solution: the engine paused with a fresh
                    # answer and more search left.  Ship its checkpoint
                    # as the resume token — the machine itself stays
                    # here only as a warm pool entry; the parent owns
                    # the session state (a later step may resume on any
                    # worker).
                    sender.add((index, attempt, "paused",
                                machine.solutions, stats,
                                "".join(machine.output), seconds,
                                pickle.dumps(
                                    MachineCheckpoint.capture(machine),
                                    protocol=pickle.HIGHEST_PROTOCOL)))
                else:
                    sender.add((index, attempt, "ok", machine.solutions,
                                stats, "".join(machine.output), seconds))
            except ChaosKilled:
                sender.flush()
                result_conn.close()
                os._exit(_CHAOS_EXIT)
            except DeadlineAbandoned as err:
                # Cooperative deadline expiry: the worker survives, the
                # task reports a typed transient failure, and the
                # parent's reaper never has to kill anything.
                sender.add((index, attempt, "err",
                            QueryError(kind=err.kind, message=str(err),
                                       cycles=err.cycles,
                                       transient=True), None))
            except MachineError as err:
                sender.add((index, attempt, "err",
                            _capture_error(err, machine),
                            getattr(err, "stats", None)))
            except BaseException as err:  # noqa: BLE001 — pool survives
                sender.add((index, attempt, "err",
                            _capture_error(err, machine), None))
        sender.flush()
        tasks_since_collect += len(tasks)
        if tasks_since_collect >= _GC_DEFER_TASKS:
            gc.collect()
            tasks_since_collect = 0


#: a query is a bare string (against the default program) or an
#: explicit (program_name, query_text) pair.
Query = Union[str, Tuple[str, str]]


@dataclass
class _BatchState:
    """Everything one ``run_many`` collection loop tracks."""

    queries: Sequence
    prepared: List
    opts: dict
    timeout_s: Optional[float]
    results: List
    policy: Optional[RetryPolicy]
    chaos: Optional[ChaosPolicy]
    batch_deadline: Optional[float]
    runnable: deque
    idle: deque
    #: worker_id -> {slot index: (attempt, host deadline, propagated —
    #: whether the worker itself is watching that deadline)}.  One
    #: entry per worker holds its whole in-flight micro-batch; tasks
    #: leave the inner dict as their outcomes stream back.  Insertion
    #: order is chunk order, so the first remaining entry is the task
    #: the worker is currently running (the ones behind it are queued).
    inflight: Dict[int, Dict[int, Tuple[int, Optional[float], bool]]] = \
        field(default_factory=dict)
    #: min-heap of (ready time, worker_id) awaiting a supervised
    #: backoff-delayed respawn
    respawn_ready: List[Tuple[float, int]] = field(default_factory=list)
    #: slot index -> executions started so far
    attempts: Dict[int, int] = field(default_factory=dict)
    #: slot index -> latest checkpoint payload from the live attempt
    checkpoints: Dict[int, bytes] = field(default_factory=dict)
    #: slot index -> payload the next dispatch should resume from
    resume_payload: Dict[int, bytes] = field(default_factory=dict)
    #: slot index -> the payload the slot *started* from (session
    #: steps).  A retry with no mid-run checkpoint must fall back to
    #: this, never to a from-scratch run: restarting a mid-session
    #: step from the query entry would re-find solution #1.
    base_payload: Dict[int, bytes] = field(default_factory=dict)
    #: min-heap of (ready time, slot index) awaiting retry backoff
    retry_ready: List[Tuple[float, int]] = field(default_factory=list)


class QueryService:
    """A warm, optionally multiprocess query server for fixed programs.

    ``program`` is one source text (registered as ``"main"``) or a
    ``{name: source}`` mapping.  ``workers=0`` serves in-process on one
    engine pool; ``workers>=1`` starts that many persistent spawn
    workers.  Use as a context manager, or call :meth:`close`.

    Resilience knobs (all opt-in, see the module docstring):
    ``retry`` (a :class:`~repro.serve.retry.RetryPolicy`),
    ``checkpoint_every`` (cycles between checkpoints of long queries),
    ``max_queue_depth`` (admission bound beyond the worker count), and
    ``chaos`` (a :class:`~repro.serve.chaos.ChaosPolicy`, tests/CI
    only).  Each has a per-batch override on :meth:`run_many`.

    Overload knobs (:mod:`repro.serve.overload`): ``quarantine`` arms
    the poison-query circuit breaker, ``supervisor`` bounds worker
    respawns (exhausting every budget degrades the service to the
    in-process fallback path), and ``deadline_check_cycles`` sets the
    cadence of the in-engine deadline stop check (``None`` disables
    propagation and restores parent-side kills as the only deadline
    enforcement; it only engages for queries that carry a deadline).
    """

    def __init__(self, program: Union[str, Dict[str, str]],
                 workers: int = 0,
                 io_mode: str = "stub",
                 all_solutions: bool = False,
                 max_cycles: Optional[int] = None,
                 recovery: bool = False,
                 cache: Optional[ImageCache] = None,
                 max_machines: int = 64,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint_every: Optional[int] = None,
                 max_queue_depth: Optional[int] = None,
                 chaos: Optional[ChaosPolicy] = None,
                 quarantine: Optional[QuarantinePolicy] = None,
                 supervisor: Optional[SupervisorPolicy] = None,
                 deadline_check_cycles: Optional[int]
                 = _DEADLINE_CHECK_CYCLES,
                 batch_max: int = _BATCH_MAX,
                 use_shared_memory: bool = True):
        if isinstance(program, str):
            self.programs = {DEFAULT_PROGRAM: program}
        else:
            if not program:
                raise ValueError("no programs given")
            self.programs = dict(program)
        self.default_program = next(iter(self.programs))
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if deadline_check_cycles is not None and deadline_check_cycles <= 0:
            raise ValueError("deadline_check_cycles must be positive")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.workers = workers
        self.batch_max = batch_max
        self.io_mode = io_mode
        self.all_solutions = all_solutions
        self.max_cycles = max_cycles
        self.recovery = recovery
        self.max_machines = max_machines
        self.retry = retry
        self.checkpoint_every = checkpoint_every
        self.max_queue_depth = max_queue_depth
        self.chaos = chaos
        self.quarantine = quarantine
        self.deadline_check_cycles = deadline_check_cycles
        self.cache = cache if cache is not None else default_image_cache()

        self._closed = False
        self._local_pool: Optional[EnginePool] = None
        self._fallback_pool: Optional[EnginePool] = None
        self._degraded = False
        self._breaker = (QuarantineBreaker(quarantine)
                         if quarantine is not None else None)
        self._supervisor = (WorkerSupervisor(supervisor)
                            if supervisor is not None else None)
        self._payloads: Dict[str, bytes] = {}
        #: key -> (SharedMemory segment, payload length).  The parent
        #: owns every segment: created on first ship, unlinked on cache
        #: eviction or close; workers copy out and detach immediately.
        self._segments: Dict[str, Tuple] = {}
        self._ship_lock = threading.Lock()
        self._pending_drops: Set[str] = set()
        self._use_shm = bool(workers) and use_shared_memory \
            and _shm_available()
        self._eviction_listener: Optional[Callable[[str], None]] = None
        self._context = mp.get_context("spawn")
        #: per-worker result pipes (receive ends).  One single-writer
        #: pipe per worker instead of one shared queue: no feeder
        #: threads on the result path, and a dead worker announces
        #: itself instantly as EOF instead of waiting out a liveness
        #: poll.
        self._result_conns: List = []
        self._task_queues: List = []
        self._processes: List = []
        self._shipped: List[set] = []
        #: image key of each worker's last dispatched chunk, for the
        #: hot-worker affinity pick in :meth:`_claim_worker`.
        self._worker_last_key: Dict[int, str] = {}
        self._batch: Optional[_BatchState] = None
        self._last_seen: Dict[int, float] = {}
        self._counters: Dict[str, int] = {
            "respawns": 0, "retries": 0, "resumes": 0, "sheds": 0,
            "timeouts": 0, "crashes": 0, "completed": 0, "failed": 0,
            "checkpoints_received": 0, "quarantines": 0,
            "deadline_abandons": 0, "local_fallbacks": 0,
            "workers_retired": 0,
        }
        if workers:
            for worker_id in range(workers):
                self._spawn_worker(worker_id, fresh=True)
            # Keep the parent's derived per-key state (payloads,
            # segments, worker shipped-image records) in step with the
            # cache.  The listener holds the service only weakly: the
            # process-global cache outlives any one service, and a
            # strong reference from it would keep a dropped service —
            # and its worker processes — alive forever.
            self_ref = weakref.ref(self)

            def _on_evict(key: str, _ref=self_ref) -> None:
                service = _ref()
                if service is not None:
                    service._on_cache_eviction(key)

            self._eviction_listener = _on_evict
            self.cache.add_eviction_listener(_on_evict)
        else:
            self._local_pool = EnginePool(max_machines=max_machines)

    # -- lifecycle -------------------------------------------------------------

    def _spawn_worker(self, worker_id: int, fresh: bool) -> None:
        task_queue = self._context.Queue()
        receive_conn, send_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, send_conn,
                  self.max_machines),
            daemon=True,
            name=f"kcm-query-worker-{worker_id}")
        if fresh:
            self._task_queues.append(task_queue)
            self._result_conns.append(receive_conn)
            self._processes.append(process)
            self._shipped.append(set())
        else:
            # Respawn after a kill: fresh queue and pipe (the old ones
            # may hold undelivered messages) and a clean shipped-images
            # record.
            self._task_queues[worker_id] = task_queue
            try:
                self._result_conns[worker_id].close()
            except Exception:
                pass
            self._result_conns[worker_id] = receive_conn
            self._processes[worker_id] = process
            self._shipped[worker_id] = set()
            self._worker_last_key.pop(worker_id, None)
        process.start()
        # Close the parent's copy of the send end so the receive end
        # reaches EOF the instant the worker dies.
        send_conn.close()

    def _reclaim(self, worker_id: int) -> None:
        """Terminate and reap worker ``worker_id``'s current process."""
        process = self._processes[worker_id]
        if process.is_alive():
            process.terminate()
        process.join(timeout=_CLOSE_GRACE)

    def _respawn(self, worker_id: int) -> None:
        """Replace a worker's process immediately (no backoff)."""
        self._reclaim(worker_id)
        self._counters["respawns"] += 1
        self._spawn_worker(worker_id, fresh=False)

    def _ensure_alive(self, worker_id: int) -> bool:
        """Make ``worker_id`` dispatchable, honouring the supervisor's
        restart budget; ``False`` means the slot is retired for good.

        Used at dispatch time, where an idle worker may have died since
        it was last used (e.g. a chaos exit racing its final result);
        the supervised backoff is a between-attempts courtesy inside
        the collection loop, so a dispatch-time respawn is immediate —
        but still charged against the budget.
        """
        if self._supervisor is not None and self._supervisor.retired(
                worker_id):
            return False
        if self._processes[worker_id].is_alive():
            return True
        if self._supervisor is not None:
            if self._supervisor.on_death(worker_id) is None:
                self._retire_worker(worker_id)
                return False
        self._respawn(worker_id)
        return True

    def _retire_worker(self, worker_id: int) -> None:
        """The worker's restart budget is exhausted: reap the corpse
        and take the slot out of rotation permanently."""
        self._reclaim(worker_id)
        self._counters["workers_retired"] += 1

    def _recycle_worker(self, worker_id: int, state: _BatchState) -> None:
        """A worker serving a query is gone (crashed, or killed for an
        overrun): respawn it — immediately without a supervisor, after
        a deterministic backoff under one — or retire it when its
        restart budget is spent."""
        if self._supervisor is None:
            self._respawn(worker_id)
            state.idle.append(worker_id)
            return
        delay = self._supervisor.on_death(worker_id)
        if delay is None:
            self._retire_worker(worker_id)
            return
        self._reclaim(worker_id)
        heapq.heappush(state.respawn_ready,
                       (time.monotonic() + delay, worker_id))

    def _flush_respawns(self, state: _BatchState) -> None:
        """Spawn every backoff-pending worker at batch end (the backoff
        is a within-batch pacing device; the next batch deserves its
        full pool)."""
        while state.respawn_ready:
            _, worker_id = heapq.heappop(state.respawn_ready)
            self._counters["respawns"] += 1
            self._spawn_worker(worker_id, fresh=False)

    def close(self) -> None:
        """Stop every worker and release the pools.

        Idempotent, and safe to call from ``__del__`` during
        interpreter shutdown: queue and process teardown failures
        (half-torn-down multiprocessing state, closed pipes) are
        swallowed — close never raises.
        """
        if getattr(self, "_closed", True):
            # Also covers __del__ after a failed __init__ (validation
            # raised before _closed was assigned).
            return
        self._closed = True
        listener = getattr(self, "_eviction_listener", None)
        if listener is not None:
            try:
                self.cache.remove_eviction_listener(listener)
            except Exception:
                pass
            self._eviction_listener = None
        for task_queue in self._task_queues:
            try:
                task_queue.put_nowait(None)
            except Exception:
                pass
        try:
            # Drain the result pipes *while* joining: a worker with a
            # backlog of undelivered results blocks at exit in
            # ``Connection.send`` until the pipe empties, so a plain
            # join would always burn the grace window and fall through
            # to terminate().  Draining lets it flush, see the
            # sentinel, and exit cleanly.
            deadline = time.monotonic() + _CLOSE_GRACE
            pending = list(self._processes)
            while pending and time.monotonic() < deadline:
                for conn in self._result_conns:
                    try:
                        while (conn is not None and not conn.closed
                               and conn.poll(0)):
                            conn.recv()
                    except Exception:
                        pass
                still_alive = []
                for process in pending:
                    try:
                        process.join(timeout=0.05)
                        if process.is_alive():
                            still_alive.append(process)
                    except Exception:
                        pass
                pending = still_alive
            for process in pending:
                try:
                    process.terminate()
                    process.join(timeout=_CLOSE_GRACE)
                except Exception:
                    pass
        except Exception:
            pass
        for conn in self._result_conns:
            try:
                conn.close()
            except Exception:
                pass
        for entry in list(getattr(self, "_segments", {}).values()):
            segment = entry[0]
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        self._segments = {}
        self._payloads = {}
        self._pending_drops = set()
        self._processes = []
        self._task_queues = []
        self._result_conns = []
        self._shipped = []
        self._worker_last_key = {}
        self._local_pool = None
        self._fallback_pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- health ----------------------------------------------------------------

    def health(self) -> ServiceHealth:
        """Liveness plus lifetime counters (cheap; callable any time,
        including between batches and after :meth:`close`)."""
        now = time.monotonic()
        state = self._batch
        return ServiceHealth(
            workers=self.workers,
            workers_alive=sum(1 for process in self._processes
                              if process.is_alive()),
            queue_depth=(len(state.runnable) + len(state.retry_ready)
                         if state is not None else 0),
            inflight=(sum(len(entries)
                          for entries in state.inflight.values())
                      if state is not None else 0),
            degraded=self._degraded,
            quarantined_keys=(len(self._breaker.open_keys)
                              if self._breaker is not None else 0),
            heartbeat_age_s={worker_id: now - seen
                             for worker_id, seen in self._last_seen.items()},
            **self._counters)

    # -- the batched API -------------------------------------------------------

    def run(self, query: Query, **options) -> ServiceResult:
        """One query through the batched path."""
        return self.run_many([query], **options)[0]

    def run_many(self, queries: Sequence[Query],
                 all_solutions: Optional[bool] = None,
                 max_cycles: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint_every: Optional[int] = None,
                 deadline_s: Optional[float] = None,
                 chaos: Optional[ChaosPolicy] = None,
                 priorities: Optional[Sequence[int]] = None,
                 ) -> List[ServiceResult]:
        """Execute a batch; returns one :class:`ServiceResult` per query
        in input order, failures captured per slot.

        ``timeout_s`` is the per-query host wall budget; ``deadline_s``
        bounds the whole batch — slots not finished when it passes fail
        with ``DeadlineExceeded``.  Both propagate into the engines as
        cooperative stop checks (``deadline_check_cycles``), so they
        work on worker pools *and* the in-process path; with
        propagation disabled, parent-side kills enforce them on worker
        pools only.  ``retry``, ``checkpoint_every`` and ``chaos``
        override the service-level defaults for this batch.

        ``priorities`` assigns each slot a priority class (smaller is
        more important, default 0).  Admission control sheds by
        (priority, age): when the batch exceeds capacity, the
        lowest-priority youngest slots go first — never FIFO tail
        position — and dispatch order favours important slots, while
        results stay in input order.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if priorities is not None and len(priorities) != len(queries):
            raise ValueError("priorities must match queries 1:1")
        policy = retry if retry is not None else self.retry
        chaos_policy = chaos if chaos is not None else self.chaos
        every = (checkpoint_every if checkpoint_every is not None
                 else self.checkpoint_every)
        opts = {
            "all_solutions": self.all_solutions if all_solutions is None
            else all_solutions,
            "max_cycles": self.max_cycles if max_cycles is None
            else max_cycles,
            "recovery": self.recovery,
            "checkpoint_every": every,
        }
        results, prepared, runnable = self._prepare(queries)
        runnable = self._reject_quarantined(queries, prepared, runnable,
                                            results)
        runnable = self._admit(queries, runnable, results, priorities)
        batch_deadline = (time.monotonic() + deadline_s
                          if deadline_s is not None else None)

        if not self.workers:
            self._run_local(queries, prepared, runnable, opts, results,
                            timeout_s, batch_deadline)
        else:
            self._run_pooled(queries, prepared, runnable, opts, timeout_s,
                             results, policy, chaos_policy, batch_deadline)
        missing = [index for index, result in enumerate(results)
                   if result is None]
        if missing:
            raise RuntimeError(
                f"internal error: batch slots {missing} were never filled")
        return results  # type: ignore[return-value]  # every slot filled

    def _prepare(self, queries: Sequence[Query]):
        """Compile every slot in the parent (once per distinct
        program/query pair, so a batch of N identical queries costs one
        compile no matter how many workers serve it); unknown programs
        and compile failures finalise immediately."""
        results: List[Optional[ServiceResult]] = [None] * len(queries)
        prepared: List[Optional[Tuple[str, LinkedImage]]] = []
        for index, query in enumerate(queries):
            name, text = self._normalize(query)
            try:
                source = self.programs[name]
            except KeyError:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError("UnknownProgram",
                                     f"no program registered as {name!r}"))
                prepared.append(None)
                continue
            try:
                image = self.cache.get(source, text, io_mode=self.io_mode)
            except KCMError as err:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=_capture_error(err, None))
                prepared.append(None)
                continue
            prepared.append((image_key(source, text, self.io_mode), image))
        runnable = deque(index for index, item in enumerate(prepared)
                         if item is not None)
        return results, prepared, runnable

    # -- the session-step API --------------------------------------------------

    def run_steps(self, steps: Sequence[Tuple[str, str, Optional[bytes]]],
                  timeout_s: Optional[float] = None,
                  retry: Optional[RetryPolicy] = None,
                  checkpoint_every: Optional[int] = None,
                  chaos: Optional[ChaosPolicy] = None,
                  max_cycles: Optional[int] = None,
                  ) -> List[ServiceResult]:
        """Advance a batch of session steps one solution each.

        Each step is ``(program, query, payload)``: ``payload=None``
        opens the stream (the query runs from entry), a payload from an
        earlier step's ``session_payload`` resumes its search.  Every
        step runs in stop-at-solution mode — the engine pauses at each
        fresh answer instead of running to exhaustion — and its result
        reports ``paused=True`` plus the next resume token, or
        ``paused=False`` when the search finished (the final
        solutions/stats are those of the equivalent uninterrupted
        all-solutions run, bit-identically).

        Rides the full :meth:`run_many` data plane: micro-batching,
        retry-with-resume (a crashed step resumes from its last mid-run
        checkpoint, or from the payload it started from — never from
        scratch), quarantine, chaos, degraded fallback.  This is the
        primitive :class:`repro.serve.session.SessionService` builds
        ``next_solution`` on.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        policy = retry if retry is not None else self.retry
        chaos_policy = chaos if chaos is not None else self.chaos
        every = (checkpoint_every if checkpoint_every is not None
                 else self.checkpoint_every)
        opts = {
            "all_solutions": True,
            "stop_on_solution": True,
            "max_cycles": self.max_cycles if max_cycles is None
            else max_cycles,
            "recovery": self.recovery,
            "checkpoint_every": every,
        }
        queries: List[Query] = [(name, text) for name, text, _ in steps]
        results, prepared, runnable = self._prepare(queries)
        runnable = self._reject_quarantined(queries, prepared, runnable,
                                            results)
        payloads = {index: payload
                    for index, (_, _, payload) in enumerate(steps)
                    if payload is not None}
        if not self.workers:
            self._run_local(queries, prepared, runnable, opts, results,
                            timeout_s, None, step_payloads=payloads)
        else:
            self._run_pooled(queries, prepared, runnable, opts, timeout_s,
                             results, policy, chaos_policy, None,
                             step_payloads=payloads)
        missing = [index for index, result in enumerate(results)
                   if result is None]
        if missing:
            raise RuntimeError(
                f"internal error: step slots {missing} were never filled")
        return results  # type: ignore[return-value]

    def _reject_quarantined(self, queries, prepared, runnable: deque,
                            results) -> deque:
        """Fail every slot whose query key has an open poison breaker
        — before admission, so a quarantined query cannot consume
        capacity another query could have used."""
        if self._breaker is None:
            return runnable
        admitted = deque()
        for index in runnable:
            key = prepared[index][0]
            if not self._breaker.quarantined(key):
                admitted.append(index)
                continue
            name, text = self._describe(queries, index)
            self._counters["quarantines"] += 1
            self._counters["failed"] += 1
            results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(
                    POISONED,
                    f"query key quarantined after "
                    f"{self.quarantine.threshold} worker-killing or "
                    f"budget-exhausting attempts; rejected without "
                    f"dispatch", attempts=0))
        return admitted

    def _admit(self, queries, runnable: deque, results,
               priorities: Optional[Sequence[int]] = None) -> deque:
        """Admission control: bound the queue beyond worker capacity,
        shedding by priority class and age.

        Runnable slots are ordered by ``(priority, input position)`` —
        input position is submission age within the batch, oldest
        first.  With ``max_queue_depth`` set, the first
        ``workers + max_queue_depth`` of that order are admitted and
        the rest shed immediately with a transient ``Shed`` error: the
        cheapest-to-lose work (lowest priority, youngest) goes first,
        and the caller sees backpressure now instead of unbounded
        latency later.  The priority order also becomes dispatch
        order, so important slots reach workers first; results stay in
        input order regardless.
        """
        if priorities is not None:
            runnable = deque(sorted(runnable,
                                    key=lambda i: (priorities[i], i)))
        if not self.workers or self.max_queue_depth is None:
            return runnable
        capacity = self.workers + self.max_queue_depth
        if len(runnable) <= capacity:
            return runnable
        admitted = deque()
        for position, index in enumerate(runnable):
            if position < capacity:
                admitted.append(index)
                continue
            name, text = self._describe(queries, index)
            priority = priorities[index] if priorities is not None else 0
            self._counters["sheds"] += 1
            results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(
                    "Shed",
                    f"admission control: priority-{priority} slot ranked "
                    f"{position} by (priority, age) exceeds capacity "
                    f"{capacity} "
                    f"({self.workers} workers + {self.max_queue_depth} queued)",
                    transient=True, attempts=0))
        return admitted

    def _normalize(self, query: Query) -> Tuple[str, str]:
        if isinstance(query, str):
            return self.default_program, query
        name, text = query
        return name, text

    def _describe(self, queries: Sequence[Query],
                  index: int) -> Tuple[str, str]:
        return self._normalize(queries[index])

    # -- in-process serving ----------------------------------------------------

    def _deadline_opts(self, opts: dict, timeout_s: Optional[float],
                      batch_deadline: Optional[float],
                      ) -> Tuple[dict, Optional[float], bool]:
        """Task options with the effective deadline folded in.

        Returns ``(opts, deadline, propagated)``: the tighter of the
        per-query and batch deadlines, tagged with the error kind it
        should expire as, plus whether the engine itself will watch it
        (deadline propagation armed).
        """
        now = time.monotonic()
        deadline = now + timeout_s if timeout_s is not None else None
        kind = "WallTimeout"
        if batch_deadline is not None and (deadline is None
                                           or batch_deadline <= deadline):
            deadline = batch_deadline
            kind = "DeadlineExceeded"
        check = self.deadline_check_cycles
        if deadline is None or check is None:
            return opts, deadline, False
        merged = dict(opts)
        merged["deadline_monotonic"] = deadline
        merged["deadline_check_cycles"] = check
        merged["deadline_kind"] = kind
        return merged, deadline, True

    def _run_local(self, queries, prepared, runnable, opts, results,
                   timeout_s=None, batch_deadline=None,
                   step_payloads=None) -> None:
        pool = self._local_pool
        assert pool is not None
        for index in runnable:
            key, image = prepared[index]
            name, text = self._describe(queries, index)
            if (batch_deadline is not None
                    and time.monotonic() >= batch_deadline):
                self._counters["failed"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError(
                        "DeadlineExceeded",
                        "batch deadline passed before the query was "
                        "dispatched", transient=True, attempts=0))
                continue
            run_opts, _, _ = self._deadline_opts(opts, timeout_s,
                                                 batch_deadline)
            payload = (step_payloads.get(index)
                       if step_payloads is not None else None)
            resume_from = (pickle.loads(payload)
                           if payload is not None else None)
            machine: Optional[Machine] = None
            try:
                machine, stats, seconds = pool.run(
                    key, image, run_opts, resume_from=resume_from)
                self._counters["completed"] += 1
                paused = (machine.solution_paused
                          and not machine.halted and not machine.exhausted)
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    solutions=machine.solutions, stats=stats,
                    output="".join(machine.output),
                    host_seconds=seconds, paused=paused,
                    session_payload=(pickle.dumps(
                        MachineCheckpoint.capture(machine),
                        protocol=pickle.HIGHEST_PROTOCOL)
                        if paused else None))
            except DeadlineAbandoned as err:
                self._counters["failed"] += 1
                self._counters["deadline_abandons"] += 1
                if err.kind == "WallTimeout":
                    self._counters["timeouts"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError(kind=err.kind, message=str(err),
                                     cycles=err.cycles, transient=True))
            except MachineError as err:
                self._counters["failed"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    stats=getattr(err, "stats", None),
                    error=_capture_error(err, machine))

    # -- pooled serving --------------------------------------------------------

    def _ship_image(self, worker_id: int, key: str,
                    image: LinkedImage) -> None:
        """Make ``key`` available to ``worker_id`` (idempotent).

        Preferred transport is a parent-owned shared-memory segment:
        the image is pickled once per service and every worker —
        including every respawn — registers it with a constant-size
        ``("image_shm", ...)`` message instead of re-receiving the
        payload over its pipe.  When shared memory is unavailable (or
        segment creation fails) the service falls back permanently to
        per-worker queue shipping with a parent-side pickle cache.
        """
        if key in self._shipped[worker_id]:
            return
        if self._use_shm:
            entry = self._segment_for(key, image)
            if entry is not None:
                segment, nbytes = entry
                self._task_queues[worker_id].put(
                    ("image_shm", key, segment.name, nbytes))
                self._shipped[worker_id].add(key)
                return
        payload = self._payloads.get(key)
        if payload is None:
            payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
            self._payloads[key] = payload
        self._task_queues[worker_id].put(("image", key, payload))
        self._shipped[worker_id].add(key)

    def _segment_for(self, key: str, image: LinkedImage):
        """The ``(SharedMemory, nbytes)`` entry backing ``key``,
        created on first use (and re-created after a cache-eviction
        drop when the key comes back).  Returns ``None`` — and flips
        the service to queue shipping for good — if the platform
        refuses segment creation."""
        entry = self._segments.get(key)
        if entry is not None:
            return entry
        payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            from multiprocessing import shared_memory
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, len(payload)))
            segment.buf[:len(payload)] = payload
        except Exception:
            self._use_shm = False
            return None
        entry = (segment, len(payload))
        self._segments[key] = entry
        return entry

    def _on_cache_eviction(self, key: str) -> None:
        """The :class:`ImageCache` dropped ``key``: drop everything the
        service derived from it — the parent-side pickle, the shared
        segment, and the workers' registered copies — so no per-key
        state outlives the cache entry.

        Deferred while a batch is collecting: a chunk already queued
        against the segment must still be able to attach, so the drop
        is parked and processed when the batch ends (or at close).
        """
        if getattr(self, "_closed", True) or not self.workers:
            return
        with self._ship_lock:
            if self._batch is not None:
                self._pending_drops.add(key)
                return
        self._drop_key_now(key)

    def _drop_key_now(self, key: str) -> None:
        self._payloads.pop(key, None)
        entry = self._segments.pop(key, None)
        if entry is not None:
            segment = entry[0]
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        for worker_id, shipped in enumerate(self._shipped):
            if key not in shipped:
                continue
            shipped.discard(key)
            try:
                if self._processes[worker_id].is_alive():
                    self._task_queues[worker_id].put_nowait(("drop", key))
            except Exception:
                pass

    def _flush_pending_drops(self) -> None:
        with self._ship_lock:
            drops = list(self._pending_drops)
            self._pending_drops.clear()
        for key in drops:
            self._drop_key_now(key)

    def _run_pooled(self, queries, prepared, runnable, opts, timeout_s,
                    results, policy, chaos, batch_deadline,
                    step_payloads=None) -> None:
        supervisor = self._supervisor
        state = _BatchState(
            queries=queries, prepared=prepared, opts=opts,
            timeout_s=timeout_s, results=results, policy=policy,
            chaos=chaos, batch_deadline=batch_deadline,
            runnable=runnable,
            idle=deque(worker_id for worker_id in range(self.workers)
                       if supervisor is None
                       or not supervisor.retired(worker_id)))
        if step_payloads:
            state.resume_payload.update(step_payloads)
            state.base_payload.update(step_payloads)
        self._batch = state
        try:
            while state.runnable or state.retry_ready or state.inflight:
                now = time.monotonic()
                if batch_deadline is not None and now >= batch_deadline:
                    self._expire_batch(state)
                    break
                while (state.respawn_ready
                       and state.respawn_ready[0][0] <= now):
                    _, worker_id = heapq.heappop(state.respawn_ready)
                    self._counters["respawns"] += 1
                    self._spawn_worker(worker_id, fresh=False)
                    state.idle.append(worker_id)
                while state.retry_ready and state.retry_ready[0][0] <= now:
                    _, index = heapq.heappop(state.retry_ready)
                    state.runnable.append(index)
                while state.runnable and state.idle:
                    chunk = self._next_chunk(state)
                    key = state.prepared[chunk[0]][0]
                    for_chunk = None
                    while state.idle:
                        worker_id = self._claim_worker(state, key)
                        if self._ensure_alive(worker_id):
                            for_chunk = worker_id
                            break       # retired at claim; try the next
                    if for_chunk is None:
                        state.runnable.extendleft(reversed(chunk))
                        break
                    self._dispatch_chunk(chunk, for_chunk, state)
                if (not state.inflight and not state.idle
                        and not state.respawn_ready
                        and (state.runnable or state.retry_ready)):
                    # Every worker slot is retired and nothing is in
                    # flight: the pool has collapsed.  Serve the rest
                    # of the batch through the local fallback path.
                    self._serve_degraded(state)
                    break
                messages = self._collect_messages(
                    self._wait_interval(state))
                if not messages:
                    self._reap(state)
                    continue
                for message in messages:
                    self._deliver(message, state)
        finally:
            self._flush_respawns(state)
            with self._ship_lock:
                self._batch = None
            self._flush_pending_drops()

    def _wait_interval(self, state: _BatchState) -> float:
        """How long the collector may block before something (a wall
        deadline, a retry or respawn becoming ready, the batch
        deadline) needs attention."""
        wait = _POLL_SECONDS
        now = time.monotonic()
        for entries in state.inflight.values():
            for _, deadline, propagated in entries.values():
                if deadline is not None:
                    if propagated:
                        deadline += _DEADLINE_GRACE
                    wait = min(wait, max(0.0, deadline - now) + 0.01)
        if state.retry_ready:
            wait = min(wait, max(0.0, state.retry_ready[0][0] - now) + 0.01)
        if state.respawn_ready:
            wait = min(wait,
                       max(0.0, state.respawn_ready[0][0] - now) + 0.01)
        if state.batch_deadline is not None:
            wait = min(wait,
                       max(0.0, state.batch_deadline - now) + 0.01)
        return wait

    def _claim_worker(self, state: _BatchState, key: str) -> int:
        """Pick an idle worker for a chunk keyed ``key``.

        Prefers the most recently idled worker whose last chunk used
        the same image (its :class:`EnginePool` already holds warm
        machines for the key), then the most recently idled worker
        outright.  Hot-worker (LIFO) reuse keeps a lightly loaded
        pool's working set on as few processes as possible — the spare
        workers stay parked instead of rotating through the CPU caches
        — while a saturated pool still engages every worker, because
        the idle stack drains whenever chunks outnumber idlers.
        """
        idle = state.idle
        for position in range(len(idle) - 1, -1, -1):
            if self._worker_last_key.get(idle[position]) == key:
                worker_id = idle[position]
                del idle[position]
                return worker_id
        return idle.pop()

    def _next_chunk(self, state: _BatchState) -> List[int]:
        """Pop the head of the runnable queue plus up to
        ``batch_max - 1`` more slots sharing its image key.

        Only same-key slots coalesce — a chunk is one image, one
        quarantine key, one shipped payload — and the scan is bounded
        by ``_COALESCE_WINDOW`` so dispatch stays O(window) on huge
        batches.  Skipped (different-key) slots return to the front of
        the queue in their original order, so they dispatch to the
        next idle worker; a skipped slot is delayed by at most one
        chunk, which priority ordering tolerates.
        """
        head = state.runnable.popleft()
        chunk = [head]
        if self.batch_max <= 1 or not state.runnable:
            return chunk
        key = state.prepared[head][0]
        skipped: List[int] = []
        scanned = 0
        while (state.runnable and len(chunk) < self.batch_max
               and scanned < _COALESCE_WINDOW):
            index = state.runnable.popleft()
            scanned += 1
            if state.prepared[index][0] == key:
                chunk.append(index)
            else:
                skipped.append(index)
        state.runnable.extendleft(reversed(skipped))
        return chunk

    def _dispatch_chunk(self, indices: List[int], worker_id: int,
                        state: _BatchState) -> None:
        """Hand a micro-batch of same-image slots to ``worker_id`` as
        one ``("tasks", ...)`` message.

        The chunk shares one host deadline, computed here: a per-query
        wall budget starts at dispatch, and a task that expires while
        queued behind its chunk-mates is abandoned by the worker's
        pre-run check without spending a cycle.
        """
        key, image = state.prepared[indices[0]]
        self._ship_image(worker_id, key, image)
        base_opts, deadline, propagated = self._deadline_opts(
            state.opts, state.timeout_s, state.batch_deadline)
        tasks = []
        entries: Dict[int, Tuple[int, Optional[float], bool]] = {}
        for index in indices:
            attempt = state.attempts.get(index, 0) + 1
            state.attempts[index] = attempt
            opts = base_opts
            if state.chaos is not None:
                opts = state.chaos.plan(index, attempt).apply(opts)
            tasks.append((index, attempt, opts,
                          state.resume_payload.pop(index, None)))
            entries[index] = (attempt, deadline, propagated)
        self._task_queues[worker_id].put(("tasks", key, tasks))
        self._worker_last_key[worker_id] = key
        state.inflight[worker_id] = entries

    def _dispatch(self, index: int, worker_id: int,
                  state: _BatchState) -> None:
        """Hand slot ``index`` alone to ``worker_id`` (a singleton
        chunk; the collection loop goes through :meth:`_next_chunk`)."""
        self._dispatch_chunk([index], worker_id, state)

    def _deliver(self, message, state: _BatchState) -> None:
        """Apply one worker message to the batch state."""
        kind, worker_id = message[0], message[1]
        self._last_seen[worker_id] = time.monotonic()
        if kind == "hb":
            return
        entries = state.inflight.get(worker_id)
        if kind == "ckpt":
            _, _, index, attempt, payload = message
            current = entries.get(index) if entries is not None else None
            if current is None or current[0] != attempt:
                return  # stale: a killed or superseded attempt
            state.checkpoints[index] = payload
            self._counters["checkpoints_received"] += 1
            return
        # kind == "done": a streamed batch of per-task outcomes.
        outcomes = message[2]
        for outcome in outcomes:
            index, attempt = outcome[0], outcome[1]
            current = entries.get(index) if entries is not None else None
            if current is None or current[0] != attempt:
                continue    # stale outcome from a superseded incarnation
            del entries[index]
            self._finish_outcome(outcome, worker_id, state)
        if entries is not None and not entries:
            del state.inflight[worker_id]
            state.idle.append(worker_id)

    def _finish_outcome(self, outcome, worker_id: int,
                        state: _BatchState) -> None:
        """Finalise one task outcome out of a ``("done", ...)`` batch."""
        index, attempt, status = outcome[0], outcome[1], outcome[2]
        state.checkpoints.pop(index, None)
        name, text = self._describe(state.queries, index)
        if status in ("ok", "paused"):
            solutions, stats, output, seconds = outcome[3:7]
            payload = outcome[7] if status == "paused" else None
            self._counters["completed"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                solutions=solutions, stats=stats, output=output,
                worker=worker_id, host_seconds=seconds,
                paused=(status == "paused"), session_payload=payload,
                attempts=attempt)
            return
        _, _, _, error, partial_stats = outcome
        # Worker-reported machine/compile failures are deterministic
        # and permanent; a worker-reported deadline abandonment
        # (WallTimeout/DeadlineExceeded) is a transient host event —
        # same disposition as a parent-side expiry, minus the kill and
        # respawn.  ImageUnavailable means the worker's segment attach
        # lost a race with a cache eviction: forget the ship record so
        # the retry re-ships a fresh copy.
        error.attempts = attempt
        if error.kind in ("WallTimeout", "DeadlineExceeded"):
            self._counters["deadline_abandons"] += 1
            if error.kind == "WallTimeout":
                self._counters["timeouts"] += 1
        elif error.kind == "ImageUnavailable":
            if 0 <= worker_id < len(self._shipped):
                self._shipped[worker_id].discard(state.prepared[index][0])
        self._dispose_failure(index, attempt, error, state,
                              worker_id=worker_id,
                              partial_stats=partial_stats)

    def _collect_messages(self, timeout: float) -> List[tuple]:
        """Block up to ``timeout`` for worker messages; return every
        message readable without blocking further.

        A connection at EOF means its worker died mid-write or exited:
        the parent closes its end (so the dead pipe stops reporting
        ready) and joins the process briefly so the reaper's liveness
        check sees the death immediately instead of next poll.
        """
        by_conn = {}
        for worker_id, conn in enumerate(self._result_conns):
            if conn is not None and not conn.closed:
                by_conn[conn] = worker_id
        if not by_conn:
            if timeout > 0:
                time.sleep(min(timeout, 0.05))
            return []
        messages: List[tuple] = []
        for conn in mp_connection.wait(list(by_conn), timeout):
            try:
                messages.append(conn.recv())
                while conn.poll(0):
                    messages.append(conn.recv())
            except (EOFError, OSError):
                try:
                    conn.close()
                except Exception:
                    pass
                try:
                    self._processes[by_conn[conn]].join(timeout=1.0)
                except Exception:
                    pass
        return messages

    def _drain(self, state: _BatchState) -> None:
        """Deliver everything already sitting in the result pipes."""
        for message in self._collect_messages(0):
            self._deliver(message, state)

    def _reap(self, state: _BatchState) -> None:
        """Handle wall-timeout expiries and crashed workers.

        Delivered-but-uncollected results are drained *first*: a result
        that arrived within the same poll interval as its deadline
        expiry wins over the expiry, so a query is never reported
        ``WallTimeout`` when its answer was already in the queue.
        """
        self._drain(state)
        now = time.monotonic()
        for worker_id in list(state.inflight):
            entries = state.inflight.get(worker_id)
            if not entries:
                continue
            # The chunk shares one deadline (computed at dispatch), so
            # the first remaining entry speaks for all of them.  With
            # propagation armed the engine should abandon the query
            # itself; the parent only falls back to the kill after a
            # grace window (a worker wedged outside the interpreter —
            # or one whose result delivery is delayed — still cannot
            # overrun forever).
            _, deadline, propagated = next(iter(entries.values()))
            effective = (deadline + _DEADLINE_GRACE
                         if deadline is not None and propagated
                         else deadline)
            if effective is not None and now >= effective:
                if (state.batch_deadline is not None
                        and now >= state.batch_deadline):
                    self._lose_worker(
                        worker_id, "DeadlineExceeded",
                        "batch deadline passed while the query was "
                        "in flight; worker restarted", state)
                else:
                    self._lose_worker(
                        worker_id, "WallTimeout",
                        "query exceeded its host wall budget; "
                        "worker restarted", state)
            elif not self._processes[worker_id].is_alive():
                self._lose_worker(
                    worker_id, "WorkerCrashed",
                    "worker process died while serving the query; "
                    "worker restarted", state)

    def _lose_worker(self, worker_id: int, kind: str, message: str,
                     state: _BatchState) -> None:
        """A worker (and every task still in flight on it) is gone:
        recycle the worker through the supervisor, then dispose of
        each lost slot — quarantine, retry (resuming from the
        attempt's last checkpoint when one arrived) or final failure.

        Accounting is per event where the event is the worker's (one
        ``crashes`` tick per death, however many chunk-mates it takes
        down) and per task where the condition is the task's (one
        ``timeouts`` tick per expired slot).  Only the first remaining
        task — the one the worker was actually running — strikes the
        quarantine breaker: the tasks queued behind it are collateral,
        and striking them too would triple-charge one poison event
        (see :mod:`repro.serve.overload`).
        """
        entries = state.inflight.pop(worker_id)
        if kind == "WorkerCrashed":
            self._counters["crashes"] += 1
        self._recycle_worker(worker_id, state)
        for position, (index, (attempt, _, _)) in enumerate(
                entries.items()):
            if kind == "WallTimeout":
                self._counters["timeouts"] += 1
            text = (message if position == 0 else
                    f"lost with worker {worker_id} while queued behind "
                    f"its micro-batch ({kind} on the running task)")
            self._dispose_failure(
                index, attempt,
                QueryError(kind, text, transient=is_transient(kind),
                           attempts=attempt),
                state, worker_id=worker_id, strike=(position == 0))

    def _dispose_failure(self, index: int, attempt: int,
                         error: QueryError, state: _BatchState,
                         worker_id: int = -1,
                         partial_stats=None,
                         strike: bool = True) -> None:
        """One attempt failed with a host-side condition: quarantine
        the query if its breaker just opened (or already was open),
        schedule a retry if the policy grants one, or finalise.

        ``strike=False`` records nothing with the breaker (collateral
        chunk-mates of a lost worker) but still honours an already-open
        quarantine — chunk-mates share the head task's key, so if the
        head just poisoned it they are the same poison query.
        """
        key = state.prepared[index][0]
        if self._breaker is not None:
            if strike:
                self._breaker.record(key, error.kind)
            if self._breaker.quarantined(key):
                name, text = self._describe(state.queries, index)
                self._counters["quarantines"] += 1
                self._counters["failed"] += 1
                state.results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    worker=worker_id,
                    error=QueryError(
                        POISONED,
                        f"query key quarantined: "
                        f"{self._breaker.strikes(key)} worker-killing or "
                        f"budget-exhausting attempts (last: {error.kind}: "
                        f"{error.message})", attempts=attempt))
                return
        now = time.monotonic()
        policy = state.policy
        within_deadline = (state.batch_deadline is None
                           or now < state.batch_deadline)
        if (policy is not None and within_deadline
                and policy.retryable(error.kind, attempt)):
            self._counters["retries"] += 1
            # Best resume point first: the live attempt's last mid-run
            # checkpoint, else the payload the step started from (a
            # session step must never restart from the query entry).
            payload = state.checkpoints.get(index)
            if payload is None:
                payload = state.base_payload.get(index)
            if payload is not None:
                state.resume_payload[index] = payload
                self._counters["resumes"] += 1
            heapq.heappush(state.retry_ready,
                           (now + policy.delay_s(index, attempt), index))
            return
        name, text = self._describe(state.queries, index)
        self._counters["failed"] += 1
        state.results[index] = ServiceResult(
            index=index, program=name, query=text, worker=worker_id,
            stats=partial_stats, error=error)

    # -- degraded-mode fallback ------------------------------------------------

    def _serve_degraded(self, state: _BatchState) -> None:
        """The worker pool collapsed (every slot retired): drain the
        remaining work through an in-process engine pool.

        Still correct — the warm-reuse determinism guarantee makes a
        parent-side machine produce bit-identical results — just not
        parallel, not preemptable and not chaos-ridden (chaos models
        worker death; there is no worker left to die).  Slots whose
        last attempt shipped a checkpoint resume from it.
        """
        self._degraded = True
        if self._fallback_pool is None:
            self._fallback_pool = EnginePool(max_machines=self.max_machines)
        pending = list(state.runnable)
        pending.extend(index for _, index in sorted(state.retry_ready))
        state.runnable.clear()
        state.retry_ready.clear()
        for index in pending:
            if state.results[index] is not None:
                continue
            if (state.batch_deadline is not None
                    and time.monotonic() >= state.batch_deadline):
                name, text = self._describe(state.queries, index)
                self._counters["failed"] += 1
                state.results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError(
                        "DeadlineExceeded",
                        "batch deadline passed before the degraded "
                        "fallback reached the query", transient=True,
                        attempts=state.attempts.get(index, 0)))
                continue
            self._run_fallback_slot(index, state)

    def _run_fallback_slot(self, index: int, state: _BatchState) -> None:
        """Execute one slot on the parent's fallback engine pool."""
        key, image = state.prepared[index]
        name, text = self._describe(state.queries, index)
        attempt = state.attempts.get(index, 0) + 1
        state.attempts[index] = attempt
        self._counters["local_fallbacks"] += 1
        payload = state.resume_payload.pop(index, None)
        if payload is None:
            payload = state.base_payload.get(index)
        resume_from = (pickle.loads(payload)
                       if payload is not None else None)
        run_opts, _, _ = self._deadline_opts(
            state.opts, state.timeout_s, state.batch_deadline)
        machine: Optional[Machine] = None
        try:
            machine, stats, seconds = self._fallback_pool.run(
                key, image, run_opts, resume_from=resume_from)
            self._counters["completed"] += 1
            paused = (machine.solution_paused
                      and not machine.halted and not machine.exhausted)
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                solutions=machine.solutions, stats=stats,
                output="".join(machine.output),
                host_seconds=seconds, paused=paused,
                session_payload=(pickle.dumps(
                    MachineCheckpoint.capture(machine),
                    protocol=pickle.HIGHEST_PROTOCOL)
                    if paused else None),
                attempts=attempt)
        except DeadlineAbandoned as err:
            self._counters["failed"] += 1
            self._counters["deadline_abandons"] += 1
            if err.kind == "WallTimeout":
                self._counters["timeouts"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(kind=err.kind, message=str(err),
                                 cycles=err.cycles, transient=True,
                                 attempts=attempt))
        except BaseException as err:    # noqa: BLE001 — batch must finish
            self._counters["failed"] += 1
            error = _capture_error(err, machine)
            error.attempts = attempt
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                stats=getattr(err, "stats", None), error=error)

    def _expire_batch(self, state: _BatchState) -> None:
        """The batch deadline passed: drain what already finished (it
        still wins), give deadline-watching workers a grace window to
        abandon and self-report, then fail everything unfinished."""
        self._drain(state)
        if any(propagated
               for entries in state.inflight.values()
               for *_, propagated in entries.values()):
            grace_end = time.monotonic() + _DEADLINE_GRACE
            while state.inflight:
                remaining = grace_end - time.monotonic()
                if remaining <= 0:
                    break
                for message in self._collect_messages(
                        min(0.05, remaining)):
                    self._deliver(message, state)
        for worker_id in list(state.inflight):
            self._lose_worker(
                worker_id, "DeadlineExceeded",
                "batch deadline passed while the query was in flight; "
                "worker restarted", state)
        pending = list(state.runnable) + [index for _, index
                                          in state.retry_ready]
        state.runnable.clear()
        state.retry_ready.clear()
        for index in pending:
            if state.results[index] is not None:
                continue
            name, text = self._describe(state.queries, index)
            self._counters["failed"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(
                    "DeadlineExceeded",
                    "batch deadline passed before the query was "
                    "dispatched", transient=True,
                    attempts=state.attempts.get(index, 0)))
