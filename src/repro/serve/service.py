"""Multiprocess query service over warm machine pools.

``QueryService`` turns the single-shot :func:`repro.api.run_query` into
a persistent serving loop, the shape BinProlog's first-class logic
engines suggest (PAPERS.md): compile once, keep engines warm, fan
queries out.

Architecture
    The parent owns the compile-once image cache
    (:mod:`repro.serve.cache`) and ``workers`` persistent **spawn**
    processes.  Each worker runs :func:`_worker_main`: a loop over a
    private task queue, executing queries on an :class:`EnginePool` —
    one warm :class:`~repro.core.machine.Machine` per image, returned
    to power-on state between queries by
    :meth:`~repro.core.machine.Machine.reset_for_reuse`, whose
    run-after-reuse ≡ run-on-fresh guarantee is what makes results
    independent of which worker (and which machine incarnation) served
    a query.

Spawn safety
    Workers are started with the ``spawn`` method — nothing is
    inherited by fork, so the protocol must ship everything explicitly.
    Images cross the boundary pickled (builtin handlers travel as
    (name, arity) specs, rebuilt on arrival); machines are built inside
    the worker, so the unpicklable fused memory closures and dispatch
    tables never cross at all.  Each image is shipped at most once per
    worker and re-used from the worker's pool afterwards.

Scheduling and ordering
    ``run_many`` dispatches at most one in-flight query per worker and
    hands each freed worker the next pending query, so a slow query
    delays only its own worker.  Results are collected into the input
    slot order — ``run_many(queries)[i]`` always answers
    ``queries[i]`` — and failures are captured per query as structured
    :class:`QueryError` records; a failed query never kills the pool.

Resilience (docs/RESILIENCE.md)
    Failures are classified transient vs permanent
    (:mod:`repro.serve.retry`); with a :class:`RetryPolicy`,
    ``run_many`` re-dispatches transiently-failed slots after
    deterministic exponential backoff.  With ``checkpoint_every``, a
    worker executes long queries in cycle slices, shipping an
    incremental :class:`~repro.core.traps.MachineCheckpoint` to the
    parent at each boundary; a retry after a crash **resumes** the
    query on a fresh worker from its last checkpoint, bit-identical to
    an uninterrupted run.  ``max_queue_depth`` bounds admission —
    excess slots fail fast with ``QueryError(kind="Shed")`` instead of
    queueing unboundedly — ``deadline_s`` bounds the whole batch, and
    :meth:`QueryService.health` reports a :class:`ServiceHealth`
    counter snapshot.  The deterministic chaos harness
    (:mod:`repro.serve.chaos`) drives all of it under seeded worker
    kills, delivery delays and injected machine faults.

    Every resilience feature is opt-in and strictly zero-cost when
    idle: with no retry policy, no checkpoint cadence and no chaos,
    the dispatch path and the machine inner loops are exactly the
    non-resilient ones (the parallel-service benchmark pins this).

Timeouts
    Two budgets per query: ``max_cycles`` bounds *simulated* time (the
    machine's own watchdog raises ``CycleLimitExceeded``, captured like
    any error), and ``timeout_s`` bounds *host* time.  With deadline
    propagation (the default), the deadline ships to the worker and the
    engine abandons the query cooperatively at the next cycle-grid
    check — the worker survives and reports a ``WallTimeout`` failure;
    the parent's terminate-and-respawn only fires after a grace window,
    as the backstop for a worker wedged outside the interpreter.  A
    result that reaches the parent in the same poll interval as its
    deadline wins over the expiry: the collector drains delivered
    messages before judging deadlines.

Overload hardening (docs/RESILIENCE.md §7, :mod:`repro.serve.overload`)
    Per-query deadlines **propagate to workers**: the engine pool folds
    a cycle-grid stop check into ``run_sliced`` and abandons an expired
    query cooperatively (:class:`~repro.serve.overload.
    DeadlineAbandoned`), so a timeout costs the cycles to the next
    check instead of a worker kill and respawn; the parent's reaper and
    ``_expire_batch`` give in-flight workers a grace window to
    self-report before falling back to the kill.  A
    :class:`~repro.serve.overload.QuarantinePolicy` arms a per-query-key
    circuit breaker: a query whose attempts repeatedly kill workers or
    exhaust budgets is failed with ``QueryError(kind="poisoned")`` —
    immediately, on this and every later submission — instead of being
    retried forever.  A :class:`~repro.serve.overload.SupervisorPolicy`
    bounds worker respawns with exponential backoff; when every worker
    slot has exhausted its budget the pool has collapsed and the
    service turns **degraded**, draining the remaining work through the
    parent's in-process fallback pool (still correct, no longer
    parallel).  Admission control sheds by **priority class and age**
    (``run_many(..., priorities=...)``) rather than FIFO position.

``workers=0`` degrades to in-process serving over the same engine-pool
code path (no processes, no pickling); the parallel-service benchmark
uses it as the warm sequential baseline.  The in-process path cannot
preempt, kill or respawn anything, so retry policies, admission
control and chaos are worker-pool features; ``max_cycles``,
``checkpoint_every`` (cycle-sliced execution) and — via cooperative
deadline propagation — ``timeout_s``/``deadline_s`` work everywhere.
"""

from __future__ import annotations

import heapq
import os
import pickle
import queue as queue_module
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import multiprocessing as mp

from repro.compiler.linker import LinkedImage
from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.core.traps import MachineCheckpoint
from repro.errors import KCMError, MachineError
from repro.serve.cache import ImageCache, default_image_cache, image_key
from repro.serve.chaos import ChaosKilled, ChaosPolicy
from repro.serve.overload import (
    POISONED, DeadlineAbandoned, QuarantineBreaker, QuarantinePolicy,
    SupervisorPolicy, WorkerSupervisor,
)
from repro.serve.retry import RetryPolicy, is_transient

#: default name a bare-string program is registered under.
DEFAULT_PROGRAM = "main"

#: how long the collector waits on the result queue per poll when no
#: wall deadline is pending (also bounds crash detection latency).
_POLL_SECONDS = 1.0

#: seconds a worker gets to exit voluntarily on close() before being
#: terminated.
_CLOSE_GRACE = 5.0

#: exit status a chaos-killed worker dies with (distinguishable from a
#: SIGKILL'd or faulted worker in the process table; the parent treats
#: both identically as WorkerCrashed).
_CHAOS_EXIT = 13

#: default cycle cadence of the in-engine deadline stop check (only
#: armed when the query actually carries a host deadline).
_DEADLINE_CHECK_CYCLES = 25_000

#: grace the parent gives a deadline-carrying worker to abandon the
#: query and self-report before falling back to terminate-and-respawn.
_DEADLINE_GRACE = 1.5


@dataclass
class QueryError:
    """A structured per-query failure (the pool survives it).

    ``transient`` marks host-side failure kinds (worker death, wall
    budget, shedding — see :mod:`repro.serve.retry`) that may succeed
    if re-submitted; deterministic machine failures reproduce exactly
    and are permanent.  ``attempts`` counts how many executions the
    slot consumed before the failure became final (0: never
    dispatched).
    """

    kind: str                       # exception class name or budget kind
    message: str
    pc: Optional[int] = None        # faulting PC for machine errors
    cycles: Optional[int] = None    # simulated cycles at the failure
    transient: bool = False
    attempts: int = 1

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class ServiceHealth:
    """A point-in-time snapshot of service liveness and lifetime
    counters (:meth:`QueryService.health`)."""

    workers: int                    # configured pool size
    workers_alive: int              # processes currently alive
    queue_depth: int                # admitted-but-undispatched slots
    inflight: int                   # queries currently on workers
    degraded: bool                  # worker pool collapsed; serving
                                    # through the local fallback path
    quarantined_keys: int           # query keys with an open breaker
    respawns: int                   # worker processes restarted
    retries: int                    # transient failures re-dispatched
    resumes: int                    # retries resumed from a checkpoint
    sheds: int                      # slots refused by admission control
    timeouts: int                   # WallTimeout expiries
    crashes: int                    # WorkerCrashed detections
    completed: int                  # slots finished ok
    failed: int                     # slots finished with a final error
    checkpoints_received: int       # checkpoint payloads collected
    quarantines: int                # slots failed poisoned by the breaker
    deadline_abandons: int          # queries abandoned cooperatively
                                    # at an in-engine deadline check
    local_fallbacks: int            # slots served by the degraded-mode
                                    # in-process fallback pool
    workers_retired: int            # worker slots past their restart
                                    # budget (never respawned again)
    #: seconds since each worker was last heard from (startup herald or
    #: any result/checkpoint message).
    heartbeat_age_s: Dict[int, float] = field(default_factory=dict)


@dataclass
class ServiceResult:
    """One query's outcome, detached from any machine or image.

    Unlike :class:`repro.api.QueryResult`, a service result never
    references a machine: a batch of 10k results retains solutions and
    statistics, not 10k simulated heaps.
    """

    index: int                      # position in the run_many batch
    program: str
    query: str
    solutions: List[dict] = field(default_factory=list)
    stats: Optional[RunStats] = None
    output: str = ""
    error: Optional[QueryError] = None
    worker: int = -1                # -1: parent (in-process or pre-run)
    host_seconds: float = 0.0       # wall time inside the engine

    @property
    def ok(self) -> bool:
        """Whether the query executed to completion."""
        return self.error is None

    @property
    def succeeded(self) -> bool:
        """Whether it completed with at least one solution."""
        return self.error is None and bool(self.solutions)


class EnginePool:
    """Warm machines keyed by image, reset between queries.

    Shared by the worker processes and the ``workers=0`` in-process
    path, so both execute queries through identical code.  The pool is
    LRU-bounded on machines; evicting a machine is always safe because
    a fresh machine over the same image produces bit-identical results
    (the warm-reuse determinism guarantee).
    """

    def __init__(self, max_machines: int = 64):
        self.max_machines = max_machines
        self._machines: "OrderedDict[str, Machine]" = OrderedDict()
        #: constructor-default cycle budget, restored before every
        #: query so a per-query ``max_cycles`` never leaks to the next.
        self._default_budget: Dict[str, int] = {}
        #: keys whose pooled machine has recovery handlers installed
        #: (reset_for_reuse keeps trap handlers, so once is enough).
        self._recovered: Set[str] = set()

    def machine_for(self, key: str, image: LinkedImage,
                    recovery: bool = False) -> Machine:
        """A power-on-state machine loaded with ``image``."""
        machine = self._machines.get(key)
        if machine is None:
            machine = Machine(symbols=image.symbols)
            image.install(machine)
            machine.image = image
            while len(self._machines) >= self.max_machines:
                evicted_key, _ = self._machines.popitem(last=False)
                self._default_budget.pop(evicted_key, None)
                self._recovered.discard(evicted_key)
            self._machines[key] = machine
            self._default_budget[key] = machine.max_cycles
        else:
            self._machines.move_to_end(key)
            machine.max_cycles = self._default_budget[key]
            machine.reset_for_reuse()
        if recovery and key not in self._recovered:
            from repro.recovery import install_default_recovery
            install_default_recovery(machine)
            self._recovered.add(key)
        return machine

    def run(self, key: str, image: LinkedImage, opts: dict,
            on_checkpoint: Optional[Callable] = None,
            resume_from: Optional[MachineCheckpoint] = None,
            ) -> Tuple[Machine, RunStats, float]:
        """Execute one query; returns (machine, stats, host_seconds).

        With ``resume_from``, the query continues from a
        :class:`MachineCheckpoint` captured by an earlier (possibly
        dead) incarnation instead of starting over; with
        ``opts["checkpoint_every"]`` and an ``on_checkpoint`` callback,
        execution proceeds in cycle slices and each boundary's
        incremental checkpoint is handed to the callback.  Raises
        whatever the run raises — the caller owns failure capture.
        """
        inject = opts.get("inject")
        machine = self.machine_for(
            key, image,
            recovery=bool(opts.get("recovery")) or inject is not None)
        if inject is not None:
            from repro.recovery import FaultInjector
            # Rebuilt from the same spec on every attempt: the schedule
            # is a pure function of its arguments, and restore() below
            # re-applies the checkpointed mid-run progress on resume.
            FaultInjector(**inject).attach(machine)
        if resume_from is not None:
            # The stub gives resume() its exit continuation (the run
            # bootstrap normally writes it); the checkpoint then
            # overwrites registers, store, timing and host state.  The
            # checkpoint's saved cycle budget is the *slice* target it
            # was captured under — restore the real budget after.
            machine._bootstrap_stub(image.entry)
            resume_from.restore(machine)
            machine.max_cycles = (opts["max_cycles"]
                                  if opts.get("max_cycles") is not None
                                  else self._default_budget[key])
        elif opts.get("max_cycles") is not None:
            machine.max_cycles = opts["max_cycles"]
        return self._drive(machine, image, opts, on_checkpoint, resume_from)

    def _drive(self, machine: Machine, image: LinkedImage, opts: dict,
               on_checkpoint: Optional[Callable],
               resume_from: Optional[MachineCheckpoint],
               ) -> Tuple[Machine, RunStats, float]:
        """Run (or resume) the machine, plain or cycle-sliced."""
        collect_all = opts.get("all_solutions", False)
        every = opts.get("checkpoint_every")
        kill_at = opts.get("chaos_kill_cycles")
        deadline = opts.get("deadline_monotonic")
        check = opts.get("deadline_check_cycles")
        # Deadline propagation: only armed when the query carries a
        # host deadline *and* a check cadence — otherwise the dispatch
        # path is byte-identical to the deadline-free one.
        armed_deadline = (deadline if deadline is not None
                          and check is not None else None)
        started = time.perf_counter()
        if every is None and kill_at is None and armed_deadline is None:
            # The idle path: exactly the pre-resilience dispatch.
            if resume_from is None:
                stats = machine.run(image.entry, collect_all=collect_all,
                                    answer_names=image.query_variable_names)
            else:
                stats = machine.resume()
            return machine, stats, time.perf_counter() - started

        # A chaos kill planned at a cycle the resumed run is already
        # past stays disarmed — otherwise a resume could die instantly
        # at its first boundary, forever.
        start_cycles = machine.cycles if resume_from is not None else 0
        armed_kill = (kill_at if kill_at is not None
                      and start_cycles < kill_at else None)

        def next_stop(cycles: int) -> Optional[int]:
            targets = []
            if every is not None:
                # Cycle-aligned grid: a resumed run stops at the same
                # absolute boundaries an uninterrupted one does.
                targets.append(cycles - cycles % every + every)
            if armed_kill is not None:
                targets.append(armed_kill)
            if armed_deadline is not None:
                targets.append(cycles - cycles % check + check)
            return min(targets) if targets else None

        previous = [resume_from]

        def on_stop(m: Machine) -> None:
            if armed_kill is not None and m.cycles >= armed_kill:
                raise ChaosKilled(f"chaos kill at cycle {m.cycles}")
            if (armed_deadline is not None
                    and time.monotonic() >= armed_deadline):
                raise DeadlineAbandoned(
                    opts.get("deadline_kind", "WallTimeout"), m.cycles)
            if every is not None and on_checkpoint is not None:
                ckpt = MachineCheckpoint.capture(m, since=previous[0])
                previous[0] = ckpt
                on_checkpoint(ckpt)

        track = every is not None and on_checkpoint is not None
        store = machine.memory.store
        if track:
            # Arm dirty-page tracking before the run builds its fused
            # write closure, so post-checkpoint captures copy only the
            # chunks the run actually touched since the last one.
            store.track_dirty = True
            store.dirty_chunks.clear()
        try:
            if resume_from is None:
                stats = machine.run_sliced(
                    image.entry, next_stop, on_stop,
                    collect_all=collect_all,
                    answer_names=image.query_variable_names)
            else:
                stats = machine.resume_sliced(next_stop, on_stop)
            return machine, stats, time.perf_counter() - started
        finally:
            if track:
                store.track_dirty = False
                store.dirty_chunks.clear()


def _capture_error(err: BaseException,
                   machine: Optional[Machine]) -> QueryError:
    if machine is not None:
        cycles = machine.cycles
    else:
        # MachineError carries the partial run statistics; compile-time
        # errors carry neither and report no cycle count.
        stats = getattr(err, "stats", None)
        cycles = stats.cycles if stats is not None else None
    kind = type(err).__name__
    return QueryError(
        kind=kind,
        message=str(err),
        pc=getattr(err, "pc", None),
        cycles=cycles,
        transient=is_transient(kind),
    )


def _worker_main(worker_id: int, task_queue, result_queue,
                 max_machines: int) -> None:
    """The worker process loop (must stay a module-level function: the
    spawn start method imports this module and looks it up by name).

    Protocol, parent to worker:
      ``("image", key, payload)`` — register a pickled image,
      ``("run", index, attempt, key, opts)`` — execute one query,
      ``("resume", index, attempt, key, opts, ckpt)`` — continue a
      query from a pickled checkpoint,
      ``None`` — exit.
    Worker to parent (shared result queue; every message carries the
    attempt number so replies from a superseded execution are dropped):
      ``("hb", worker_id, monotonic_ts)`` — startup herald,
      ``("ckpt", worker_id, index, attempt, payload)``
      ``("ok", worker_id, index, attempt, solutions, stats, output,
      seconds)``
      ``("err", worker_id, index, attempt, QueryError, stats_or_None)``

    A chaos-killed worker (:class:`ChaosKilled` from its plan's cycle
    threshold) flushes the result queue — checkpoints already shipped
    must survive; the crash model is death *between* IPC writes, not a
    torn write — then dies via ``os._exit`` so the parent observes a
    dead process mid-query.
    """
    images: Dict[str, LinkedImage] = {}
    pool = EnginePool(max_machines=max_machines)
    result_queue.put(("hb", worker_id, time.monotonic()))
    while True:
        message = task_queue.get()
        if message is None:
            return
        kind = message[0]
        if kind == "image":
            _, key, payload = message
            images[key] = pickle.loads(payload)
            continue
        if kind == "resume":
            _, index, attempt, key, opts, ckpt_payload = message
        else:
            _, index, attempt, key, opts = message
            ckpt_payload = None
        machine: Optional[Machine] = None
        try:
            image = images[key]
            resume_from = (pickle.loads(ckpt_payload)
                           if ckpt_payload is not None else None)
            on_checkpoint = None
            if opts.get("checkpoint_every") is not None:
                def on_checkpoint(ckpt, _index=index, _attempt=attempt):
                    result_queue.put(
                        ("ckpt", worker_id, _index, _attempt,
                         pickle.dumps(ckpt,
                                      protocol=pickle.HIGHEST_PROTOCOL)))
            machine, stats, seconds = pool.run(
                key, image, opts,
                on_checkpoint=on_checkpoint, resume_from=resume_from)
            delay = opts.get("chaos_delay_s")
            if delay:
                time.sleep(delay)
            result_queue.put(("ok", worker_id, index, attempt,
                              machine.solutions, stats,
                              "".join(machine.output), seconds))
        except ChaosKilled:
            result_queue.close()
            result_queue.join_thread()
            os._exit(_CHAOS_EXIT)
        except DeadlineAbandoned as err:
            # Cooperative deadline expiry: the worker survives, the
            # slot reports a typed transient failure, and the parent's
            # reaper never has to kill anything.
            result_queue.put(("err", worker_id, index, attempt,
                              QueryError(kind=err.kind, message=str(err),
                                         cycles=err.cycles,
                                         transient=True), None))
        except MachineError as err:
            result_queue.put(("err", worker_id, index, attempt,
                              _capture_error(err, machine),
                              getattr(err, "stats", None)))
        except BaseException as err:     # noqa: BLE001 — pool must survive
            result_queue.put(("err", worker_id, index, attempt,
                              _capture_error(err, machine), None))


#: a query is a bare string (against the default program) or an
#: explicit (program_name, query_text) pair.
Query = Union[str, Tuple[str, str]]


@dataclass
class _BatchState:
    """Everything one ``run_many`` collection loop tracks."""

    queries: Sequence
    prepared: List
    opts: dict
    timeout_s: Optional[float]
    results: List
    policy: Optional[RetryPolicy]
    chaos: Optional[ChaosPolicy]
    batch_deadline: Optional[float]
    runnable: deque
    idle: deque
    #: worker_id -> (slot index, attempt, host deadline, propagated —
    #: whether the worker itself is watching that deadline)
    inflight: Dict[int, Tuple[int, int, Optional[float], bool]] = field(
        default_factory=dict)
    #: min-heap of (ready time, worker_id) awaiting a supervised
    #: backoff-delayed respawn
    respawn_ready: List[Tuple[float, int]] = field(default_factory=list)
    #: slot index -> executions started so far
    attempts: Dict[int, int] = field(default_factory=dict)
    #: slot index -> latest checkpoint payload from the live attempt
    checkpoints: Dict[int, bytes] = field(default_factory=dict)
    #: slot index -> payload the next dispatch should resume from
    resume_payload: Dict[int, bytes] = field(default_factory=dict)
    #: min-heap of (ready time, slot index) awaiting retry backoff
    retry_ready: List[Tuple[float, int]] = field(default_factory=list)


class QueryService:
    """A warm, optionally multiprocess query server for fixed programs.

    ``program`` is one source text (registered as ``"main"``) or a
    ``{name: source}`` mapping.  ``workers=0`` serves in-process on one
    engine pool; ``workers>=1`` starts that many persistent spawn
    workers.  Use as a context manager, or call :meth:`close`.

    Resilience knobs (all opt-in, see the module docstring):
    ``retry`` (a :class:`~repro.serve.retry.RetryPolicy`),
    ``checkpoint_every`` (cycles between checkpoints of long queries),
    ``max_queue_depth`` (admission bound beyond the worker count), and
    ``chaos`` (a :class:`~repro.serve.chaos.ChaosPolicy`, tests/CI
    only).  Each has a per-batch override on :meth:`run_many`.

    Overload knobs (:mod:`repro.serve.overload`): ``quarantine`` arms
    the poison-query circuit breaker, ``supervisor`` bounds worker
    respawns (exhausting every budget degrades the service to the
    in-process fallback path), and ``deadline_check_cycles`` sets the
    cadence of the in-engine deadline stop check (``None`` disables
    propagation and restores parent-side kills as the only deadline
    enforcement; it only engages for queries that carry a deadline).
    """

    def __init__(self, program: Union[str, Dict[str, str]],
                 workers: int = 0,
                 io_mode: str = "stub",
                 all_solutions: bool = False,
                 max_cycles: Optional[int] = None,
                 recovery: bool = False,
                 cache: Optional[ImageCache] = None,
                 max_machines: int = 64,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint_every: Optional[int] = None,
                 max_queue_depth: Optional[int] = None,
                 chaos: Optional[ChaosPolicy] = None,
                 quarantine: Optional[QuarantinePolicy] = None,
                 supervisor: Optional[SupervisorPolicy] = None,
                 deadline_check_cycles: Optional[int]
                 = _DEADLINE_CHECK_CYCLES):
        if isinstance(program, str):
            self.programs = {DEFAULT_PROGRAM: program}
        else:
            if not program:
                raise ValueError("no programs given")
            self.programs = dict(program)
        self.default_program = next(iter(self.programs))
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if deadline_check_cycles is not None and deadline_check_cycles <= 0:
            raise ValueError("deadline_check_cycles must be positive")
        self.workers = workers
        self.io_mode = io_mode
        self.all_solutions = all_solutions
        self.max_cycles = max_cycles
        self.recovery = recovery
        self.max_machines = max_machines
        self.retry = retry
        self.checkpoint_every = checkpoint_every
        self.max_queue_depth = max_queue_depth
        self.chaos = chaos
        self.quarantine = quarantine
        self.deadline_check_cycles = deadline_check_cycles
        self.cache = cache if cache is not None else default_image_cache()

        self._closed = False
        self._local_pool: Optional[EnginePool] = None
        self._fallback_pool: Optional[EnginePool] = None
        self._degraded = False
        self._breaker = (QuarantineBreaker(quarantine)
                         if quarantine is not None else None)
        self._supervisor = (WorkerSupervisor(supervisor)
                            if supervisor is not None else None)
        self._payloads: Dict[str, bytes] = {}
        self._context = mp.get_context("spawn")
        self._result_queue = None
        self._task_queues: List = []
        self._processes: List = []
        self._shipped: List[set] = []
        self._batch: Optional[_BatchState] = None
        self._last_seen: Dict[int, float] = {}
        self._counters: Dict[str, int] = {
            "respawns": 0, "retries": 0, "resumes": 0, "sheds": 0,
            "timeouts": 0, "crashes": 0, "completed": 0, "failed": 0,
            "checkpoints_received": 0, "quarantines": 0,
            "deadline_abandons": 0, "local_fallbacks": 0,
            "workers_retired": 0,
        }
        if workers:
            self._result_queue = self._context.Queue()
            for worker_id in range(workers):
                self._spawn_worker(worker_id, fresh=True)
        else:
            self._local_pool = EnginePool(max_machines=max_machines)

    # -- lifecycle -------------------------------------------------------------

    def _spawn_worker(self, worker_id: int, fresh: bool) -> None:
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._result_queue,
                  self.max_machines),
            daemon=True,
            name=f"kcm-query-worker-{worker_id}")
        if fresh:
            self._task_queues.append(task_queue)
            self._processes.append(process)
            self._shipped.append(set())
        else:
            # Respawn after a kill: fresh queue (the old one may hold
            # undelivered messages) and a clean shipped-images record.
            self._task_queues[worker_id] = task_queue
            self._processes[worker_id] = process
            self._shipped[worker_id] = set()
        process.start()

    def _reclaim(self, worker_id: int) -> None:
        """Terminate and reap worker ``worker_id``'s current process."""
        process = self._processes[worker_id]
        if process.is_alive():
            process.terminate()
        process.join(timeout=_CLOSE_GRACE)

    def _respawn(self, worker_id: int) -> None:
        """Replace a worker's process immediately (no backoff)."""
        self._reclaim(worker_id)
        self._counters["respawns"] += 1
        self._spawn_worker(worker_id, fresh=False)

    def _ensure_alive(self, worker_id: int) -> bool:
        """Make ``worker_id`` dispatchable, honouring the supervisor's
        restart budget; ``False`` means the slot is retired for good.

        Used at dispatch time, where an idle worker may have died since
        it was last used (e.g. a chaos exit racing its final result);
        the supervised backoff is a between-attempts courtesy inside
        the collection loop, so a dispatch-time respawn is immediate —
        but still charged against the budget.
        """
        if self._supervisor is not None and self._supervisor.retired(
                worker_id):
            return False
        if self._processes[worker_id].is_alive():
            return True
        if self._supervisor is not None:
            if self._supervisor.on_death(worker_id) is None:
                self._retire_worker(worker_id)
                return False
        self._respawn(worker_id)
        return True

    def _retire_worker(self, worker_id: int) -> None:
        """The worker's restart budget is exhausted: reap the corpse
        and take the slot out of rotation permanently."""
        self._reclaim(worker_id)
        self._counters["workers_retired"] += 1

    def _recycle_worker(self, worker_id: int, state: _BatchState) -> None:
        """A worker serving a query is gone (crashed, or killed for an
        overrun): respawn it — immediately without a supervisor, after
        a deterministic backoff under one — or retire it when its
        restart budget is spent."""
        if self._supervisor is None:
            self._respawn(worker_id)
            state.idle.append(worker_id)
            return
        delay = self._supervisor.on_death(worker_id)
        if delay is None:
            self._retire_worker(worker_id)
            return
        self._reclaim(worker_id)
        heapq.heappush(state.respawn_ready,
                       (time.monotonic() + delay, worker_id))

    def _flush_respawns(self, state: _BatchState) -> None:
        """Spawn every backoff-pending worker at batch end (the backoff
        is a within-batch pacing device; the next batch deserves its
        full pool)."""
        while state.respawn_ready:
            _, worker_id = heapq.heappop(state.respawn_ready)
            self._counters["respawns"] += 1
            self._spawn_worker(worker_id, fresh=False)

    def close(self) -> None:
        """Stop every worker and release the pools.

        Idempotent, and safe to call from ``__del__`` during
        interpreter shutdown: queue and process teardown failures
        (half-torn-down multiprocessing state, closed pipes) are
        swallowed — close never raises.
        """
        if getattr(self, "_closed", True):
            # Also covers __del__ after a failed __init__ (validation
            # raised before _closed was assigned).
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put_nowait(None)
            except Exception:
                pass
        try:
            deadline = time.monotonic() + _CLOSE_GRACE
            for process in self._processes:
                try:
                    process.join(
                        timeout=max(0.0, deadline - time.monotonic()))
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=_CLOSE_GRACE)
                except Exception:
                    pass
        except Exception:
            pass
        self._processes = []
        self._task_queues = []
        self._shipped = []
        self._local_pool = None
        self._fallback_pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- health ----------------------------------------------------------------

    def health(self) -> ServiceHealth:
        """Liveness plus lifetime counters (cheap; callable any time,
        including between batches and after :meth:`close`)."""
        now = time.monotonic()
        state = self._batch
        return ServiceHealth(
            workers=self.workers,
            workers_alive=sum(1 for process in self._processes
                              if process.is_alive()),
            queue_depth=(len(state.runnable) + len(state.retry_ready)
                         if state is not None else 0),
            inflight=len(state.inflight) if state is not None else 0,
            degraded=self._degraded,
            quarantined_keys=(len(self._breaker.open_keys)
                              if self._breaker is not None else 0),
            heartbeat_age_s={worker_id: now - seen
                             for worker_id, seen in self._last_seen.items()},
            **self._counters)

    # -- the batched API -------------------------------------------------------

    def run(self, query: Query, **options) -> ServiceResult:
        """One query through the batched path."""
        return self.run_many([query], **options)[0]

    def run_many(self, queries: Sequence[Query],
                 all_solutions: Optional[bool] = None,
                 max_cycles: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint_every: Optional[int] = None,
                 deadline_s: Optional[float] = None,
                 chaos: Optional[ChaosPolicy] = None,
                 priorities: Optional[Sequence[int]] = None,
                 ) -> List[ServiceResult]:
        """Execute a batch; returns one :class:`ServiceResult` per query
        in input order, failures captured per slot.

        ``timeout_s`` is the per-query host wall budget; ``deadline_s``
        bounds the whole batch — slots not finished when it passes fail
        with ``DeadlineExceeded``.  Both propagate into the engines as
        cooperative stop checks (``deadline_check_cycles``), so they
        work on worker pools *and* the in-process path; with
        propagation disabled, parent-side kills enforce them on worker
        pools only.  ``retry``, ``checkpoint_every`` and ``chaos``
        override the service-level defaults for this batch.

        ``priorities`` assigns each slot a priority class (smaller is
        more important, default 0).  Admission control sheds by
        (priority, age): when the batch exceeds capacity, the
        lowest-priority youngest slots go first — never FIFO tail
        position — and dispatch order favours important slots, while
        results stay in input order.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if priorities is not None and len(priorities) != len(queries):
            raise ValueError("priorities must match queries 1:1")
        policy = retry if retry is not None else self.retry
        chaos_policy = chaos if chaos is not None else self.chaos
        every = (checkpoint_every if checkpoint_every is not None
                 else self.checkpoint_every)
        opts = {
            "all_solutions": self.all_solutions if all_solutions is None
            else all_solutions,
            "max_cycles": self.max_cycles if max_cycles is None
            else max_cycles,
            "recovery": self.recovery,
            "checkpoint_every": every,
        }
        results: List[Optional[ServiceResult]] = [None] * len(queries)
        prepared: List[Optional[Tuple[str, LinkedImage]]] = []
        for index, query in enumerate(queries):
            name, text = self._normalize(query)
            try:
                source = self.programs[name]
            except KeyError:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError("UnknownProgram",
                                     f"no program registered as {name!r}"))
                prepared.append(None)
                continue
            try:
                # Compile in the parent, once per distinct pair, so a
                # batch of N identical queries costs one compile no
                # matter how many workers serve it.
                image = self.cache.get(source, text, io_mode=self.io_mode)
            except KCMError as err:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=_capture_error(err, None))
                prepared.append(None)
                continue
            prepared.append((image_key(source, text, self.io_mode), image))
        runnable = deque(index for index, item in enumerate(prepared)
                         if item is not None)
        runnable = self._reject_quarantined(queries, prepared, runnable,
                                            results)
        runnable = self._admit(queries, runnable, results, priorities)
        batch_deadline = (time.monotonic() + deadline_s
                          if deadline_s is not None else None)

        if not self.workers:
            self._run_local(queries, prepared, runnable, opts, results,
                            timeout_s, batch_deadline)
        else:
            self._run_pooled(queries, prepared, runnable, opts, timeout_s,
                             results, policy, chaos_policy, batch_deadline)
        missing = [index for index, result in enumerate(results)
                   if result is None]
        if missing:
            raise RuntimeError(
                f"internal error: batch slots {missing} were never filled")
        return results  # type: ignore[return-value]  # every slot filled

    def _reject_quarantined(self, queries, prepared, runnable: deque,
                            results) -> deque:
        """Fail every slot whose query key has an open poison breaker
        — before admission, so a quarantined query cannot consume
        capacity another query could have used."""
        if self._breaker is None:
            return runnable
        admitted = deque()
        for index in runnable:
            key = prepared[index][0]
            if not self._breaker.quarantined(key):
                admitted.append(index)
                continue
            name, text = self._describe(queries, index)
            self._counters["quarantines"] += 1
            self._counters["failed"] += 1
            results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(
                    POISONED,
                    f"query key quarantined after "
                    f"{self.quarantine.threshold} worker-killing or "
                    f"budget-exhausting attempts; rejected without "
                    f"dispatch", attempts=0))
        return admitted

    def _admit(self, queries, runnable: deque, results,
               priorities: Optional[Sequence[int]] = None) -> deque:
        """Admission control: bound the queue beyond worker capacity,
        shedding by priority class and age.

        Runnable slots are ordered by ``(priority, input position)`` —
        input position is submission age within the batch, oldest
        first.  With ``max_queue_depth`` set, the first
        ``workers + max_queue_depth`` of that order are admitted and
        the rest shed immediately with a transient ``Shed`` error: the
        cheapest-to-lose work (lowest priority, youngest) goes first,
        and the caller sees backpressure now instead of unbounded
        latency later.  The priority order also becomes dispatch
        order, so important slots reach workers first; results stay in
        input order regardless.
        """
        if priorities is not None:
            runnable = deque(sorted(runnable,
                                    key=lambda i: (priorities[i], i)))
        if not self.workers or self.max_queue_depth is None:
            return runnable
        capacity = self.workers + self.max_queue_depth
        if len(runnable) <= capacity:
            return runnable
        admitted = deque()
        for position, index in enumerate(runnable):
            if position < capacity:
                admitted.append(index)
                continue
            name, text = self._describe(queries, index)
            priority = priorities[index] if priorities is not None else 0
            self._counters["sheds"] += 1
            results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(
                    "Shed",
                    f"admission control: priority-{priority} slot ranked "
                    f"{position} by (priority, age) exceeds capacity "
                    f"{capacity} "
                    f"({self.workers} workers + {self.max_queue_depth} queued)",
                    transient=True, attempts=0))
        return admitted

    def _normalize(self, query: Query) -> Tuple[str, str]:
        if isinstance(query, str):
            return self.default_program, query
        name, text = query
        return name, text

    def _describe(self, queries: Sequence[Query],
                  index: int) -> Tuple[str, str]:
        return self._normalize(queries[index])

    # -- in-process serving ----------------------------------------------------

    def _deadline_opts(self, opts: dict, timeout_s: Optional[float],
                      batch_deadline: Optional[float],
                      ) -> Tuple[dict, Optional[float], bool]:
        """Task options with the effective deadline folded in.

        Returns ``(opts, deadline, propagated)``: the tighter of the
        per-query and batch deadlines, tagged with the error kind it
        should expire as, plus whether the engine itself will watch it
        (deadline propagation armed).
        """
        now = time.monotonic()
        deadline = now + timeout_s if timeout_s is not None else None
        kind = "WallTimeout"
        if batch_deadline is not None and (deadline is None
                                           or batch_deadline <= deadline):
            deadline = batch_deadline
            kind = "DeadlineExceeded"
        check = self.deadline_check_cycles
        if deadline is None or check is None:
            return opts, deadline, False
        merged = dict(opts)
        merged["deadline_monotonic"] = deadline
        merged["deadline_check_cycles"] = check
        merged["deadline_kind"] = kind
        return merged, deadline, True

    def _run_local(self, queries, prepared, runnable, opts, results,
                   timeout_s=None, batch_deadline=None) -> None:
        pool = self._local_pool
        assert pool is not None
        for index in runnable:
            key, image = prepared[index]
            name, text = self._describe(queries, index)
            if (batch_deadline is not None
                    and time.monotonic() >= batch_deadline):
                self._counters["failed"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError(
                        "DeadlineExceeded",
                        "batch deadline passed before the query was "
                        "dispatched", transient=True, attempts=0))
                continue
            run_opts, _, _ = self._deadline_opts(opts, timeout_s,
                                                 batch_deadline)
            machine: Optional[Machine] = None
            try:
                machine, stats, seconds = pool.run(key, image, run_opts)
                self._counters["completed"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    solutions=machine.solutions, stats=stats,
                    output="".join(machine.output),
                    host_seconds=seconds)
            except DeadlineAbandoned as err:
                self._counters["failed"] += 1
                self._counters["deadline_abandons"] += 1
                if err.kind == "WallTimeout":
                    self._counters["timeouts"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError(kind=err.kind, message=str(err),
                                     cycles=err.cycles, transient=True))
            except MachineError as err:
                self._counters["failed"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    stats=getattr(err, "stats", None),
                    error=_capture_error(err, machine))

    # -- pooled serving --------------------------------------------------------

    def _ship_image(self, worker_id: int, key: str,
                    image: LinkedImage) -> None:
        if key in self._shipped[worker_id]:
            return
        payload = self._payloads.get(key)
        if payload is None:
            payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
            self._payloads[key] = payload
        self._task_queues[worker_id].put(("image", key, payload))
        self._shipped[worker_id].add(key)

    def _run_pooled(self, queries, prepared, runnable, opts, timeout_s,
                    results, policy, chaos, batch_deadline) -> None:
        supervisor = self._supervisor
        state = _BatchState(
            queries=queries, prepared=prepared, opts=opts,
            timeout_s=timeout_s, results=results, policy=policy,
            chaos=chaos, batch_deadline=batch_deadline,
            runnable=runnable,
            idle=deque(worker_id for worker_id in range(self.workers)
                       if supervisor is None
                       or not supervisor.retired(worker_id)))
        self._batch = state
        try:
            while state.runnable or state.retry_ready or state.inflight:
                now = time.monotonic()
                if batch_deadline is not None and now >= batch_deadline:
                    self._expire_batch(state)
                    break
                while (state.respawn_ready
                       and state.respawn_ready[0][0] <= now):
                    _, worker_id = heapq.heappop(state.respawn_ready)
                    self._counters["respawns"] += 1
                    self._spawn_worker(worker_id, fresh=False)
                    state.idle.append(worker_id)
                while state.retry_ready and state.retry_ready[0][0] <= now:
                    _, index = heapq.heappop(state.retry_ready)
                    state.runnable.append(index)
                while state.runnable and state.idle:
                    worker_id = state.idle.popleft()
                    if not self._ensure_alive(worker_id):
                        continue    # retired at dispatch; try the next
                    self._dispatch(state.runnable.popleft(), worker_id,
                                   state)
                if (not state.inflight and not state.idle
                        and not state.respawn_ready
                        and (state.runnable or state.retry_ready)):
                    # Every worker slot is retired and nothing is in
                    # flight: the pool has collapsed.  Serve the rest
                    # of the batch through the local fallback path.
                    self._serve_degraded(state)
                    break
                try:
                    message = self._result_queue.get(
                        timeout=self._wait_interval(state))
                except queue_module.Empty:
                    self._reap(state)
                    continue
                self._deliver(message, state)
        finally:
            self._flush_respawns(state)
            self._batch = None

    def _wait_interval(self, state: _BatchState) -> float:
        """How long the collector may block before something (a wall
        deadline, a retry or respawn becoming ready, the batch
        deadline) needs attention."""
        wait = _POLL_SECONDS
        now = time.monotonic()
        for _, _, deadline, propagated in state.inflight.values():
            if deadline is not None:
                if propagated:
                    deadline += _DEADLINE_GRACE
                wait = min(wait, max(0.0, deadline - now) + 0.01)
        if state.retry_ready:
            wait = min(wait, max(0.0, state.retry_ready[0][0] - now) + 0.01)
        if state.respawn_ready:
            wait = min(wait,
                       max(0.0, state.respawn_ready[0][0] - now) + 0.01)
        if state.batch_deadline is not None:
            wait = min(wait,
                       max(0.0, state.batch_deadline - now) + 0.01)
        return wait

    def _dispatch(self, index: int, worker_id: int,
                  state: _BatchState) -> None:
        """Hand slot ``index`` (attempt N) to ``worker_id``."""
        key, image = state.prepared[index]
        attempt = state.attempts.get(index, 0) + 1
        state.attempts[index] = attempt
        opts = state.opts
        if state.chaos is not None:
            opts = state.chaos.plan(index, attempt).apply(opts)
        opts, deadline, propagated = self._deadline_opts(
            opts, state.timeout_s, state.batch_deadline)
        self._ship_image(worker_id, key, image)
        payload = state.resume_payload.pop(index, None)
        if payload is not None:
            self._task_queues[worker_id].put(
                ("resume", index, attempt, key, opts, payload))
        else:
            self._task_queues[worker_id].put(
                ("run", index, attempt, key, opts))
        state.inflight[worker_id] = (index, attempt, deadline, propagated)

    def _deliver(self, message, state: _BatchState) -> None:
        """Apply one worker message to the batch state."""
        kind, worker_id = message[0], message[1]
        self._last_seen[worker_id] = time.monotonic()
        if kind == "hb":
            return
        index, attempt = message[2], message[3]
        current = state.inflight.get(worker_id)
        if current is None or current[0] != index or current[1] != attempt:
            return      # stale reply from a killed or superseded attempt
        if kind == "ckpt":
            state.checkpoints[index] = message[4]
            self._counters["checkpoints_received"] += 1
            return
        del state.inflight[worker_id]
        state.idle.append(worker_id)
        state.checkpoints.pop(index, None)
        name, text = self._describe(state.queries, index)
        if kind == "ok":
            _, _, _, _, solutions, stats, output, seconds = message
            self._counters["completed"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                solutions=solutions, stats=stats, output=output,
                worker=worker_id, host_seconds=seconds)
        else:
            _, _, _, _, error, partial_stats = message
            # Worker-reported machine/compile failures are
            # deterministic and permanent; a worker-reported deadline
            # abandonment (WallTimeout/DeadlineExceeded) is a transient
            # host event — same disposition as a parent-side expiry,
            # minus the kill and respawn.
            error.attempts = attempt
            if error.kind in ("WallTimeout", "DeadlineExceeded"):
                self._counters["deadline_abandons"] += 1
                if error.kind == "WallTimeout":
                    self._counters["timeouts"] += 1
            self._dispose_failure(index, attempt, error, state,
                                  worker_id=worker_id,
                                  partial_stats=partial_stats)

    def _drain(self, state: _BatchState) -> None:
        """Deliver everything already sitting in the result queue."""
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue_module.Empty:
                return
            self._deliver(message, state)

    def _reap(self, state: _BatchState) -> None:
        """Handle wall-timeout expiries and crashed workers.

        Delivered-but-uncollected results are drained *first*: a result
        that arrived within the same poll interval as its deadline
        expiry wins over the expiry, so a query is never reported
        ``WallTimeout`` when its answer was already in the queue.
        """
        self._drain(state)
        now = time.monotonic()
        for worker_id in list(state.inflight):
            index, attempt, deadline, propagated = state.inflight[worker_id]
            # With propagation armed the engine should abandon the
            # query itself; the parent only falls back to the kill
            # after a grace window (a worker wedged outside the
            # interpreter — or one whose result delivery is delayed —
            # still cannot overrun forever).
            effective = (deadline + _DEADLINE_GRACE
                         if deadline is not None and propagated
                         else deadline)
            if effective is not None and now >= effective:
                if (state.batch_deadline is not None
                        and now >= state.batch_deadline):
                    self._lose_worker(
                        worker_id, "DeadlineExceeded",
                        "batch deadline passed while the query was "
                        "in flight; worker restarted", state)
                else:
                    self._lose_worker(
                        worker_id, "WallTimeout",
                        "query exceeded its host wall budget; "
                        "worker restarted", state)
            elif not self._processes[worker_id].is_alive():
                self._lose_worker(
                    worker_id, "WorkerCrashed",
                    "worker process died while serving the query; "
                    "worker restarted", state)

    def _lose_worker(self, worker_id: int, kind: str, message: str,
                     state: _BatchState) -> None:
        """A worker (and the attempt on it) is gone: recycle the worker
        through the supervisor, then dispose of the slot — quarantine,
        retry (resuming from the attempt's last checkpoint when one
        arrived) or final failure."""
        index, attempt, _, _ = state.inflight.pop(worker_id)
        if kind == "WallTimeout":
            self._counters["timeouts"] += 1
        elif kind == "WorkerCrashed":
            self._counters["crashes"] += 1
        self._recycle_worker(worker_id, state)
        self._dispose_failure(
            index, attempt,
            QueryError(kind, message, transient=is_transient(kind),
                       attempts=attempt),
            state, worker_id=worker_id)

    def _dispose_failure(self, index: int, attempt: int,
                         error: QueryError, state: _BatchState,
                         worker_id: int = -1,
                         partial_stats=None) -> None:
        """One attempt failed with a host-side condition: quarantine
        the query if its breaker just opened (or already was open),
        schedule a retry if the policy grants one, or finalise."""
        key = state.prepared[index][0]
        if self._breaker is not None:
            self._breaker.record(key, error.kind)
            if self._breaker.quarantined(key):
                name, text = self._describe(state.queries, index)
                self._counters["quarantines"] += 1
                self._counters["failed"] += 1
                state.results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    worker=worker_id,
                    error=QueryError(
                        POISONED,
                        f"query key quarantined: "
                        f"{self._breaker.strikes(key)} worker-killing or "
                        f"budget-exhausting attempts (last: {error.kind}: "
                        f"{error.message})", attempts=attempt))
                return
        now = time.monotonic()
        policy = state.policy
        within_deadline = (state.batch_deadline is None
                           or now < state.batch_deadline)
        if (policy is not None and within_deadline
                and policy.retryable(error.kind, attempt)):
            self._counters["retries"] += 1
            payload = state.checkpoints.get(index)
            if payload is not None:
                state.resume_payload[index] = payload
                self._counters["resumes"] += 1
            heapq.heappush(state.retry_ready,
                           (now + policy.delay_s(index, attempt), index))
            return
        name, text = self._describe(state.queries, index)
        self._counters["failed"] += 1
        state.results[index] = ServiceResult(
            index=index, program=name, query=text, worker=worker_id,
            stats=partial_stats, error=error)

    # -- degraded-mode fallback ------------------------------------------------

    def _serve_degraded(self, state: _BatchState) -> None:
        """The worker pool collapsed (every slot retired): drain the
        remaining work through an in-process engine pool.

        Still correct — the warm-reuse determinism guarantee makes a
        parent-side machine produce bit-identical results — just not
        parallel, not preemptable and not chaos-ridden (chaos models
        worker death; there is no worker left to die).  Slots whose
        last attempt shipped a checkpoint resume from it.
        """
        self._degraded = True
        if self._fallback_pool is None:
            self._fallback_pool = EnginePool(max_machines=self.max_machines)
        pending = list(state.runnable)
        pending.extend(index for _, index in sorted(state.retry_ready))
        state.runnable.clear()
        state.retry_ready.clear()
        for index in pending:
            if state.results[index] is not None:
                continue
            if (state.batch_deadline is not None
                    and time.monotonic() >= state.batch_deadline):
                name, text = self._describe(state.queries, index)
                self._counters["failed"] += 1
                state.results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError(
                        "DeadlineExceeded",
                        "batch deadline passed before the degraded "
                        "fallback reached the query", transient=True,
                        attempts=state.attempts.get(index, 0)))
                continue
            self._run_fallback_slot(index, state)

    def _run_fallback_slot(self, index: int, state: _BatchState) -> None:
        """Execute one slot on the parent's fallback engine pool."""
        key, image = state.prepared[index]
        name, text = self._describe(state.queries, index)
        attempt = state.attempts.get(index, 0) + 1
        state.attempts[index] = attempt
        self._counters["local_fallbacks"] += 1
        payload = state.resume_payload.pop(index, None)
        resume_from = (pickle.loads(payload)
                       if payload is not None else None)
        run_opts, _, _ = self._deadline_opts(
            state.opts, state.timeout_s, state.batch_deadline)
        machine: Optional[Machine] = None
        try:
            machine, stats, seconds = self._fallback_pool.run(
                key, image, run_opts, resume_from=resume_from)
            self._counters["completed"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                solutions=machine.solutions, stats=stats,
                output="".join(machine.output),
                host_seconds=seconds)
        except DeadlineAbandoned as err:
            self._counters["failed"] += 1
            self._counters["deadline_abandons"] += 1
            if err.kind == "WallTimeout":
                self._counters["timeouts"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(kind=err.kind, message=str(err),
                                 cycles=err.cycles, transient=True,
                                 attempts=attempt))
        except BaseException as err:    # noqa: BLE001 — batch must finish
            self._counters["failed"] += 1
            error = _capture_error(err, machine)
            error.attempts = attempt
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                stats=getattr(err, "stats", None), error=error)

    def _expire_batch(self, state: _BatchState) -> None:
        """The batch deadline passed: drain what already finished (it
        still wins), give deadline-watching workers a grace window to
        abandon and self-report, then fail everything unfinished."""
        self._drain(state)
        if any(propagated for *_, propagated in state.inflight.values()):
            grace_end = time.monotonic() + _DEADLINE_GRACE
            while state.inflight:
                remaining = grace_end - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    message = self._result_queue.get(
                        timeout=min(0.05, remaining))
                except queue_module.Empty:
                    continue
                self._deliver(message, state)
        for worker_id in list(state.inflight):
            self._lose_worker(
                worker_id, "DeadlineExceeded",
                "batch deadline passed while the query was in flight; "
                "worker restarted", state)
        pending = list(state.runnable) + [index for _, index
                                          in state.retry_ready]
        state.runnable.clear()
        state.retry_ready.clear()
        for index in pending:
            if state.results[index] is not None:
                continue
            name, text = self._describe(state.queries, index)
            self._counters["failed"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(
                    "DeadlineExceeded",
                    "batch deadline passed before the query was "
                    "dispatched", transient=True,
                    attempts=state.attempts.get(index, 0)))
