"""Multiprocess query service over warm machine pools.

``QueryService`` turns the single-shot :func:`repro.api.run_query` into
a persistent serving loop, the shape BinProlog's first-class logic
engines suggest (PAPERS.md): compile once, keep engines warm, fan
queries out.

Architecture
    The parent owns the compile-once image cache
    (:mod:`repro.serve.cache`) and ``workers`` persistent **spawn**
    processes.  Each worker runs :func:`_worker_main`: a loop over a
    private task queue, executing queries on an :class:`EnginePool` —
    one warm :class:`~repro.core.machine.Machine` per image, returned
    to power-on state between queries by
    :meth:`~repro.core.machine.Machine.reset_for_reuse`, whose
    run-after-reuse ≡ run-on-fresh guarantee is what makes results
    independent of which worker (and which machine incarnation) served
    a query.

Spawn safety
    Workers are started with the ``spawn`` method — nothing is
    inherited by fork, so the protocol must ship everything explicitly.
    Images cross the boundary pickled (builtin handlers travel as
    (name, arity) specs, rebuilt on arrival); machines are built inside
    the worker, so the unpicklable fused memory closures and dispatch
    tables never cross at all.  Each image is shipped at most once per
    worker and re-used from the worker's pool afterwards.

Scheduling and ordering
    ``run_many`` dispatches at most one in-flight query per worker and
    hands each freed worker the next pending query, so a slow query
    delays only its own worker.  Results are collected into the input
    slot order — ``run_many(queries)[i]`` always answers
    ``queries[i]`` — and failures are captured per query as structured
    :class:`QueryError` records; a failed query never kills the pool.

Timeouts
    Two budgets per query: ``max_cycles`` bounds *simulated* time (the
    machine's own watchdog raises ``CycleLimitExceeded``, captured like
    any error), and ``timeout_s`` bounds *host* time — on expiry the
    worker is terminated and respawned, the query reports a
    ``WallTimeout`` failure, and the batch continues.

``workers=0`` degrades to in-process serving over the same engine-pool
code path (no processes, no pickling); the parallel-service benchmark
uses it as the warm sequential baseline.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import multiprocessing as mp

from repro.compiler.linker import LinkedImage
from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.errors import KCMError, MachineError
from repro.serve.cache import ImageCache, default_image_cache, image_key

#: default name a bare-string program is registered under.
DEFAULT_PROGRAM = "main"

#: how long the collector waits on the result queue per poll when no
#: wall deadline is pending (also bounds crash detection latency).
_POLL_SECONDS = 1.0

#: seconds a worker gets to exit voluntarily on close() before being
#: terminated.
_CLOSE_GRACE = 5.0


@dataclass
class QueryError:
    """A structured per-query failure (the pool survives it)."""

    kind: str                       # exception class name or budget kind
    message: str
    pc: Optional[int] = None        # faulting PC for machine errors
    cycles: Optional[int] = None    # simulated cycles at the failure

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class ServiceResult:
    """One query's outcome, detached from any machine or image.

    Unlike :class:`repro.api.QueryResult`, a service result never
    references a machine: a batch of 10k results retains solutions and
    statistics, not 10k simulated heaps.
    """

    index: int                      # position in the run_many batch
    program: str
    query: str
    solutions: List[dict] = field(default_factory=list)
    stats: Optional[RunStats] = None
    output: str = ""
    error: Optional[QueryError] = None
    worker: int = -1                # -1: parent (in-process or pre-run)
    host_seconds: float = 0.0       # wall time inside the engine

    @property
    def ok(self) -> bool:
        """Whether the query executed to completion."""
        return self.error is None

    @property
    def succeeded(self) -> bool:
        """Whether it completed with at least one solution."""
        return self.error is None and bool(self.solutions)


class EnginePool:
    """Warm machines keyed by image, reset between queries.

    Shared by the worker processes and the ``workers=0`` in-process
    path, so both execute queries through identical code.  The pool is
    LRU-bounded on machines; evicting a machine is always safe because
    a fresh machine over the same image produces bit-identical results
    (the warm-reuse determinism guarantee).
    """

    def __init__(self, max_machines: int = 64):
        self.max_machines = max_machines
        self._machines: "OrderedDict[str, Machine]" = OrderedDict()
        #: constructor-default cycle budget, restored before every
        #: query so a per-query ``max_cycles`` never leaks to the next.
        self._default_budget: Dict[str, int] = {}

    def machine_for(self, key: str, image: LinkedImage,
                    recovery: bool = False) -> Machine:
        """A power-on-state machine loaded with ``image``."""
        machine = self._machines.get(key)
        if machine is None:
            machine = Machine(symbols=image.symbols)
            image.install(machine)
            machine.image = image
            if recovery:
                from repro.recovery import install_default_recovery
                install_default_recovery(machine)
            while len(self._machines) >= self.max_machines:
                evicted_key, _ = self._machines.popitem(last=False)
                self._default_budget.pop(evicted_key, None)
            self._machines[key] = machine
            self._default_budget[key] = machine.max_cycles
        else:
            self._machines.move_to_end(key)
            machine.max_cycles = self._default_budget[key]
            machine.reset_for_reuse()
        return machine

    def run(self, key: str, image: LinkedImage,
            opts: dict) -> Tuple[Machine, RunStats, float]:
        """Execute one query; returns (machine, stats, host_seconds).

        Raises whatever the run raises — the caller owns failure
        capture.
        """
        machine = self.machine_for(key, image,
                                   recovery=opts.get("recovery", False))
        if opts.get("max_cycles") is not None:
            machine.max_cycles = opts["max_cycles"]
        started = time.perf_counter()
        stats = machine.run(image.entry,
                            collect_all=opts.get("all_solutions", False),
                            answer_names=image.query_variable_names)
        return machine, stats, time.perf_counter() - started


def _capture_error(err: BaseException,
                   machine: Optional[Machine]) -> QueryError:
    if machine is not None:
        cycles = machine.cycles
    else:
        # MachineError carries the partial run statistics; compile-time
        # errors carry neither and report no cycle count.
        stats = getattr(err, "stats", None)
        cycles = stats.cycles if stats is not None else None
    return QueryError(
        kind=type(err).__name__,
        message=str(err),
        pc=getattr(err, "pc", None),
        cycles=cycles,
    )


def _worker_main(worker_id: int, task_queue, result_queue,
                 max_machines: int) -> None:
    """The worker process loop (must stay a module-level function: the
    spawn start method imports this module and looks it up by name).

    Protocol, parent to worker:
      ``("image", key, payload)`` — register a pickled image,
      ``("run", index, key, opts)`` — execute one query,
      ``None`` — exit.
    Worker to parent (shared result queue):
      ``("ok", worker_id, index, solutions, stats, output, seconds)``
      ``("err", worker_id, index, QueryError, stats_or_None)``
    """
    images: Dict[str, LinkedImage] = {}
    pool = EnginePool(max_machines=max_machines)
    while True:
        message = task_queue.get()
        if message is None:
            return
        kind = message[0]
        if kind == "image":
            _, key, payload = message
            images[key] = pickle.loads(payload)
            continue
        _, index, key, opts = message
        machine: Optional[Machine] = None
        try:
            image = images[key]
            machine, stats, seconds = pool.run(key, image, opts)
            result_queue.put(("ok", worker_id, index,
                              machine.solutions, stats,
                              "".join(machine.output), seconds))
        except MachineError as err:
            result_queue.put(("err", worker_id, index,
                              _capture_error(err, machine),
                              getattr(err, "stats", None)))
        except BaseException as err:     # noqa: BLE001 — pool must survive
            result_queue.put(("err", worker_id, index,
                              _capture_error(err, machine), None))


#: a query is a bare string (against the default program) or an
#: explicit (program_name, query_text) pair.
Query = Union[str, Tuple[str, str]]


class QueryService:
    """A warm, optionally multiprocess query server for fixed programs.

    ``program`` is one source text (registered as ``"main"``) or a
    ``{name: source}`` mapping.  ``workers=0`` serves in-process on one
    engine pool; ``workers>=1`` starts that many persistent spawn
    workers.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, program: Union[str, Dict[str, str]],
                 workers: int = 0,
                 io_mode: str = "stub",
                 all_solutions: bool = False,
                 max_cycles: Optional[int] = None,
                 recovery: bool = False,
                 cache: Optional[ImageCache] = None,
                 max_machines: int = 64):
        if isinstance(program, str):
            self.programs = {DEFAULT_PROGRAM: program}
        else:
            if not program:
                raise ValueError("no programs given")
            self.programs = dict(program)
        self.default_program = next(iter(self.programs))
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.io_mode = io_mode
        self.all_solutions = all_solutions
        self.max_cycles = max_cycles
        self.recovery = recovery
        self.max_machines = max_machines
        self.cache = cache if cache is not None else default_image_cache()

        self._closed = False
        self._local_pool: Optional[EnginePool] = None
        self._payloads: Dict[str, bytes] = {}
        self._context = mp.get_context("spawn")
        self._result_queue = None
        self._task_queues: List = []
        self._processes: List = []
        self._shipped: List[set] = []
        if workers:
            self._result_queue = self._context.Queue()
            for worker_id in range(workers):
                self._spawn_worker(worker_id, fresh=True)
        else:
            self._local_pool = EnginePool(max_machines=max_machines)

    # -- lifecycle -------------------------------------------------------------

    def _spawn_worker(self, worker_id: int, fresh: bool) -> None:
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._result_queue,
                  self.max_machines),
            daemon=True,
            name=f"kcm-query-worker-{worker_id}")
        if fresh:
            self._task_queues.append(task_queue)
            self._processes.append(process)
            self._shipped.append(set())
        else:
            # Respawn after a kill: fresh queue (the old one may hold
            # undelivered messages) and a clean shipped-images record.
            self._task_queues[worker_id] = task_queue
            self._processes[worker_id] = process
            self._shipped[worker_id] = set()
        process.start()

    def close(self) -> None:
        """Stop every worker and release the pools (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put_nowait(None)
            except (ValueError, queue_module.Full, OSError):
                pass
        deadline = time.monotonic() + _CLOSE_GRACE
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=_CLOSE_GRACE)
        self._processes = []
        self._task_queues = []
        self._shipped = []
        self._local_pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- the batched API -------------------------------------------------------

    def run(self, query: Query, **options) -> ServiceResult:
        """One query through the batched path."""
        return self.run_many([query], **options)[0]

    def run_many(self, queries: Sequence[Query],
                 all_solutions: Optional[bool] = None,
                 max_cycles: Optional[int] = None,
                 timeout_s: Optional[float] = None) -> List[ServiceResult]:
        """Execute a batch; returns one :class:`ServiceResult` per query
        in input order, failures captured per slot.

        ``timeout_s`` is the per-query host wall budget (workers only:
        the in-process path cannot preempt a running engine — give it a
        ``max_cycles`` budget instead, which works everywhere).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        opts = {
            "all_solutions": self.all_solutions if all_solutions is None
            else all_solutions,
            "max_cycles": self.max_cycles if max_cycles is None
            else max_cycles,
            "recovery": self.recovery,
        }
        results: List[Optional[ServiceResult]] = [None] * len(queries)
        prepared: List[Optional[Tuple[str, LinkedImage]]] = []
        for index, query in enumerate(queries):
            name, text = self._normalize(query)
            try:
                source = self.programs[name]
            except KeyError:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError("UnknownProgram",
                                     f"no program registered as {name!r}"))
                prepared.append(None)
                continue
            try:
                # Compile in the parent, once per distinct pair, so a
                # batch of N identical queries costs one compile no
                # matter how many workers serve it.
                image = self.cache.get(source, text, io_mode=self.io_mode)
            except KCMError as err:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=_capture_error(err, None))
                prepared.append(None)
                continue
            prepared.append((image_key(source, text, self.io_mode), image))
        runnable = deque(index for index, item in enumerate(prepared)
                         if item is not None)

        if not self.workers:
            self._run_local(queries, prepared, runnable, opts, results)
        else:
            self._run_pooled(queries, prepared, runnable, opts,
                             timeout_s, results)
        return results  # type: ignore[return-value]  # every slot filled

    def _normalize(self, query: Query) -> Tuple[str, str]:
        if isinstance(query, str):
            return self.default_program, query
        name, text = query
        return name, text

    def _describe(self, queries: Sequence[Query],
                  index: int) -> Tuple[str, str]:
        return self._normalize(queries[index])

    # -- in-process serving ----------------------------------------------------

    def _run_local(self, queries, prepared, runnable, opts, results) -> None:
        pool = self._local_pool
        assert pool is not None
        for index in runnable:
            key, image = prepared[index]
            name, text = self._describe(queries, index)
            machine: Optional[Machine] = None
            try:
                machine, stats, seconds = pool.run(key, image, opts)
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    solutions=machine.solutions, stats=stats,
                    output="".join(machine.output),
                    host_seconds=seconds)
            except MachineError as err:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    stats=getattr(err, "stats", None),
                    error=_capture_error(err, machine))

    # -- pooled serving --------------------------------------------------------

    def _ship_image(self, worker_id: int, key: str,
                    image: LinkedImage) -> None:
        if key in self._shipped[worker_id]:
            return
        payload = self._payloads.get(key)
        if payload is None:
            payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
            self._payloads[key] = payload
        self._task_queues[worker_id].put(("image", key, payload))
        self._shipped[worker_id].add(key)

    def _dispatch(self, index: int, worker_id: int, prepared, opts,
                  timeout_s, inflight) -> None:
        key, image = prepared[index]
        self._ship_image(worker_id, key, image)
        self._task_queues[worker_id].put(("run", index, key, opts))
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        inflight[worker_id] = (index, deadline)

    def _fail_and_respawn(self, worker_id: int, index: int, queries,
                          results, kind: str, message: str) -> None:
        process = self._processes[worker_id]
        if process.is_alive():
            process.terminate()
        process.join(timeout=_CLOSE_GRACE)
        self._spawn_worker(worker_id, fresh=False)
        name, text = self._describe(queries, index)
        results[index] = ServiceResult(
            index=index, program=name, query=text, worker=worker_id,
            error=QueryError(kind, message))

    def _run_pooled(self, queries, prepared, runnable, opts,
                    timeout_s, results) -> None:
        idle = deque(range(self.workers))
        inflight: Dict[int, Tuple[int, Optional[float]]] = {}
        while runnable or inflight:
            while runnable and idle:
                self._dispatch(runnable.popleft(), idle.popleft(),
                               prepared, opts, timeout_s, inflight)
            wait = _POLL_SECONDS
            now = time.monotonic()
            for _, deadline in inflight.values():
                if deadline is not None:
                    wait = min(wait, max(0.0, deadline - now) + 0.01)
            try:
                message = self._result_queue.get(timeout=wait)
            except queue_module.Empty:
                self._reap(queries, inflight, idle, results)
                continue
            kind, worker_id, index = message[0], message[1], message[2]
            current = inflight.get(worker_id)
            if current is None or current[0] != index:
                continue        # stale reply from a worker killed earlier
            del inflight[worker_id]
            idle.append(worker_id)
            name, text = self._describe(queries, index)
            if kind == "ok":
                _, _, _, solutions, stats, output, seconds = message
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    solutions=solutions, stats=stats, output=output,
                    worker=worker_id, host_seconds=seconds)
            else:
                _, _, _, error, partial_stats = message
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    stats=partial_stats, error=error, worker=worker_id)

    def _reap(self, queries, inflight, idle, results) -> None:
        """Handle wall-timeout expiries and crashed workers."""
        now = time.monotonic()
        for worker_id in list(inflight):
            index, deadline = inflight[worker_id]
            if deadline is not None and now >= deadline:
                del inflight[worker_id]
                self._fail_and_respawn(
                    worker_id, index, queries, results, "WallTimeout",
                    "query exceeded its host wall budget; "
                    "worker restarted")
                idle.append(worker_id)
            elif not self._processes[worker_id].is_alive():
                del inflight[worker_id]
                self._fail_and_respawn(
                    worker_id, index, queries, results, "WorkerCrashed",
                    "worker process died while serving the query; "
                    "worker restarted")
                idle.append(worker_id)
