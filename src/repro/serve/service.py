"""Multiprocess query service over warm machine pools.

``QueryService`` turns the single-shot :func:`repro.api.run_query` into
a persistent serving loop, the shape BinProlog's first-class logic
engines suggest (PAPERS.md): compile once, keep engines warm, fan
queries out.

Architecture
    The parent owns the compile-once image cache
    (:mod:`repro.serve.cache`) and ``workers`` persistent **spawn**
    processes.  Each worker runs :func:`_worker_main`: a loop over a
    private task queue, executing queries on an :class:`EnginePool` —
    one warm :class:`~repro.core.machine.Machine` per image, returned
    to power-on state between queries by
    :meth:`~repro.core.machine.Machine.reset_for_reuse`, whose
    run-after-reuse ≡ run-on-fresh guarantee is what makes results
    independent of which worker (and which machine incarnation) served
    a query.

Spawn safety
    Workers are started with the ``spawn`` method — nothing is
    inherited by fork, so the protocol must ship everything explicitly.
    Images cross the boundary pickled (builtin handlers travel as
    (name, arity) specs, rebuilt on arrival); machines are built inside
    the worker, so the unpicklable fused memory closures and dispatch
    tables never cross at all.  Each image is shipped at most once per
    worker and re-used from the worker's pool afterwards.

Scheduling and ordering
    ``run_many`` dispatches at most one in-flight query per worker and
    hands each freed worker the next pending query, so a slow query
    delays only its own worker.  Results are collected into the input
    slot order — ``run_many(queries)[i]`` always answers
    ``queries[i]`` — and failures are captured per query as structured
    :class:`QueryError` records; a failed query never kills the pool.

Resilience (docs/RESILIENCE.md)
    Failures are classified transient vs permanent
    (:mod:`repro.serve.retry`); with a :class:`RetryPolicy`,
    ``run_many`` re-dispatches transiently-failed slots after
    deterministic exponential backoff.  With ``checkpoint_every``, a
    worker executes long queries in cycle slices, shipping an
    incremental :class:`~repro.core.traps.MachineCheckpoint` to the
    parent at each boundary; a retry after a crash **resumes** the
    query on a fresh worker from its last checkpoint, bit-identical to
    an uninterrupted run.  ``max_queue_depth`` bounds admission —
    excess slots fail fast with ``QueryError(kind="Shed")`` instead of
    queueing unboundedly — ``deadline_s`` bounds the whole batch, and
    :meth:`QueryService.health` reports a :class:`ServiceHealth`
    counter snapshot.  The deterministic chaos harness
    (:mod:`repro.serve.chaos`) drives all of it under seeded worker
    kills, delivery delays and injected machine faults.

    Every resilience feature is opt-in and strictly zero-cost when
    idle: with no retry policy, no checkpoint cadence and no chaos,
    the dispatch path and the machine inner loops are exactly the
    non-resilient ones (the parallel-service benchmark pins this).

Timeouts
    Two budgets per query: ``max_cycles`` bounds *simulated* time (the
    machine's own watchdog raises ``CycleLimitExceeded``, captured like
    any error), and ``timeout_s`` bounds *host* time — on expiry the
    worker is terminated and respawned, the query reports a
    ``WallTimeout`` failure, and the batch continues.  A result that
    reaches the parent in the same poll interval as its deadline wins
    over the expiry: the collector drains delivered messages before
    judging deadlines.

``workers=0`` degrades to in-process serving over the same engine-pool
code path (no processes, no pickling); the parallel-service benchmark
uses it as the warm sequential baseline.  The in-process path cannot
preempt, kill or respawn anything, so ``timeout_s``, retry policies,
admission control and chaos are worker-pool features; ``max_cycles``
and ``checkpoint_every`` (cycle-sliced execution) work everywhere.
"""

from __future__ import annotations

import heapq
import os
import pickle
import queue as queue_module
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import multiprocessing as mp

from repro.compiler.linker import LinkedImage
from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.core.traps import MachineCheckpoint
from repro.errors import KCMError, MachineError
from repro.serve.cache import ImageCache, default_image_cache, image_key
from repro.serve.chaos import ChaosKilled, ChaosPolicy
from repro.serve.retry import RetryPolicy, is_transient

#: default name a bare-string program is registered under.
DEFAULT_PROGRAM = "main"

#: how long the collector waits on the result queue per poll when no
#: wall deadline is pending (also bounds crash detection latency).
_POLL_SECONDS = 1.0

#: seconds a worker gets to exit voluntarily on close() before being
#: terminated.
_CLOSE_GRACE = 5.0

#: exit status a chaos-killed worker dies with (distinguishable from a
#: SIGKILL'd or faulted worker in the process table; the parent treats
#: both identically as WorkerCrashed).
_CHAOS_EXIT = 13


@dataclass
class QueryError:
    """A structured per-query failure (the pool survives it).

    ``transient`` marks host-side failure kinds (worker death, wall
    budget, shedding — see :mod:`repro.serve.retry`) that may succeed
    if re-submitted; deterministic machine failures reproduce exactly
    and are permanent.  ``attempts`` counts how many executions the
    slot consumed before the failure became final (0: never
    dispatched).
    """

    kind: str                       # exception class name or budget kind
    message: str
    pc: Optional[int] = None        # faulting PC for machine errors
    cycles: Optional[int] = None    # simulated cycles at the failure
    transient: bool = False
    attempts: int = 1

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class ServiceHealth:
    """A point-in-time snapshot of service liveness and lifetime
    counters (:meth:`QueryService.health`)."""

    workers: int                    # configured pool size
    workers_alive: int              # processes currently alive
    queue_depth: int                # admitted-but-undispatched slots
    inflight: int                   # queries currently on workers
    respawns: int                   # worker processes restarted
    retries: int                    # transient failures re-dispatched
    resumes: int                    # retries resumed from a checkpoint
    sheds: int                      # slots refused by admission control
    timeouts: int                   # WallTimeout expiries
    crashes: int                    # WorkerCrashed detections
    completed: int                  # slots finished ok
    failed: int                     # slots finished with a final error
    checkpoints_received: int       # checkpoint payloads collected
    #: seconds since each worker was last heard from (startup herald or
    #: any result/checkpoint message).
    heartbeat_age_s: Dict[int, float] = field(default_factory=dict)


@dataclass
class ServiceResult:
    """One query's outcome, detached from any machine or image.

    Unlike :class:`repro.api.QueryResult`, a service result never
    references a machine: a batch of 10k results retains solutions and
    statistics, not 10k simulated heaps.
    """

    index: int                      # position in the run_many batch
    program: str
    query: str
    solutions: List[dict] = field(default_factory=list)
    stats: Optional[RunStats] = None
    output: str = ""
    error: Optional[QueryError] = None
    worker: int = -1                # -1: parent (in-process or pre-run)
    host_seconds: float = 0.0       # wall time inside the engine

    @property
    def ok(self) -> bool:
        """Whether the query executed to completion."""
        return self.error is None

    @property
    def succeeded(self) -> bool:
        """Whether it completed with at least one solution."""
        return self.error is None and bool(self.solutions)


class EnginePool:
    """Warm machines keyed by image, reset between queries.

    Shared by the worker processes and the ``workers=0`` in-process
    path, so both execute queries through identical code.  The pool is
    LRU-bounded on machines; evicting a machine is always safe because
    a fresh machine over the same image produces bit-identical results
    (the warm-reuse determinism guarantee).
    """

    def __init__(self, max_machines: int = 64):
        self.max_machines = max_machines
        self._machines: "OrderedDict[str, Machine]" = OrderedDict()
        #: constructor-default cycle budget, restored before every
        #: query so a per-query ``max_cycles`` never leaks to the next.
        self._default_budget: Dict[str, int] = {}
        #: keys whose pooled machine has recovery handlers installed
        #: (reset_for_reuse keeps trap handlers, so once is enough).
        self._recovered: Set[str] = set()

    def machine_for(self, key: str, image: LinkedImage,
                    recovery: bool = False) -> Machine:
        """A power-on-state machine loaded with ``image``."""
        machine = self._machines.get(key)
        if machine is None:
            machine = Machine(symbols=image.symbols)
            image.install(machine)
            machine.image = image
            while len(self._machines) >= self.max_machines:
                evicted_key, _ = self._machines.popitem(last=False)
                self._default_budget.pop(evicted_key, None)
                self._recovered.discard(evicted_key)
            self._machines[key] = machine
            self._default_budget[key] = machine.max_cycles
        else:
            self._machines.move_to_end(key)
            machine.max_cycles = self._default_budget[key]
            machine.reset_for_reuse()
        if recovery and key not in self._recovered:
            from repro.recovery import install_default_recovery
            install_default_recovery(machine)
            self._recovered.add(key)
        return machine

    def run(self, key: str, image: LinkedImage, opts: dict,
            on_checkpoint: Optional[Callable] = None,
            resume_from: Optional[MachineCheckpoint] = None,
            ) -> Tuple[Machine, RunStats, float]:
        """Execute one query; returns (machine, stats, host_seconds).

        With ``resume_from``, the query continues from a
        :class:`MachineCheckpoint` captured by an earlier (possibly
        dead) incarnation instead of starting over; with
        ``opts["checkpoint_every"]`` and an ``on_checkpoint`` callback,
        execution proceeds in cycle slices and each boundary's
        incremental checkpoint is handed to the callback.  Raises
        whatever the run raises — the caller owns failure capture.
        """
        inject = opts.get("inject")
        machine = self.machine_for(
            key, image,
            recovery=bool(opts.get("recovery")) or inject is not None)
        if inject is not None:
            from repro.recovery import FaultInjector
            # Rebuilt from the same spec on every attempt: the schedule
            # is a pure function of its arguments, and restore() below
            # re-applies the checkpointed mid-run progress on resume.
            FaultInjector(**inject).attach(machine)
        if resume_from is not None:
            # The stub gives resume() its exit continuation (the run
            # bootstrap normally writes it); the checkpoint then
            # overwrites registers, store, timing and host state.  The
            # checkpoint's saved cycle budget is the *slice* target it
            # was captured under — restore the real budget after.
            machine._bootstrap_stub(image.entry)
            resume_from.restore(machine)
            machine.max_cycles = (opts["max_cycles"]
                                  if opts.get("max_cycles") is not None
                                  else self._default_budget[key])
        elif opts.get("max_cycles") is not None:
            machine.max_cycles = opts["max_cycles"]
        return self._drive(machine, image, opts, on_checkpoint, resume_from)

    def _drive(self, machine: Machine, image: LinkedImage, opts: dict,
               on_checkpoint: Optional[Callable],
               resume_from: Optional[MachineCheckpoint],
               ) -> Tuple[Machine, RunStats, float]:
        """Run (or resume) the machine, plain or cycle-sliced."""
        collect_all = opts.get("all_solutions", False)
        every = opts.get("checkpoint_every")
        kill_at = opts.get("chaos_kill_cycles")
        started = time.perf_counter()
        if every is None and kill_at is None:
            # The idle path: exactly the pre-resilience dispatch.
            if resume_from is None:
                stats = machine.run(image.entry, collect_all=collect_all,
                                    answer_names=image.query_variable_names)
            else:
                stats = machine.resume()
            return machine, stats, time.perf_counter() - started

        # A chaos kill planned at a cycle the resumed run is already
        # past stays disarmed — otherwise a resume could die instantly
        # at its first boundary, forever.
        start_cycles = machine.cycles if resume_from is not None else 0
        armed_kill = (kill_at if kill_at is not None
                      and start_cycles < kill_at else None)

        def next_stop(cycles: int) -> Optional[int]:
            targets = []
            if every is not None:
                # Cycle-aligned grid: a resumed run stops at the same
                # absolute boundaries an uninterrupted one does.
                targets.append(cycles - cycles % every + every)
            if armed_kill is not None:
                targets.append(armed_kill)
            return min(targets) if targets else None

        previous = [resume_from]

        def on_stop(m: Machine) -> None:
            if armed_kill is not None and m.cycles >= armed_kill:
                raise ChaosKilled(f"chaos kill at cycle {m.cycles}")
            if every is not None and on_checkpoint is not None:
                ckpt = MachineCheckpoint.capture(m, since=previous[0])
                previous[0] = ckpt
                on_checkpoint(ckpt)

        track = every is not None and on_checkpoint is not None
        store = machine.memory.store
        if track:
            # Arm dirty-page tracking before the run builds its fused
            # write closure, so post-checkpoint captures copy only the
            # chunks the run actually touched since the last one.
            store.track_dirty = True
            store.dirty_chunks.clear()
        try:
            if resume_from is None:
                stats = machine.run_sliced(
                    image.entry, next_stop, on_stop,
                    collect_all=collect_all,
                    answer_names=image.query_variable_names)
            else:
                stats = machine.resume_sliced(next_stop, on_stop)
            return machine, stats, time.perf_counter() - started
        finally:
            if track:
                store.track_dirty = False
                store.dirty_chunks.clear()


def _capture_error(err: BaseException,
                   machine: Optional[Machine]) -> QueryError:
    if machine is not None:
        cycles = machine.cycles
    else:
        # MachineError carries the partial run statistics; compile-time
        # errors carry neither and report no cycle count.
        stats = getattr(err, "stats", None)
        cycles = stats.cycles if stats is not None else None
    kind = type(err).__name__
    return QueryError(
        kind=kind,
        message=str(err),
        pc=getattr(err, "pc", None),
        cycles=cycles,
        transient=is_transient(kind),
    )


def _worker_main(worker_id: int, task_queue, result_queue,
                 max_machines: int) -> None:
    """The worker process loop (must stay a module-level function: the
    spawn start method imports this module and looks it up by name).

    Protocol, parent to worker:
      ``("image", key, payload)`` — register a pickled image,
      ``("run", index, attempt, key, opts)`` — execute one query,
      ``("resume", index, attempt, key, opts, ckpt)`` — continue a
      query from a pickled checkpoint,
      ``None`` — exit.
    Worker to parent (shared result queue; every message carries the
    attempt number so replies from a superseded execution are dropped):
      ``("hb", worker_id, monotonic_ts)`` — startup herald,
      ``("ckpt", worker_id, index, attempt, payload)``
      ``("ok", worker_id, index, attempt, solutions, stats, output,
      seconds)``
      ``("err", worker_id, index, attempt, QueryError, stats_or_None)``

    A chaos-killed worker (:class:`ChaosKilled` from its plan's cycle
    threshold) flushes the result queue — checkpoints already shipped
    must survive; the crash model is death *between* IPC writes, not a
    torn write — then dies via ``os._exit`` so the parent observes a
    dead process mid-query.
    """
    images: Dict[str, LinkedImage] = {}
    pool = EnginePool(max_machines=max_machines)
    result_queue.put(("hb", worker_id, time.monotonic()))
    while True:
        message = task_queue.get()
        if message is None:
            return
        kind = message[0]
        if kind == "image":
            _, key, payload = message
            images[key] = pickle.loads(payload)
            continue
        if kind == "resume":
            _, index, attempt, key, opts, ckpt_payload = message
        else:
            _, index, attempt, key, opts = message
            ckpt_payload = None
        machine: Optional[Machine] = None
        try:
            image = images[key]
            resume_from = (pickle.loads(ckpt_payload)
                           if ckpt_payload is not None else None)
            on_checkpoint = None
            if opts.get("checkpoint_every") is not None:
                def on_checkpoint(ckpt, _index=index, _attempt=attempt):
                    result_queue.put(
                        ("ckpt", worker_id, _index, _attempt,
                         pickle.dumps(ckpt,
                                      protocol=pickle.HIGHEST_PROTOCOL)))
            machine, stats, seconds = pool.run(
                key, image, opts,
                on_checkpoint=on_checkpoint, resume_from=resume_from)
            delay = opts.get("chaos_delay_s")
            if delay:
                time.sleep(delay)
            result_queue.put(("ok", worker_id, index, attempt,
                              machine.solutions, stats,
                              "".join(machine.output), seconds))
        except ChaosKilled:
            result_queue.close()
            result_queue.join_thread()
            os._exit(_CHAOS_EXIT)
        except MachineError as err:
            result_queue.put(("err", worker_id, index, attempt,
                              _capture_error(err, machine),
                              getattr(err, "stats", None)))
        except BaseException as err:     # noqa: BLE001 — pool must survive
            result_queue.put(("err", worker_id, index, attempt,
                              _capture_error(err, machine), None))


#: a query is a bare string (against the default program) or an
#: explicit (program_name, query_text) pair.
Query = Union[str, Tuple[str, str]]


@dataclass
class _BatchState:
    """Everything one ``run_many`` collection loop tracks."""

    queries: Sequence
    prepared: List
    opts: dict
    timeout_s: Optional[float]
    results: List
    policy: Optional[RetryPolicy]
    chaos: Optional[ChaosPolicy]
    batch_deadline: Optional[float]
    runnable: deque
    idle: deque
    #: worker_id -> (slot index, attempt, host deadline)
    inflight: Dict[int, Tuple[int, int, Optional[float]]] = field(
        default_factory=dict)
    #: slot index -> executions started so far
    attempts: Dict[int, int] = field(default_factory=dict)
    #: slot index -> latest checkpoint payload from the live attempt
    checkpoints: Dict[int, bytes] = field(default_factory=dict)
    #: slot index -> payload the next dispatch should resume from
    resume_payload: Dict[int, bytes] = field(default_factory=dict)
    #: min-heap of (ready time, slot index) awaiting retry backoff
    retry_ready: List[Tuple[float, int]] = field(default_factory=list)


class QueryService:
    """A warm, optionally multiprocess query server for fixed programs.

    ``program`` is one source text (registered as ``"main"``) or a
    ``{name: source}`` mapping.  ``workers=0`` serves in-process on one
    engine pool; ``workers>=1`` starts that many persistent spawn
    workers.  Use as a context manager, or call :meth:`close`.

    Resilience knobs (all opt-in, see the module docstring):
    ``retry`` (a :class:`~repro.serve.retry.RetryPolicy`),
    ``checkpoint_every`` (cycles between checkpoints of long queries),
    ``max_queue_depth`` (admission bound beyond the worker count), and
    ``chaos`` (a :class:`~repro.serve.chaos.ChaosPolicy`, tests/CI
    only).  Each has a per-batch override on :meth:`run_many`.
    """

    def __init__(self, program: Union[str, Dict[str, str]],
                 workers: int = 0,
                 io_mode: str = "stub",
                 all_solutions: bool = False,
                 max_cycles: Optional[int] = None,
                 recovery: bool = False,
                 cache: Optional[ImageCache] = None,
                 max_machines: int = 64,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint_every: Optional[int] = None,
                 max_queue_depth: Optional[int] = None,
                 chaos: Optional[ChaosPolicy] = None):
        if isinstance(program, str):
            self.programs = {DEFAULT_PROGRAM: program}
        else:
            if not program:
                raise ValueError("no programs given")
            self.programs = dict(program)
        self.default_program = next(iter(self.programs))
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.workers = workers
        self.io_mode = io_mode
        self.all_solutions = all_solutions
        self.max_cycles = max_cycles
        self.recovery = recovery
        self.max_machines = max_machines
        self.retry = retry
        self.checkpoint_every = checkpoint_every
        self.max_queue_depth = max_queue_depth
        self.chaos = chaos
        self.cache = cache if cache is not None else default_image_cache()

        self._closed = False
        self._local_pool: Optional[EnginePool] = None
        self._payloads: Dict[str, bytes] = {}
        self._context = mp.get_context("spawn")
        self._result_queue = None
        self._task_queues: List = []
        self._processes: List = []
        self._shipped: List[set] = []
        self._batch: Optional[_BatchState] = None
        self._last_seen: Dict[int, float] = {}
        self._counters: Dict[str, int] = {
            "respawns": 0, "retries": 0, "resumes": 0, "sheds": 0,
            "timeouts": 0, "crashes": 0, "completed": 0, "failed": 0,
            "checkpoints_received": 0,
        }
        if workers:
            self._result_queue = self._context.Queue()
            for worker_id in range(workers):
                self._spawn_worker(worker_id, fresh=True)
        else:
            self._local_pool = EnginePool(max_machines=max_machines)

    # -- lifecycle -------------------------------------------------------------

    def _spawn_worker(self, worker_id: int, fresh: bool) -> None:
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._result_queue,
                  self.max_machines),
            daemon=True,
            name=f"kcm-query-worker-{worker_id}")
        if fresh:
            self._task_queues.append(task_queue)
            self._processes.append(process)
            self._shipped.append(set())
        else:
            # Respawn after a kill: fresh queue (the old one may hold
            # undelivered messages) and a clean shipped-images record.
            self._task_queues[worker_id] = task_queue
            self._processes[worker_id] = process
            self._shipped[worker_id] = set()
        process.start()

    def _respawn(self, worker_id: int) -> None:
        process = self._processes[worker_id]
        if process.is_alive():
            process.terminate()
        process.join(timeout=_CLOSE_GRACE)
        self._counters["respawns"] += 1
        self._spawn_worker(worker_id, fresh=False)

    def close(self) -> None:
        """Stop every worker and release the pools (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put_nowait(None)
            except (ValueError, queue_module.Full, OSError):
                pass
        deadline = time.monotonic() + _CLOSE_GRACE
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=_CLOSE_GRACE)
        self._processes = []
        self._task_queues = []
        self._shipped = []
        self._local_pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- health ----------------------------------------------------------------

    def health(self) -> ServiceHealth:
        """Liveness plus lifetime counters (cheap; callable any time,
        including between batches and after :meth:`close`)."""
        now = time.monotonic()
        state = self._batch
        return ServiceHealth(
            workers=self.workers,
            workers_alive=sum(1 for process in self._processes
                              if process.is_alive()),
            queue_depth=(len(state.runnable) + len(state.retry_ready)
                         if state is not None else 0),
            inflight=len(state.inflight) if state is not None else 0,
            heartbeat_age_s={worker_id: now - seen
                             for worker_id, seen in self._last_seen.items()},
            **self._counters)

    # -- the batched API -------------------------------------------------------

    def run(self, query: Query, **options) -> ServiceResult:
        """One query through the batched path."""
        return self.run_many([query], **options)[0]

    def run_many(self, queries: Sequence[Query],
                 all_solutions: Optional[bool] = None,
                 max_cycles: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint_every: Optional[int] = None,
                 deadline_s: Optional[float] = None,
                 chaos: Optional[ChaosPolicy] = None,
                 ) -> List[ServiceResult]:
        """Execute a batch; returns one :class:`ServiceResult` per query
        in input order, failures captured per slot.

        ``timeout_s`` is the per-query host wall budget; ``deadline_s``
        bounds the whole batch — slots not finished when it passes fail
        with ``DeadlineExceeded``.  ``retry``, ``checkpoint_every`` and
        ``chaos`` override the service-level defaults for this batch.
        Host-side controls (timeouts, retry, admission, chaos) apply to
        worker pools only; the in-process path cannot preempt a running
        engine — give it a ``max_cycles`` budget instead, which works
        everywhere.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        policy = retry if retry is not None else self.retry
        chaos_policy = chaos if chaos is not None else self.chaos
        every = (checkpoint_every if checkpoint_every is not None
                 else self.checkpoint_every)
        opts = {
            "all_solutions": self.all_solutions if all_solutions is None
            else all_solutions,
            "max_cycles": self.max_cycles if max_cycles is None
            else max_cycles,
            "recovery": self.recovery,
            "checkpoint_every": every,
        }
        results: List[Optional[ServiceResult]] = [None] * len(queries)
        prepared: List[Optional[Tuple[str, LinkedImage]]] = []
        for index, query in enumerate(queries):
            name, text = self._normalize(query)
            try:
                source = self.programs[name]
            except KeyError:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=QueryError("UnknownProgram",
                                     f"no program registered as {name!r}"))
                prepared.append(None)
                continue
            try:
                # Compile in the parent, once per distinct pair, so a
                # batch of N identical queries costs one compile no
                # matter how many workers serve it.
                image = self.cache.get(source, text, io_mode=self.io_mode)
            except KCMError as err:
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    error=_capture_error(err, None))
                prepared.append(None)
                continue
            prepared.append((image_key(source, text, self.io_mode), image))
        runnable = deque(index for index, item in enumerate(prepared)
                         if item is not None)
        runnable = self._admit(queries, runnable, results)
        batch_deadline = (time.monotonic() + deadline_s
                          if deadline_s is not None else None)

        if not self.workers:
            self._run_local(queries, prepared, runnable, opts, results)
        else:
            self._run_pooled(queries, prepared, runnable, opts, timeout_s,
                             results, policy, chaos_policy, batch_deadline)
        missing = [index for index, result in enumerate(results)
                   if result is None]
        if missing:
            raise RuntimeError(
                f"internal error: batch slots {missing} were never filled")
        return results  # type: ignore[return-value]  # every slot filled

    def _admit(self, queries, runnable: deque, results) -> deque:
        """Admission control: bound the queue beyond worker capacity.

        Slots past ``workers + max_queue_depth`` are shed immediately
        with a transient ``Shed`` error rather than queued — the caller
        sees backpressure now instead of unbounded latency later.
        """
        if not self.workers or self.max_queue_depth is None:
            return runnable
        capacity = self.workers + self.max_queue_depth
        if len(runnable) <= capacity:
            return runnable
        admitted = deque()
        for position, index in enumerate(runnable):
            if position < capacity:
                admitted.append(index)
                continue
            name, text = self._describe(queries, index)
            self._counters["sheds"] += 1
            results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(
                    "Shed",
                    f"admission control: batch slot {position} exceeds "
                    f"capacity {capacity} "
                    f"({self.workers} workers + {self.max_queue_depth} queued)",
                    transient=True, attempts=0))
        return admitted

    def _normalize(self, query: Query) -> Tuple[str, str]:
        if isinstance(query, str):
            return self.default_program, query
        name, text = query
        return name, text

    def _describe(self, queries: Sequence[Query],
                  index: int) -> Tuple[str, str]:
        return self._normalize(queries[index])

    # -- in-process serving ----------------------------------------------------

    def _run_local(self, queries, prepared, runnable, opts, results) -> None:
        pool = self._local_pool
        assert pool is not None
        for index in runnable:
            key, image = prepared[index]
            name, text = self._describe(queries, index)
            machine: Optional[Machine] = None
            try:
                machine, stats, seconds = pool.run(key, image, opts)
                self._counters["completed"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    solutions=machine.solutions, stats=stats,
                    output="".join(machine.output),
                    host_seconds=seconds)
            except MachineError as err:
                self._counters["failed"] += 1
                results[index] = ServiceResult(
                    index=index, program=name, query=text,
                    stats=getattr(err, "stats", None),
                    error=_capture_error(err, machine))

    # -- pooled serving --------------------------------------------------------

    def _ship_image(self, worker_id: int, key: str,
                    image: LinkedImage) -> None:
        if key in self._shipped[worker_id]:
            return
        payload = self._payloads.get(key)
        if payload is None:
            payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
            self._payloads[key] = payload
        self._task_queues[worker_id].put(("image", key, payload))
        self._shipped[worker_id].add(key)

    def _run_pooled(self, queries, prepared, runnable, opts, timeout_s,
                    results, policy, chaos, batch_deadline) -> None:
        state = _BatchState(
            queries=queries, prepared=prepared, opts=opts,
            timeout_s=timeout_s, results=results, policy=policy,
            chaos=chaos, batch_deadline=batch_deadline,
            runnable=runnable, idle=deque(range(self.workers)))
        self._batch = state
        try:
            while state.runnable or state.retry_ready or state.inflight:
                now = time.monotonic()
                if batch_deadline is not None and now >= batch_deadline:
                    self._expire_batch(state)
                    break
                while state.retry_ready and state.retry_ready[0][0] <= now:
                    _, index = heapq.heappop(state.retry_ready)
                    state.runnable.append(index)
                while state.runnable and state.idle:
                    self._dispatch(state.runnable.popleft(),
                                   state.idle.popleft(), state)
                try:
                    message = self._result_queue.get(
                        timeout=self._wait_interval(state))
                except queue_module.Empty:
                    self._reap(state)
                    continue
                self._deliver(message, state)
        finally:
            self._batch = None

    def _wait_interval(self, state: _BatchState) -> float:
        """How long the collector may block before something (a wall
        deadline, a retry becoming ready, the batch deadline) needs
        attention."""
        wait = _POLL_SECONDS
        now = time.monotonic()
        for _, _, deadline in state.inflight.values():
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - now) + 0.01)
        if state.retry_ready:
            wait = min(wait, max(0.0, state.retry_ready[0][0] - now) + 0.01)
        if state.batch_deadline is not None:
            wait = min(wait,
                       max(0.0, state.batch_deadline - now) + 0.01)
        return wait

    def _dispatch(self, index: int, worker_id: int,
                  state: _BatchState) -> None:
        """Hand slot ``index`` (attempt N) to ``worker_id``."""
        if not self._processes[worker_id].is_alive():
            # An idle worker died (e.g. its chaos exit raced with the
            # previous result): replace it before dispatching onto it.
            self._respawn(worker_id)
        key, image = state.prepared[index]
        attempt = state.attempts.get(index, 0) + 1
        state.attempts[index] = attempt
        opts = state.opts
        if state.chaos is not None:
            opts = state.chaos.plan(index, attempt).apply(opts)
        self._ship_image(worker_id, key, image)
        payload = state.resume_payload.pop(index, None)
        if payload is not None:
            self._task_queues[worker_id].put(
                ("resume", index, attempt, key, opts, payload))
        else:
            self._task_queues[worker_id].put(
                ("run", index, attempt, key, opts))
        now = time.monotonic()
        deadline = (now + state.timeout_s
                    if state.timeout_s is not None else None)
        if state.batch_deadline is not None:
            deadline = (state.batch_deadline if deadline is None
                        else min(deadline, state.batch_deadline))
        state.inflight[worker_id] = (index, attempt, deadline)

    def _deliver(self, message, state: _BatchState) -> None:
        """Apply one worker message to the batch state."""
        kind, worker_id = message[0], message[1]
        self._last_seen[worker_id] = time.monotonic()
        if kind == "hb":
            return
        index, attempt = message[2], message[3]
        current = state.inflight.get(worker_id)
        if current is None or current[0] != index or current[1] != attempt:
            return      # stale reply from a killed or superseded attempt
        if kind == "ckpt":
            state.checkpoints[index] = message[4]
            self._counters["checkpoints_received"] += 1
            return
        del state.inflight[worker_id]
        state.idle.append(worker_id)
        state.checkpoints.pop(index, None)
        name, text = self._describe(state.queries, index)
        if kind == "ok":
            _, _, _, _, solutions, stats, output, seconds = message
            self._counters["completed"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                solutions=solutions, stats=stats, output=output,
                worker=worker_id, host_seconds=seconds)
        else:
            _, _, _, _, error, partial_stats = message
            # Worker-reported errors are deterministic machine/compile
            # failures — permanent, never retried.
            error.attempts = attempt
            self._counters["failed"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                stats=partial_stats, error=error, worker=worker_id)

    def _drain(self, state: _BatchState) -> None:
        """Deliver everything already sitting in the result queue."""
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue_module.Empty:
                return
            self._deliver(message, state)

    def _reap(self, state: _BatchState) -> None:
        """Handle wall-timeout expiries and crashed workers.

        Delivered-but-uncollected results are drained *first*: a result
        that arrived within the same poll interval as its deadline
        expiry wins over the expiry, so a query is never reported
        ``WallTimeout`` when its answer was already in the queue.
        """
        self._drain(state)
        now = time.monotonic()
        for worker_id in list(state.inflight):
            index, attempt, deadline = state.inflight[worker_id]
            if deadline is not None and now >= deadline:
                if (state.batch_deadline is not None
                        and now >= state.batch_deadline):
                    self._lose_worker(
                        worker_id, "DeadlineExceeded",
                        "batch deadline passed while the query was "
                        "in flight; worker restarted", state)
                else:
                    self._lose_worker(
                        worker_id, "WallTimeout",
                        "query exceeded its host wall budget; "
                        "worker restarted", state)
            elif not self._processes[worker_id].is_alive():
                self._lose_worker(
                    worker_id, "WorkerCrashed",
                    "worker process died while serving the query; "
                    "worker restarted", state)

    def _lose_worker(self, worker_id: int, kind: str, message: str,
                     state: _BatchState) -> None:
        """A worker (and the attempt on it) is gone: respawn, then
        either schedule a retry — resuming from the attempt's last
        checkpoint when one arrived — or finalise the slot's failure."""
        index, attempt, _ = state.inflight.pop(worker_id)
        self._respawn(worker_id)
        state.idle.append(worker_id)
        if kind == "WallTimeout":
            self._counters["timeouts"] += 1
        elif kind == "WorkerCrashed":
            self._counters["crashes"] += 1
        now = time.monotonic()
        policy = state.policy
        within_deadline = (state.batch_deadline is None
                           or now < state.batch_deadline)
        if (policy is not None and within_deadline
                and policy.retryable(kind, attempt)):
            self._counters["retries"] += 1
            payload = state.checkpoints.get(index)
            if payload is not None:
                state.resume_payload[index] = payload
                self._counters["resumes"] += 1
            heapq.heappush(state.retry_ready,
                           (now + policy.delay_s(index, attempt), index))
            return
        name, text = self._describe(state.queries, index)
        self._counters["failed"] += 1
        state.results[index] = ServiceResult(
            index=index, program=name, query=text, worker=worker_id,
            error=QueryError(kind, message, transient=is_transient(kind),
                             attempts=attempt))

    def _expire_batch(self, state: _BatchState) -> None:
        """The batch deadline passed: drain what already finished (it
        still wins), then fail everything unfinished."""
        self._drain(state)
        for worker_id in list(state.inflight):
            self._lose_worker(
                worker_id, "DeadlineExceeded",
                "batch deadline passed while the query was in flight; "
                "worker restarted", state)
        pending = list(state.runnable) + [index for _, index
                                          in state.retry_ready]
        state.runnable.clear()
        state.retry_ready.clear()
        for index in pending:
            if state.results[index] is not None:
                continue
            name, text = self._describe(state.queries, index)
            self._counters["failed"] += 1
            state.results[index] = ServiceResult(
                index=index, program=name, query=text,
                error=QueryError(
                    "DeadlineExceeded",
                    "batch deadline passed before the query was "
                    "dispatched", transient=True,
                    attempts=state.attempts.get(index, 0)))
