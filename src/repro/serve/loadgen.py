"""Open-loop load generation for the query service.

Closed-loop benchmarks (issue another query when the last returns)
cannot see overload: the offered rate politely collapses to whatever
the service sustains.  An **open-loop** generator fixes the arrival
process in advance — queries arrive on a wall-clock schedule whether
or not the service has kept up — so queueing, shedding and deadline
pressure actually happen, and the soak measures how the service
*degrades*, not just how fast it is when comfortable.

The generator is deterministic: :class:`OpenLoopGenerator` expands a
:class:`LoadSpec` into a fixed list of :class:`Arrival`\\ s (Poisson
inter-arrival gaps, query mix and priority classes all drawn from one
seeded generator), so two soaks with the same spec offer the identical
workload.  Only the *service's* timing varies between runs.

:func:`run_soak` drives the arrivals through a
:class:`~repro.serve.service.QueryService` in waves: whenever the
service is free, every arrival whose time has come is submitted as one
``run_many`` batch (with its priority class, so admission control
sheds lowest-priority-youngest under pressure).  Per-arrival latency
is completion minus *scheduled arrival* — it includes the time spent
waiting for a wave slot, which is exactly the queueing delay an
open-loop client would observe.

The soak's acceptance gate is **exactly-once accounting**: every
generated arrival must end in exactly one disposition — ``ok``,
``shed``, or a typed error — with none lost and none duplicated, no
matter how much chaos (worker kills, quarantines, degraded mode) the
run absorbed.  With ``check_solutions`` the ``ok`` dispositions are
additionally compared against a fault-free in-process reference.
"""

from __future__ import annotations

import dataclasses
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.serve.service import QueryService


@dataclass(frozen=True)
class LoadSpec:
    """The deterministic recipe for one open-loop workload.

    ``rate_qps`` fixes the mean arrival rate; ``total_queries`` fixes
    the workload size (so the nominal duration is ``total / rate``).
    ``priority_classes``/``priority_weights`` describe the importance
    mix (smaller class is more important; weights need not sum to 1).
    """

    rate_qps: float = 50.0
    total_queries: int = 200
    seed: int = 0
    priority_classes: Tuple[int, ...] = (0, 1, 2)
    priority_weights: Tuple[float, ...] = (0.2, 0.3, 0.5)

    def __post_init__(self):
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")
        if self.total_queries < 1:
            raise ValueError("total_queries must be >= 1")
        if len(self.priority_classes) != len(self.priority_weights):
            raise ValueError("priority classes and weights must pair up")
        if not self.priority_classes:
            raise ValueError("need at least one priority class")


@dataclass(frozen=True)
class Arrival:
    """One scheduled query: arrives ``offset_s`` after the soak starts."""

    id: int
    offset_s: float
    program: str
    query: str
    priority: int


class OpenLoopGenerator:
    """Expands a :class:`LoadSpec` over a query mix into a fixed
    arrival schedule.

    ``mix`` is the (program, query) pairs to draw from — typically a
    PLM-corpus slice.  Everything (inter-arrival gaps, query choice,
    priority class) comes from one ``random.Random(spec.seed)``, so
    the schedule is a pure function of ``(spec, mix)``.
    """

    def __init__(self, spec: LoadSpec,
                 mix: Sequence[Tuple[str, str]]):
        if not mix:
            raise ValueError("query mix must not be empty")
        self.spec = spec
        self.mix = list(mix)

    def arrivals(self) -> List[Arrival]:
        """The full deterministic arrival schedule, in time order."""
        spec = self.spec
        rng = random.Random(spec.seed)
        schedule: List[Arrival] = []
        clock = 0.0
        for arrival_id in range(spec.total_queries):
            # Poisson process: exponential gaps at the offered rate.
            clock += rng.expovariate(spec.rate_qps)
            program, query = self.mix[rng.randrange(len(self.mix))]
            priority = rng.choices(spec.priority_classes,
                                   weights=spec.priority_weights)[0]
            schedule.append(Arrival(id=arrival_id, offset_s=clock,
                                    program=program, query=query,
                                    priority=priority))
        return schedule


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(-(-q * len(ordered) // 100)))   # ceil, >= 1
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class SoakReport:
    """What one open-loop soak observed."""

    offered: int                    # arrivals generated
    offered_qps: float              # spec rate
    elapsed_s: float                # wall time, first submit to last return
    waves: int                      # run_many batches issued
    submitted: int = 0              # arrivals actually sent to the service
    unsubmitted: int = 0            # cut off by the wall-clock budget
    budget_s: Optional[float] = None
    ok: int = 0
    shed: int = 0
    errors: Dict[str, int] = field(default_factory=dict)  # kind -> count
    accounted: int = 0              # arrivals with exactly one disposition
    accounting_ok: bool = False     # exactly-once invariant held
    solutions_ok: bool = True       # ok results matched the reference
    mismatches: List[str] = field(default_factory=list)
    sustained_qps: float = 0.0      # ok completions per elapsed second
    shed_rate: float = 0.0
    p50_latency_s: float = 0.0      # completion - scheduled arrival
    p99_latency_s: float = 0.0
    max_latency_s: float = 0.0
    health: Optional[object] = None   # final ServiceHealth snapshot


def run_soak(service: QueryService,
             arrivals: Sequence[Arrival],
             offered_qps: float,
             timeout_s: Optional[float] = None,
             retry=None,
             chaos=None,
             max_wave: Optional[int] = None,
             check_solutions: bool = False,
             budget_s: Optional[float] = None) -> SoakReport:
    """Drive ``arrivals`` through ``service`` open-loop; account for
    every one of them.

    Waves: the driver sleeps until the next scheduled arrival, then
    submits every arrival already due as one ``run_many`` batch
    (bounded by ``max_wave`` — the overflow stays queued and ages,
    which is what makes priority-aware shedding observable).  The
    arrival clock never pauses for the service: a slow wave means the
    next wave is bigger, exactly as a real open-loop client population
    behaves.

    ``budget_s`` bounds the soak by wall clock instead of by schedule
    length: once the budget elapses no further wave is submitted, and
    the cut-off arrivals are reported as ``unsubmitted`` (so a 100k+
    schedule can be offered at pressure rates while the run stays
    time-boxed).  The exactly-once accounting invariant then covers
    every *submitted* arrival — each ends in exactly one disposition;
    submitted + unsubmitted always equals offered.
    """
    reference: Dict[Tuple[str, str], List[dict]] = {}
    if check_solutions:
        distinct = sorted({(a.program, a.query) for a in arrivals})
        with QueryService(service.programs, workers=0,
                          all_solutions=service.all_solutions) \
                as reference_service:
            for program, query in distinct:
                result = reference_service.run((program, query))
                if result.ok:
                    reference[(program, query)] = result.solutions

    report = SoakReport(offered=len(arrivals), offered_qps=offered_qps,
                        elapsed_s=0.0, waves=0, budget_s=budget_s)
    dispositions: Dict[int, str] = {}
    latencies: List[float] = []
    queue: List[Arrival] = sorted(arrivals, key=lambda a: a.offset_s)
    cursor = 0                       # first not-yet-submitted arrival
    start = time.monotonic()

    backlog: Deque[Arrival] = deque()
    while cursor < len(queue) or backlog:
        now = time.monotonic() - start
        if budget_s is not None and now >= budget_s:
            break
        while cursor < len(queue) and queue[cursor].offset_s <= now:
            backlog.append(queue[cursor])
            cursor += 1
        if not backlog:
            time.sleep(min(0.05, max(0.0, queue[cursor].offset_s - now)))
            continue
        if max_wave is None:
            wave = list(backlog)
            backlog.clear()
        else:
            wave = [backlog.popleft()
                    for _ in range(min(max_wave, len(backlog)))]
        report.submitted += len(wave)
        # Re-seed the chaos per wave: a policy's plans are a pure
        # function of (seed, slot, attempt), and successive small
        # waves reuse the same low slot indices — without this every
        # wave would replay one identical plan set instead of
        # sampling the configured kill/delay rates across the soak.
        wave_chaos = (dataclasses.replace(
            chaos, seed=chaos.seed + 7_919 * (report.waves + 1))
            if chaos is not None else None)
        results = service.run_many(
            [(a.program, a.query) for a in wave],
            timeout_s=timeout_s, retry=retry, chaos=wave_chaos,
            priorities=[a.priority for a in wave])
        done = time.monotonic() - start
        report.waves += 1
        for arrival, result in zip(wave, results):
            if arrival.id in dispositions:
                report.mismatches.append(
                    f"arrival {arrival.id} disposed twice")
                continue
            if result.ok:
                dispositions[arrival.id] = "ok"
                report.ok += 1
                latencies.append(done - arrival.offset_s)
                if check_solutions:
                    expected = reference.get(
                        (arrival.program, arrival.query))
                    if (expected is not None
                            and result.solutions != expected):
                        report.solutions_ok = False
                        report.mismatches.append(
                            f"arrival {arrival.id} "
                            f"({arrival.program!r}): solutions "
                            f"differ from fault-free reference")
            elif result.error.kind == "Shed":
                dispositions[arrival.id] = "shed"
                report.shed += 1
            else:
                kind = result.error.kind
                dispositions[arrival.id] = kind
                report.errors[kind] = report.errors.get(kind, 0) + 1

    report.elapsed_s = time.monotonic() - start
    report.unsubmitted = report.offered - report.submitted
    report.accounted = len(dispositions)
    if budget_s is None:
        # Without a budget everything offered must have been submitted
        # and disposed exactly once.
        report.accounting_ok = (
            report.accounted == len(arrivals)
            and set(dispositions) == {a.id for a in arrivals}
            and not any("disposed twice" in m for m in report.mismatches))
    else:
        # Time-boxed: exactly-once over what was submitted, and the
        # budget cut must account for the rest with nothing lost.
        report.accounting_ok = (
            report.accounted == report.submitted
            and report.submitted + report.unsubmitted == report.offered
            and not any("disposed twice" in m for m in report.mismatches))
    if report.elapsed_s > 0:
        report.sustained_qps = report.ok / report.elapsed_s
    if report.submitted:
        report.shed_rate = report.shed / report.submitted
    report.p50_latency_s = percentile(latencies, 50)
    report.p99_latency_s = percentile(latencies, 99)
    report.max_latency_s = max(latencies) if latencies else 0.0
    report.health = service.health()
    return report


# -- session soak ------------------------------------------------------------

@dataclass(frozen=True)
class SessionLoadSpec:
    """The deterministic recipe for one session-mix soak.

    ``sessions`` streams run concurrently, advanced round-robin (every
    still-open session steps each round, so steps micro-batch across
    the pool).  ``abandon_rate`` of them are *abandoned* mid-stream —
    their client walks away after ``abandon_after`` 1-3 solutions
    (seeded draw), the lease lapses, and the
    :class:`~repro.serve.session.SessionReaper` must reclaim them.
    Everything is drawn from one ``random.Random(seed)``, so the same
    spec over the same mix offers the identical session workload.
    """

    sessions: int = 12
    seed: int = 0
    abandon_rate: float = 0.25
    max_rounds: int = 200             # runaway guard, not a tuning knob

    def __post_init__(self):
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if not 0.0 <= self.abandon_rate <= 1.0:
            raise ValueError("abandon_rate must be in [0, 1]")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")


@dataclass
class SessionSoakReport:
    """What one session soak observed."""

    sessions: int                   # sessions opened
    rounds: int = 0                 # advance rounds driven
    solutions_streamed: int = 0
    done: int = 0                   # streams that ran to exhaustion
    expired: int = 0                # abandoned sessions reaped
    failed: int = 0                 # streams ending in a QueryError
    planned_abandons: int = 0
    migrations: int = 0             # crashed step attempts survived
    hibernation_spills: int = 0     # resume tokens spilled to disk
    hibernation_wakes: int = 0
    accounted: int = 0              # sessions with exactly one disposition
    accounting_ok: bool = False     # exactly-once + no engine leaked
    solutions_ok: bool = True       # finished streams match the reference
    mismatches: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    p50_step_latency_s: float = 0.0   # wall time per advance step
    p99_step_latency_s: float = 0.0
    health: Optional[object] = None   # final ServiceHealth snapshot


def run_session_soak(service: "SessionService",
                     spec: SessionLoadSpec,
                     mix: Sequence[Tuple[str, str]],
                     check_solutions: bool = True) -> SessionSoakReport:
    """Soak a :class:`~repro.serve.session.SessionService` with a
    concurrent session mix; account for every session exactly once.

    Each session draws its query from ``mix``; abandoned sessions have
    their lease forced to lapse (standing in for a vanished client)
    and must be reclaimed by the reaper — the soak drives
    :meth:`~repro.serve.session.SessionReaper.tick` on a synthetic
    clock so sweeps are deterministic per spec.  The acceptance gate
    mirrors :func:`run_soak`: every opened session ends in exactly one
    disposition (done / failed / expired), finished streams match the
    fault-free reference when ``check_solutions``, and no engine leaks
    — the store and the active-session gauge drain to zero.
    """
    from repro.serve.session import (DONE, EXPIRED, FAILED, SOLUTION,
                                     SessionReaper)

    rng = random.Random(spec.seed)
    draws = [mix[rng.randrange(len(mix))] for _ in range(spec.sessions)]
    abandon_after = {index: rng.randrange(1, 4)
                     for index in range(spec.sessions)
                     if rng.random() < spec.abandon_rate}

    reference: Dict[Tuple[str, str], List[dict]] = {}
    if check_solutions:
        with QueryService(service.service.programs, workers=0,
                          all_solutions=True) as reference_service:
            for program, query in sorted(set(draws)):
                result = reference_service.run((program, query))
                if result.ok:
                    reference[(program, query)] = result.solutions

    report = SessionSoakReport(sessions=spec.sessions,
                               planned_abandons=len(abandon_after))
    sweep_interval = 2.0
    reaper = SessionReaper(service, interval_s=sweep_interval,
                           jitter=0.0, seed=spec.seed,
                           clock=lambda: 0.0)
    session_ids = [service.open(name, query) for name, query in draws]
    slot_of = {sid: index for index, sid in enumerate(session_ids)}
    streams: Dict[int, List[dict]] = {i: [] for i in range(spec.sessions)}
    dispositions: Dict[int, str] = {}
    abandoned: set = set()
    step_latencies: List[float] = []
    open_ids = list(session_ids)
    start = time.monotonic()

    while open_ids and report.rounds < spec.max_rounds:
        report.rounds += 1
        # Abandonments planned for this point in each stream: force
        # the lease to lapse and stop advancing — the reaper, not the
        # driver, must reclaim the session.
        advancing = []
        for session_id in open_ids:
            slot = slot_of[session_id]
            when = abandon_after.get(slot)
            if when is not None and len(streams[slot]) >= when:
                service.expire_lease(session_id)
                abandoned.add(session_id)
            else:
                advancing.append(session_id)
        wave_started = time.monotonic()
        outcomes = service.advance(advancing) if advancing else []
        wave_seconds = time.monotonic() - wave_started
        if advancing:
            step_latencies.extend([wave_seconds / len(advancing)]
                                  * len(advancing))
        still_open = list(abandoned & set(open_ids))
        for session_id, outcome in zip(advancing, outcomes):
            slot = slot_of[session_id]
            report.migrations += max(0, outcome.attempts - 1)
            if outcome.status == SOLUTION:
                streams[slot].append(outcome.solution)
                report.solutions_streamed += 1
                still_open.append(session_id)
            elif outcome.status == DONE:
                dispositions[slot] = "done"
                report.done += 1
                if check_solutions:
                    expected = reference.get(draws[slot])
                    if (expected is not None
                            and (streams[slot] != expected
                                 or outcome.solutions != expected)):
                        report.solutions_ok = False
                        report.mismatches.append(
                            f"session {slot} ({draws[slot][0]!r}): "
                            f"stream differs from reference")
            elif outcome.status == FAILED:
                dispositions[slot] = "failed"
                report.failed += 1
            else:
                assert outcome.status == EXPIRED   # only via races
                dispositions[slot] = "expired"
                report.expired += 1
        # Sweep on the synthetic clock: one sweep per interval of
        # rounds, plus the reaped sessions leave the open set.
        for session_id in reaper.tick(now=report.rounds * 1.0):
            dispositions[slot_of[session_id]] = "expired"
            report.expired += 1
        open_ids = [sid for sid in still_open
                    if slot_of[sid] not in dispositions]

    # Final sweep: anything still leased-out lapsed (abandoned late).
    for session_id in reaper.tick(now=(report.rounds + sweep_interval)
                                  * 2.0):
        dispositions[slot_of[session_id]] = "expired"
        report.expired += 1

    report.elapsed_s = time.monotonic() - start
    report.accounted = len(dispositions)
    counters = service.counters
    settled = (counters["sessions_done"] + counters["sessions_failed"]
               + counters["leases_expired"] + counters["sessions_closed"])
    store = service.store
    report.hibernation_spills = store.spills
    report.hibernation_wakes = store.wakes
    report.accounting_ok = (
        report.accounted == spec.sessions
        and counters["sessions_opened"] == settled
        and service.active_sessions == 0
        and len(store) == 0)
    if not report.accounting_ok:
        report.mismatches.append(
            f"accounting: {report.accounted}/{spec.sessions} disposed, "
            f"opened {counters['sessions_opened']} vs settled {settled}, "
            f"active {service.active_sessions}, store {len(store)}")
    report.p50_step_latency_s = percentile(step_latencies, 50)
    report.p99_step_latency_s = percentile(step_latencies, 99)
    report.health = service.health()
    return report
