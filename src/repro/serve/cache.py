"""The compile-once image cache.

The host toolchain (parse → normalize → compile → link,
:mod:`repro.compiler`) costs milliseconds per program — about as long
as a short suite query takes to *run* — and the seed
:func:`repro.api.run_query` paid it on every call.  The cache keys a
:class:`~repro.compiler.linker.LinkedImage` by a content hash of the
program source, the query text and the compiler options, so each
distinct (program, query) pair is compiled and linked exactly once per
process tree: :func:`repro.api.run_query`, the bench
:class:`~repro.bench.runner.SuiteRunner` and the query service
(:mod:`repro.serve.service`) all route through one process-global
instance, and service workers receive the parent's images pickled
rather than recompiling.

Images are immutable once linked — ``install`` copies the code list
and the handler table into the machine — so one cached image may back
any number of machines; they share the image's append-only
:class:`~repro.core.symbols.SymbolTable`.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.compiler.linker import LinkedImage, Linker
from repro.core.symbols import SymbolTable


@dataclass
class ImageCacheStats:
    """Hit/miss/eviction counters for one cache.

    ``bytes_cached`` is a gauge, not a counter: the serialized size of
    everything currently resident (the same pickled form the query
    service ships to workers, so it tracks real IPC/memory weight).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_cached: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.evictions = 0
        self.bytes_cached = 0


def image_key(program_text: str, query_text: str,
              io_mode: str = "stub") -> str:
    """Content hash identifying one compiled image.

    Covers everything the compile+link pipeline reads: the program
    source, the query text (compiled into the hidden ``'$query'/0``
    driver) and the linker options (today just ``io_mode``).
    """
    digest = hashlib.sha256()
    for part in (io_mode, program_text, query_text):
        encoded = part.encode("utf-8")
        digest.update(str(len(encoded)).encode("ascii"))
        digest.update(b":")
        digest.update(encoded)
    return digest.hexdigest()


class ImageCache:
    """LRU cache of linked images keyed by :func:`image_key`.

    Thread-safe: the query service's result collector and user code
    may compile concurrently.  ``max_entries`` bounds the cache by
    count; ``max_bytes`` (optional) additionally bounds it by the
    serialized size of the resident images — each image holds its code
    list and symbol table, tens of kilobytes for suite-sized programs,
    and the byte budget is what keeps a long-lived service hosting many
    programs from growing without bound.  Eviction is LRU under either
    pressure, except that the entry just inserted is never evicted: a
    compile that was just paid for is always served at least once, even
    if the image alone exceeds the whole byte budget.
    """

    def __init__(self, max_entries: int = 128,
                 max_bytes: Optional[int] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = ImageCacheStats()
        self._images: "OrderedDict[str, LinkedImage]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._eviction_listeners: List[Callable[[str], None]] = []

    def add_eviction_listener(self,
                              listener: Callable[[str], None]) -> None:
        """Register ``listener(key)`` to be called whenever an entry
        leaves the cache (LRU/byte-budget eviction or :meth:`clear`).

        The query service uses this to drop its derived per-key state —
        pickled payloads, shared-memory segments, worker shipped-image
        records — in step with the cache, so nothing derived from an
        image outlives the image.  Listeners are called *outside* the
        cache lock (the lock is not reentrant and a listener may well
        call back into the cache); exceptions are swallowed — eviction
        is bookkeeping and must never fail a ``get``.
        """
        with self._lock:
            self._eviction_listeners.append(listener)

    def remove_eviction_listener(self,
                                 listener: Callable[[str], None]) -> None:
        """Unregister ``listener``; unknown listeners are ignored."""
        with self._lock:
            try:
                self._eviction_listeners.remove(listener)
            except ValueError:
                pass

    def _notify_evictions(self, keys: List[str]) -> None:
        """Fire the eviction listeners (must be called with the lock
        released — see :meth:`add_eviction_listener`)."""
        if not keys:
            return
        with self._lock:
            listeners = list(self._eviction_listeners)
        for key in keys:
            for listener in listeners:
                try:
                    listener(key)
                except Exception:
                    pass

    def get(self, program_text: str, query_text: str,
            io_mode: str = "stub") -> LinkedImage:
        """The image for ``(program, query, options)``; compiled on the
        first request, served from the cache afterwards."""
        key = image_key(program_text, query_text, io_mode)
        # Compile under the lock: concurrent misses on one key must
        # yield one compile and one image, not a compile per caller —
        # the machines served from the cache share the image's symbol
        # table, and callers comparing images by identity (or counting
        # Linker.links_performed) rely on get() being atomic.  Linking
        # is milliseconds; holding the lock across it briefly serialises
        # compiles of *different* keys, which only ever happens on the
        # cold first request for each.
        with self._lock:
            image = self._images.get(key)
            if image is not None:
                self._images.move_to_end(key)
                self.stats.hits += 1
                return image
            image = Linker(symbols=SymbolTable(), io_mode=io_mode).link(
                program_text, query_text)
            self.stats.misses += 1
            self._images[key] = image
            if self.max_bytes is not None:
                # Size by pickle: it is the exact form the query
                # service ships over IPC, and measuring it here means
                # the budget tracks real shipping weight, not a guess.
                self._sizes[key] = len(
                    pickle.dumps(image, pickle.HIGHEST_PROTOCOL))
                self.stats.bytes_cached += self._sizes[key]
            evicted = self._evict_over_budget()
        self._notify_evictions(evicted)
        return image

    def _evict_over_budget(self) -> List[str]:
        """Drop LRU entries until count and byte budgets hold (lock
        held by the caller); returns the evicted keys.  The newest
        entry is never evicted."""
        evicted: List[str] = []
        while len(self._images) > self.max_entries:
            evicted.append(self._evict_oldest())
        if self.max_bytes is not None:
            while (self.stats.bytes_cached > self.max_bytes
                   and len(self._images) > 1):
                evicted.append(self._evict_oldest())
        return evicted

    def _evict_oldest(self) -> str:
        key, _ = self._images.popitem(last=False)
        self.stats.bytes_cached -= self._sizes.pop(key, 0)
        self.stats.evictions += 1
        return key

    def lookup(self, key: str) -> Optional[LinkedImage]:
        """The cached image under a precomputed ``key``, or ``None``."""
        with self._lock:
            image = self._images.get(key)
            if image is not None:
                self._images.move_to_end(key)
            return image

    def clear(self) -> None:
        """Drop every cached image and zero the counters (eviction
        listeners fire for every dropped key)."""
        with self._lock:
            dropped = list(self._images)
            self._images.clear()
            self._sizes.clear()
            self.stats.reset()
        self._notify_evictions(dropped)

    def __len__(self) -> int:
        return len(self._images)

    def __contains__(self, key: str) -> bool:
        return key in self._images


#: the process-global cache every compile path shares.
_default_cache: Optional[ImageCache] = None
_default_lock = threading.Lock()


def default_image_cache() -> ImageCache:
    """The process-global :class:`ImageCache` (created on first use)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = ImageCache()
        return _default_cache
