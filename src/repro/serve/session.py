"""Fault-tolerant sessions: leases, crash migration, hibernation.

A *session* is a long-lived query stream — open it once, pull one
solution at a time, close it (or abandon it and let the lease lapse).
:class:`SessionService` provides that contract on top of the
:class:`~repro.serve.service.QueryService` data plane:

- **streaming** — every :meth:`~SessionService.next_solution` call is
  one :meth:`~repro.serve.service.QueryService.run_steps` step: the
  engine runs in stop-at-solution mode, pauses at the next fresh
  answer, and ships its full checkpoint back to the parent as the
  resume token for the following call.  The parent is authoritative:
  no worker owns a session between steps, which is what makes
  migration trivial.
- **crash migration** — a step rides the service's retry-with-resume
  machinery.  If the worker dies mid-step the service retries on
  another worker from the step's last mid-run checkpoint (or from the
  resume token it started from — never from scratch, which would
  re-find solution #1).  The session observes nothing but
  ``attempts > 1``; solutions and final ``RunStats`` stay bit-identical
  to an uninterrupted run.
- **leases** — each session carries a client lease
  (:class:`~repro.serve.overload.LeasePolicy`), renewed implicitly by
  every step.  A lapsed lease marks the session an orphan; the
  :class:`SessionReaper` (or any :meth:`~SessionService.reap` call)
  reclaims its engine state instead of leaking it forever.
- **hibernation** — between steps the resume token lives in an
  :class:`~repro.serve.engine.EngineStore`, a byte-budgeted LRU that
  spills cold sessions' checkpoints to disk (content-hash verified on
  wake), bounding parent RSS no matter how many sessions sit idle.

Accounting is exact: every opened session ends in exactly one of
*done*, *failed*, *closed* or *reaped*, and at :meth:`~SessionService.
close` the store is empty — an imbalance means a leaked engine and the
soak harness (:func:`repro.serve.loadgen.run_session_soak`) gates on
it.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import KCMError
from repro.serve.chaos import ChaosPolicy
from repro.serve.engine import EngineStore
from repro.serve.overload import LeasePolicy
from repro.serve.retry import RetryPolicy
from repro.serve.service import (QueryError, QueryService, ServiceHealth,
                                 ServiceResult)


class SessionError(KCMError):
    """Base class for session-layer failures."""


class UnknownSession(SessionError):
    """The session id names no open session (never opened, already
    finished, closed, or reaped)."""


class SessionExpired(SessionError):
    """The session's lease lapsed and the reaper (or an access check)
    reclaimed it; its engine state is gone."""


class SessionStepFailed(SessionError):
    """A session step finished with a final :class:`~repro.serve.
    service.QueryError`; the session is closed and its engine
    reclaimed."""

    def __init__(self, session_id: str, error: QueryError):
        super().__init__(f"session {session_id}: {error}")
        self.session_id = session_id
        self.error = error


#: ``StepOutcome.status`` values: the per-step verdicts of
#: :meth:`SessionService.advance`.
SOLUTION = "solution"   # a fresh solution; the stream continues
DONE = "done"           # search exhausted; final stats attached
EXPIRED = "expired"     # lease lapsed before the step; session reaped
FAILED = "error"        # final QueryError; session closed


@dataclass
class StepOutcome:
    """One session's result from an :meth:`SessionService.advance`
    round."""

    session_id: str
    status: str                       # SOLUTION | DONE | EXPIRED | FAILED
    solution: Optional[dict] = None   # the fresh binding set (SOLUTION)
    solutions: List[dict] = field(default_factory=list)  # cumulative
    stats: Optional[object] = None    # final RunStats (DONE only)
    error: Optional[QueryError] = None
    migrated: bool = False            # step survived >= 1 worker crash
    attempts: int = 1
    worker: int = -1


@dataclass
class _Session:
    """Parent-side record of one open session (the resume-token bytes
    live in the :class:`~repro.serve.engine.EngineStore`, not here)."""

    session_id: str
    program: str
    query: str
    lease_expires: float
    started: bool = False             # a first step has run
    streamed: int = 0                 # solutions delivered so far
    migrations: int = 0               # crashed attempts survived
    worker: int = -1                  # worker that served the last step
    #: the search exhausted on a step that still carried a fresh
    #: solution (possible: the last answer and exhaustion share an
    #: instruction boundary, e.g. a determinate single-solution query).
    #: The fresh solution was delivered as SOLUTION; the next advance
    #: delivers DONE from these parked finals without running a step.
    finished: bool = False
    final_solutions: List[dict] = field(default_factory=list)
    final_stats: Optional[object] = None


class SessionService:
    """First-class sessions over a :class:`~repro.serve.service.
    QueryService` (docs/SESSIONS.md).

    ``chaos`` is held *here* and reseeded per advance round —
    :class:`~repro.serve.chaos.ChaosPolicy` plans are pure functions of
    ``(seed, slot, attempt)``, and every round is a fresh single-slot
    batch, so without reseeding each round would replay the identical
    plan.  ``clock`` is injectable so the lease tests drive time
    explicitly.  Remaining keyword arguments go to the underlying
    :class:`~repro.serve.service.QueryService`.
    """

    def __init__(self, programs: Dict[str, str],
                 workers: int = 0,
                 lease: Optional[LeasePolicy] = None,
                 store: Optional[EngineStore] = None,
                 chaos: Optional[ChaosPolicy] = None,
                 retry: Optional[RetryPolicy] = None,
                 checkpoint_every: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 **service_kwargs):
        self.lease = lease if lease is not None else LeasePolicy()
        self.store = store if store is not None else EngineStore()
        self.chaos = chaos
        self.retry = retry
        self.checkpoint_every = checkpoint_every
        self.timeout_s = timeout_s
        self.clock = clock
        self.service = QueryService(programs, workers=workers,
                                    **service_kwargs)
        self._sessions: Dict[str, _Session] = {}
        self._next_id = 0
        self._round = 0
        self._closed = False
        self._counters = {"migrations": 0, "leases_expired": 0,
                          "sessions_opened": 0, "sessions_done": 0,
                          "sessions_failed": 0, "sessions_closed": 0}

    # -- lifecycle -------------------------------------------------------------

    def open(self, program: str, query: str) -> str:
        """Open a session; returns its id.  Raises :class:`SessionError`
        when ``max_sessions`` is reached (admission control — shed the
        open, not a later step)."""
        if self._closed:
            raise RuntimeError("session service is closed")
        limit = self.lease.max_sessions
        if limit is not None and len(self._sessions) >= limit:
            raise SessionError(
                f"session limit reached ({limit} open)")
        self._next_id += 1
        session_id = f"s{self._next_id:06d}"
        self._sessions[session_id] = _Session(
            session_id=session_id, program=program, query=query,
            lease_expires=self.clock() + self.lease.ttl_s)
        self._counters["sessions_opened"] += 1
        return session_id

    def close_session(self, session_id: str) -> None:
        """Release a session and its engine state (idempotent on
        already-finished ids via :class:`UnknownSession`)."""
        record = self._sessions.pop(session_id, None)
        if record is None:
            raise UnknownSession(f"no open session {session_id!r}")
        self.store.pop(session_id)
        self._counters["sessions_closed"] += 1

    def close(self) -> None:
        """Release every session, the store and the service.
        Idempotent."""
        if self._closed:
            return
        self._closed = True
        for session_id in list(self._sessions):
            self._sessions.pop(session_id)
            self.store.pop(session_id)
        self.store.close()
        self.service.close()

    def __enter__(self) -> "SessionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- leases ----------------------------------------------------------------

    def renew(self, session_id: str,
              now: Optional[float] = None) -> float:
        """Extend a session's lease; returns the new expiry."""
        record = self._record(session_id)
        current = self.clock() if now is None else now
        if current >= record.lease_expires:
            self._reap_one(record)
            raise SessionExpired(
                f"session {session_id} lease lapsed; reclaimed")
        record.lease_expires = current + self.lease.ttl_s
        return record.lease_expires

    def expire_lease(self, session_id: str) -> None:
        """Force a session's lease into the past (test/chaos hook: the
        next access or reap sweep reclaims it)."""
        self._record(session_id).lease_expires = float("-inf")

    def reap(self, now: Optional[float] = None) -> List[str]:
        """Reclaim every session whose lease has lapsed; returns their
        ids.  Called by the :class:`SessionReaper` and safe to call
        directly any time."""
        current = self.clock() if now is None else now
        reaped = [record for record in self._sessions.values()
                  if current >= record.lease_expires]
        for record in reaped:
            self._reap_one(record)
        return [record.session_id for record in reaped]

    def _reap_one(self, record: _Session) -> None:
        self._sessions.pop(record.session_id, None)
        self.store.pop(record.session_id)
        self._counters["leases_expired"] += 1

    # -- stepping --------------------------------------------------------------

    def next_solution(self, session_id: str) -> Optional[dict]:
        """Pull the session's next solution; ``None`` when the search
        is exhausted (the session auto-closes).  Raises
        :class:`SessionExpired` / :class:`SessionStepFailed` /
        :class:`UnknownSession`."""
        outcome = self.advance([session_id])[0]
        if outcome.status == EXPIRED:
            raise SessionExpired(
                f"session {session_id} lease lapsed; reclaimed")
        if outcome.status == FAILED:
            raise SessionStepFailed(session_id, outcome.error)
        return outcome.solution

    def advance(self, session_ids: Sequence[str]) -> List[StepOutcome]:
        """Advance a batch of sessions one solution each.

        One :meth:`~repro.serve.service.QueryService.run_steps` round:
        the steps micro-batch across the worker pool together.  Expired
        sessions are reaped up front and reported ``EXPIRED`` without
        consuming capacity; each surviving step renews its session's
        lease.
        """
        if self._closed:
            raise RuntimeError("session service is closed")
        if len(set(session_ids)) != len(session_ids):
            raise ValueError("duplicate session ids in one advance round")
        now = self.clock()
        outcomes: List[Optional[StepOutcome]] = [None] * len(session_ids)
        live: List[_Session] = []
        live_slots: List[int] = []
        for slot, session_id in enumerate(session_ids):
            record = self._record(session_id)
            if now >= record.lease_expires:
                self._reap_one(record)
                outcomes[slot] = StepOutcome(session_id=session_id,
                                             status=EXPIRED)
                continue
            if record.finished:
                outcomes[slot] = self._finish(record)
                continue
            live.append(record)
            live_slots.append(slot)
        if live:
            results = self._run_round(live)
            for slot, record, result in zip(live_slots, live, results):
                outcomes[slot] = self._absorb(record, result)
        return outcomes  # type: ignore[return-value]  # every slot filled

    def drain(self, session_id: str) -> StepOutcome:
        """Advance one session until its search finishes; returns the
        terminal :class:`StepOutcome` (``DONE`` with final stats, or the
        first non-solution verdict)."""
        while True:
            outcome = self.advance([session_id])[0]
            if outcome.status != SOLUTION:
                return outcome

    def _run_round(self, records: Sequence[_Session]
                   ) -> List[ServiceResult]:
        steps = []
        for record in records:
            payload = (self.store.get(record.session_id)
                       if record.started else None)
            steps.append((record.program, record.query, payload))
        self._round += 1
        chaos = self.chaos
        if chaos is not None:
            # Reseed per round: plans are pure in (seed, slot, attempt)
            # and every round restarts at slot 0 / attempt 1, so a
            # fixed seed would replay identical mischief forever.
            chaos = dataclasses.replace(
                chaos, seed=chaos.seed + self._round)
        return self.service.run_steps(
            steps, timeout_s=self.timeout_s, retry=self.retry,
            checkpoint_every=self.checkpoint_every, chaos=chaos)

    def _absorb(self, record: _Session,
                result: ServiceResult) -> StepOutcome:
        """Fold one step result into the session record."""
        crashed_attempts = max(0, result.attempts - 1)
        if not result.ok:
            self._sessions.pop(record.session_id, None)
            self.store.pop(record.session_id)
            self._counters["sessions_failed"] += 1
            return StepOutcome(session_id=record.session_id,
                               status=FAILED, error=result.error,
                               attempts=result.attempts,
                               worker=result.worker)
        record.lease_expires = self.clock() + self.lease.ttl_s
        record.started = True
        record.worker = result.worker
        record.migrations += crashed_attempts
        self._counters["migrations"] += crashed_attempts
        fresh = result.solutions[record.streamed:]
        if result.paused:
            record.streamed = len(result.solutions)
            self.store.put(record.session_id, result.session_payload)
            return StepOutcome(
                session_id=record.session_id, status=SOLUTION,
                solution=fresh[-1] if fresh else None,
                solutions=list(result.solutions),
                migrated=crashed_attempts > 0,
                attempts=result.attempts, worker=result.worker)
        # Search finished: the terminal step's solutions/stats are
        # those of the equivalent uninterrupted all-solutions run.
        self.store.pop(record.session_id)
        if fresh:
            # The last answer coincided with exhaustion: deliver it as
            # a SOLUTION now and park the finals — the next advance
            # reports DONE so the stream's contract (SOLUTION carries
            # exactly one fresh answer, DONE carries none) holds.
            record.streamed = len(result.solutions)
            record.finished = True
            record.final_solutions = list(result.solutions)
            record.final_stats = result.stats
            return StepOutcome(
                session_id=record.session_id, status=SOLUTION,
                solution=fresh[-1], solutions=list(result.solutions),
                migrated=crashed_attempts > 0,
                attempts=result.attempts, worker=result.worker)
        self._sessions.pop(record.session_id, None)
        self._counters["sessions_done"] += 1
        return StepOutcome(
            session_id=record.session_id, status=DONE,
            solutions=list(result.solutions), stats=result.stats,
            migrated=crashed_attempts > 0,
            attempts=result.attempts, worker=result.worker)

    def _finish(self, record: _Session) -> StepOutcome:
        """Deliver the parked DONE of a session whose last solution
        coincided with exhaustion (see :class:`_Session.finished`)."""
        self._sessions.pop(record.session_id, None)
        self._counters["sessions_done"] += 1
        return StepOutcome(
            session_id=record.session_id, status=DONE,
            solutions=list(record.final_solutions),
            stats=record.final_stats, worker=record.worker)

    # -- introspection ---------------------------------------------------------

    def health(self) -> ServiceHealth:
        """The underlying service's health with the session-layer
        gauges filled in."""
        health = self.service.health()
        health.active_sessions = len(self._sessions)
        health.hibernated_engines = self.store.hibernated_count
        health.migrations = self._counters["migrations"]
        health.leases_expired = self._counters["leases_expired"]
        return health

    @property
    def counters(self) -> Dict[str, int]:
        """Session disposition counters (exactly-once accounting:
        ``opened == done + failed + closed + leases_expired`` once all
        traffic has drained)."""
        return dict(self._counters)

    def session(self, session_id: str) -> _Session:
        """The (mutable) record for one open session — read-only use."""
        return self._record(session_id)

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    def _record(self, session_id: str) -> _Session:
        record = self._sessions.get(session_id)
        if record is None:
            raise UnknownSession(f"no open session {session_id!r}")
        return record


class SessionReaper:
    """Periodic orphan collection for a :class:`SessionService`.

    Cooperative, not threaded: call :meth:`tick` from the serving loop
    (or a cron-like driver) and the reaper sweeps at most once per
    ``interval_s``, with a seeded jitter so many reapers sharing a
    deployment don't sweep in lockstep.  Every sweep delegates to
    :meth:`SessionService.reap`, which records reclaims in the
    ``leases_expired`` counter.
    """

    def __init__(self, service: SessionService,
                 interval_s: float = 5.0,
                 jitter: float = 0.2,
                 seed: int = 0,
                 clock: Optional[Callable[[], float]] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.service = service
        self.interval_s = interval_s
        self.jitter = jitter
        self.clock = clock if clock is not None else service.clock
        self._rng = random.Random(seed)
        self._next_sweep = self.clock() + self._period()
        self.sweeps = 0
        self.reaped_total = 0

    def _period(self) -> float:
        spread = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return self.interval_s * spread

    def tick(self, now: Optional[float] = None) -> List[str]:
        """Sweep if the interval has elapsed; returns the reaped ids
        (empty when it isn't time yet)."""
        current = self.clock() if now is None else now
        if current < self._next_sweep:
            return []
        self._next_sweep = current + self._period()
        reaped = self.service.reap(current)
        self.sweeps += 1
        self.reaped_total += len(reaped)
        return reaped
