"""Overload robustness for the query service.

Three mechanisms that keep one misbehaving query, one crash-looping
worker, or one expired deadline from degrading everyone else's service
(docs/RESILIENCE.md §7):

**Deadline abandonment** (:class:`DeadlineAbandoned`) — per-query host
deadlines travel *into* the worker as task options; the engine pool
folds a cycle-grid stop check into :meth:`~repro.core.machine.Machine.
run_sliced` and raises :class:`DeadlineAbandoned` at the first
boundary past the deadline.  The worker reports a typed transient
error and stays alive — an expired query costs the cycles to the next
check, not a worker kill, a respawn and a cold engine pool.

**Poison-query quarantine** (:class:`QuarantinePolicy` +
:class:`QuarantineBreaker`) — a per-query-key circuit breaker.  A
query whose attempts repeatedly kill workers or exhaust host budgets
(the *strike kinds*) accumulates strikes; at ``threshold`` strikes the
breaker opens and the service fails the query — and every later
submission of the same key — immediately with
``QueryError(kind="poisoned")`` instead of feeding it more workers.
With ``cooldown_s`` the breaker half-opens after a quiet period and
lets one attempt probe whether the poison was environmental.

**Crash-loop supervision** (:class:`SupervisorPolicy` +
:class:`WorkerSupervisor`) — a restart budget per worker slot with
deterministic exponential backoff between respawns.  A worker that
keeps dying is restarted at growing intervals and finally *retired*;
when every slot is retired the pool has collapsed and the service
enters **degraded** mode, routing the remaining work through the
parent's in-process fallback pool (correct, just not parallel) and
reporting ``degraded=True`` in :class:`~repro.serve.service.
ServiceHealth`.

Everything here is a pure function of its inputs plus explicitly
passed clock values, so the chaos tests can drive each breaker and
budget deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

#: the :class:`~repro.serve.service.QueryError` kind a quarantined
#: query fails with.  Lowercase by design: it names a serving-layer
#: *verdict* about the query, not an exception class or budget event.
POISONED = "poisoned"

#: failure kinds that count as strikes by default: the attempt killed
#: its worker or exhausted its host wall budget.
DEFAULT_STRIKE_KINDS: FrozenSet[str] = frozenset(
    {"WorkerCrashed", "WallTimeout"})


class DeadlineAbandoned(Exception):
    """A query's host deadline expired mid-run and the engine abandoned
    it cooperatively at a cycle-grid stop check.

    ``kind`` is the :class:`~repro.serve.service.QueryError` kind the
    deadline was dispatched under (``"WallTimeout"`` for a per-query
    budget, ``"DeadlineExceeded"`` when the batch deadline was the
    tighter bound); ``cycles`` is the simulated cycle count at the
    abandonment boundary.
    """

    def __init__(self, kind: str, cycles: int):
        super().__init__(
            f"deadline expired mid-run; abandoned cooperatively "
            f"at cycle {cycles}")
        self.kind = kind
        self.cycles = cycles


# -- poison-query quarantine -------------------------------------------------

@dataclass(frozen=True)
class QuarantinePolicy:
    """When repeated failures of one query key open its breaker.

    ``threshold`` strikes of a ``strike_kinds`` failure open the
    breaker.  ``cooldown_s=None`` keeps it open for the service's
    lifetime (reset by hand via :meth:`QuarantineBreaker.reset`); a
    finite cooldown half-opens the breaker after that many quiet
    seconds — the strike count restarts, so one clean probe attempt
    closes it and ``threshold`` fresh failures re-open it.
    """

    threshold: int = 3
    cooldown_s: Optional[float] = None
    strike_kinds: FrozenSet[str] = field(default=DEFAULT_STRIKE_KINDS)

    def __post_init__(self):
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.cooldown_s is not None and self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


class QuarantineBreaker:
    """The per-query-key circuit breaker a :class:`QuarantinePolicy`
    configures.

    Keys are image keys (:func:`repro.serve.cache.image_key`), so the
    breaker survives across batches and across retries: state is per
    *query*, not per submission.  All methods take an optional ``now``
    (monotonic seconds) so tests can drive the cooldown clock.

    Micro-batched dispatch keeps strike attribution sound: a chunk
    coalesces only same-key tasks, and when a worker dies the service
    records **one** strike — for the task the worker was actually
    running.  The chunk-mates queued behind it fail with the same kind
    but without striking (``_dispose_failure(strike=False)``): they
    share the head's key, so striking them too would charge one poison
    event ``len(chunk)`` times and open the breaker on the first death
    regardless of the configured threshold.
    """

    def __init__(self, policy: QuarantinePolicy):
        self.policy = policy
        self._strikes: Dict[str, int] = {}
        self._opened_at: Dict[str, float] = {}

    def record(self, key: str, kind: str,
               now: Optional[float] = None) -> bool:
        """Record a failure of ``kind`` against ``key``; returns
        ``True`` when this strike just opened the breaker."""
        if kind not in self.policy.strike_kinds:
            return False
        strikes = self._strikes.get(key, 0) + 1
        self._strikes[key] = strikes
        if strikes >= self.policy.threshold and key not in self._opened_at:
            self._opened_at[key] = (time.monotonic()
                                    if now is None else now)
            return True
        return False

    def quarantined(self, key: str, now: Optional[float] = None) -> bool:
        """Whether ``key`` is currently quarantined (the cooldown, if
        configured, half-opens an expired breaker as a side effect)."""
        opened_at = self._opened_at.get(key)
        if opened_at is None:
            return False
        cooldown = self.policy.cooldown_s
        if cooldown is not None:
            current = time.monotonic() if now is None else now
            if current - opened_at >= cooldown:
                # Half-open: forget the strikes and let one attempt
                # probe; fresh failures walk back to the threshold.
                del self._opened_at[key]
                self._strikes.pop(key, None)
                return False
        return True

    def strikes(self, key: str) -> int:
        """Strikes recorded against ``key`` since it last (half-)opened."""
        return self._strikes.get(key, 0)

    def reset(self, key: Optional[str] = None) -> None:
        """Forget one key's state (or everything with no key)."""
        if key is None:
            self._strikes.clear()
            self._opened_at.clear()
        else:
            self._strikes.pop(key, None)
            self._opened_at.pop(key, None)

    @property
    def open_keys(self) -> FrozenSet[str]:
        """The keys whose breaker is currently open."""
        return frozenset(self._opened_at)


# -- session leases ----------------------------------------------------------

@dataclass(frozen=True)
class LeasePolicy:
    """Lease-based session ownership (docs/SESSIONS.md).

    Every open session carries a client lease of ``ttl_s`` seconds,
    renewed implicitly by each ``next_solution`` call (and explicitly
    via ``renew``).  A session whose lease lapses is an *orphan* — its
    client crashed, hung or walked away — and the
    :class:`~repro.serve.session.SessionReaper` expires it, reclaiming
    the paused engine instead of leaking it forever.  ``max_sessions``
    bounds how many sessions may be open at once (admission control
    for the session layer; ``None`` is unbounded).
    """

    ttl_s: float = 30.0
    max_sessions: Optional[int] = None

    def __post_init__(self):
        if self.ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")


# -- crash-loop supervision --------------------------------------------------

@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart budget and backoff for crash-looping workers.

    ``max_respawns`` bounds restarts per worker slot over the service's
    lifetime; the ``n``-th respawn of a slot waits
    ``backoff_base_s * backoff_multiplier**(n-1)`` capped at
    ``backoff_max_s`` — deterministic (no jitter: worker slots are few
    and their backoffs need to be predictable in tests).  A worker past
    its budget is *retired*; when every slot is retired the pool has
    collapsed and the service degrades to the local fallback path.
    """

    max_respawns: int = 5
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0

    def __post_init__(self):
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoffs must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_s(self, respawn_number: int) -> float:
        """Delay before respawn number ``respawn_number`` (1-based) of
        one worker slot.  Monotone non-decreasing, capped."""
        return min(self.backoff_max_s,
                   self.backoff_base_s
                   * self.backoff_multiplier ** (respawn_number - 1))


class WorkerSupervisor:
    """Tracks each worker slot's restart budget for the service."""

    def __init__(self, policy: SupervisorPolicy):
        self.policy = policy
        self._respawns: Dict[int, int] = {}
        self._retired: set = set()

    def on_death(self, worker_id: int) -> Optional[float]:
        """A worker died (or was killed): charge its budget.

        Returns the backoff delay (seconds) to wait before respawning
        it, or ``None`` when the budget is exhausted and the slot is
        now retired.
        """
        if worker_id in self._retired:
            return None
        count = self._respawns.get(worker_id, 0) + 1
        if count > self.policy.max_respawns:
            self._retired.add(worker_id)
            return None
        self._respawns[worker_id] = count
        return self.policy.backoff_s(count)

    def retired(self, worker_id: int) -> bool:
        """Whether ``worker_id`` has exhausted its restart budget."""
        return worker_id in self._retired

    @property
    def retired_count(self) -> int:
        return len(self._retired)

    def respawns(self, worker_id: int) -> int:
        """Respawns charged against ``worker_id`` so far."""
        return self._respawns.get(worker_id, 0)
