"""Query serving: compile-once image cache + warm multiprocess pool.

See docs/SERVING.md for the architecture, the spawn-safety rules and
the benchmark methodology, docs/RESILIENCE.md for the failure
semantics (checkpoint/resume across worker death, retry with
deterministic backoff, admission control, poison-query quarantine,
crash-loop supervision and the seeded chaos harness), and
docs/SESSIONS.md for the session layer: first-class logic engines,
lease-based ownership, crash migration and hibernation.
"""

from repro.serve.cache import (
    ImageCache, ImageCacheStats, default_image_cache, image_key,
)
from repro.serve.chaos import (
    ChaosPlan, ChaosPolicy, verify_chaos_invariant,
    verify_session_chaos_invariant,
)
from repro.serve.engine import (
    Engine, EngineSnapshot, EngineStore, EngineStoreCorrupt,
)
from repro.serve.loadgen import (
    Arrival, LoadSpec, OpenLoopGenerator, SessionLoadSpec,
    SessionSoakReport, SoakReport, run_session_soak, run_soak,
)
from repro.serve.overload import (
    POISONED, DeadlineAbandoned, LeasePolicy, QuarantineBreaker,
    QuarantinePolicy, SupervisorPolicy, WorkerSupervisor,
)
from repro.serve.retry import (
    RETRYABLE_KINDS, TRANSIENT_KINDS, RetryPolicy, is_transient,
)
from repro.serve.service import (
    DEFAULT_PROGRAM, EnginePool, QueryError, QueryService, ServiceHealth,
    ServiceResult,
)
from repro.serve.session import (
    SessionError, SessionExpired, SessionReaper, SessionService,
    SessionStepFailed, StepOutcome, UnknownSession,
)

__all__ = [
    "DEFAULT_PROGRAM",
    "POISONED",
    "Arrival",
    "ChaosPlan",
    "ChaosPolicy",
    "DeadlineAbandoned",
    "Engine",
    "EnginePool",
    "EngineSnapshot",
    "EngineStore",
    "EngineStoreCorrupt",
    "ImageCache",
    "ImageCacheStats",
    "LeasePolicy",
    "LoadSpec",
    "OpenLoopGenerator",
    "QuarantineBreaker",
    "QuarantinePolicy",
    "QueryError",
    "QueryService",
    "RETRYABLE_KINDS",
    "RetryPolicy",
    "ServiceHealth",
    "ServiceResult",
    "SessionError",
    "SessionExpired",
    "SessionLoadSpec",
    "SessionReaper",
    "SessionService",
    "SessionSoakReport",
    "SessionStepFailed",
    "SoakReport",
    "StepOutcome",
    "SupervisorPolicy",
    "TRANSIENT_KINDS",
    "UnknownSession",
    "WorkerSupervisor",
    "default_image_cache",
    "image_key",
    "is_transient",
    "run_session_soak",
    "run_soak",
    "verify_chaos_invariant",
    "verify_session_chaos_invariant",
]
