"""Query serving: compile-once image cache + warm multiprocess pool.

See docs/SERVING.md for the architecture, the spawn-safety rules and
the benchmark methodology, and docs/RESILIENCE.md for the failure
semantics: checkpoint/resume across worker death, retry with
deterministic backoff, admission control, poison-query quarantine,
crash-loop supervision and the seeded chaos harness.
"""

from repro.serve.cache import (
    ImageCache, ImageCacheStats, default_image_cache, image_key,
)
from repro.serve.chaos import (
    ChaosPlan, ChaosPolicy, verify_chaos_invariant,
)
from repro.serve.loadgen import (
    Arrival, LoadSpec, OpenLoopGenerator, SoakReport, run_soak,
)
from repro.serve.overload import (
    POISONED, DeadlineAbandoned, QuarantineBreaker, QuarantinePolicy,
    SupervisorPolicy, WorkerSupervisor,
)
from repro.serve.retry import (
    RETRYABLE_KINDS, TRANSIENT_KINDS, RetryPolicy, is_transient,
)
from repro.serve.service import (
    DEFAULT_PROGRAM, EnginePool, QueryError, QueryService, ServiceHealth,
    ServiceResult,
)

__all__ = [
    "DEFAULT_PROGRAM",
    "POISONED",
    "Arrival",
    "ChaosPlan",
    "ChaosPolicy",
    "DeadlineAbandoned",
    "EnginePool",
    "ImageCache",
    "ImageCacheStats",
    "LoadSpec",
    "OpenLoopGenerator",
    "QuarantineBreaker",
    "QuarantinePolicy",
    "QueryError",
    "QueryService",
    "RETRYABLE_KINDS",
    "RetryPolicy",
    "ServiceHealth",
    "ServiceResult",
    "SoakReport",
    "SupervisorPolicy",
    "TRANSIENT_KINDS",
    "WorkerSupervisor",
    "default_image_cache",
    "image_key",
    "is_transient",
    "run_soak",
    "verify_chaos_invariant",
]
