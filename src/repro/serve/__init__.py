"""Query serving: compile-once image cache + warm multiprocess pool.

See docs/SERVING.md for the architecture, the spawn-safety rules and
the benchmark methodology.
"""

from repro.serve.cache import (
    ImageCache, ImageCacheStats, default_image_cache, image_key,
)
from repro.serve.service import (
    DEFAULT_PROGRAM, EnginePool, QueryError, QueryService, ServiceResult,
)

__all__ = [
    "DEFAULT_PROGRAM",
    "EnginePool",
    "ImageCache",
    "ImageCacheStats",
    "QueryError",
    "QueryService",
    "ServiceResult",
    "default_image_cache",
    "image_key",
]
