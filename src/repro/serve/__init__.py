"""Query serving: compile-once image cache + warm multiprocess pool.

See docs/SERVING.md for the architecture, the spawn-safety rules and
the benchmark methodology, and docs/RESILIENCE.md for the failure
semantics: checkpoint/resume across worker death, retry with
deterministic backoff, admission control and the seeded chaos harness.
"""

from repro.serve.cache import (
    ImageCache, ImageCacheStats, default_image_cache, image_key,
)
from repro.serve.chaos import (
    ChaosPlan, ChaosPolicy, verify_chaos_invariant,
)
from repro.serve.retry import (
    RETRYABLE_KINDS, TRANSIENT_KINDS, RetryPolicy, is_transient,
)
from repro.serve.service import (
    DEFAULT_PROGRAM, EnginePool, QueryError, QueryService, ServiceHealth,
    ServiceResult,
)

__all__ = [
    "DEFAULT_PROGRAM",
    "ChaosPlan",
    "ChaosPolicy",
    "EnginePool",
    "ImageCache",
    "ImageCacheStats",
    "QueryError",
    "QueryService",
    "RETRYABLE_KINDS",
    "RetryPolicy",
    "ServiceHealth",
    "ServiceResult",
    "TRANSIENT_KINDS",
    "default_image_cache",
    "image_key",
    "is_transient",
    "verify_chaos_invariant",
]
