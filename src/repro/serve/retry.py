"""Retry policy for the query service: taxonomy + deterministic backoff.

The serving layer distinguishes two failure families (docs/RESILIENCE.md):

**Permanent** failures are properties of the query itself — a compile
error, an unknown program, a genuine ``CycleLimitExceeded``, an
unrecovered machine trap.  Re-running the same deterministic machine on
the same input reproduces them exactly, so retrying is pure waste and
``run_many`` never does it.

**Transient** failures are properties of the *host* run, not the query:
the worker process died (``WorkerCrashed``), the host wall budget
expired (``WallTimeout``), admission control shed the slot (``Shed``)
or the batch deadline passed first (``DeadlineExceeded``).  The same
query on a healthy worker may well succeed, so these are retry
candidates.  ``run_many`` auto-retries the first two under a
:class:`RetryPolicy`; the last two are final *for the batch* (retrying
a shed inside the batch that shed it would defeat the shedding) but
marked ``transient`` so callers know a later submission is reasonable.

Backoff is exponential with **deterministic seeded jitter**: the delay
for (slot, attempt) is a pure function of the policy, so two runs of
the same batch under the same policy retry at the same offsets — the
property the chaos harness (:mod:`repro.serve.chaos`) relies on to be
reproducible end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet

#: failure kinds that may succeed on re-execution (host conditions).
#: ImageUnavailable is the rare shared-memory race where a worker's
#: segment attach lost to a cache eviction; a retry re-ships the image.
TRANSIENT_KINDS: FrozenSet[str] = frozenset(
    {"WorkerCrashed", "WallTimeout", "Shed", "DeadlineExceeded",
     "ImageUnavailable"})

#: the subset run_many retries automatically inside a batch.
RETRYABLE_KINDS: FrozenSet[str] = frozenset(
    {"WorkerCrashed", "WallTimeout", "ImageUnavailable"})


def is_transient(kind: str) -> bool:
    """Whether a :class:`~repro.serve.service.QueryError` kind names a
    host-side (hence possibly-transient) condition."""
    return kind in TRANSIENT_KINDS


@dataclass(frozen=True)
class RetryPolicy:
    """How ``run_many`` retries transient per-slot failures.

    ``max_attempts`` counts executions, not retries: 3 means the
    original try plus up to two more.  The delay before attempt
    ``n+1`` is ``base_delay_s * multiplier**(n-1)`` stretched by up to
    ``jitter`` (a fraction) using a generator seeded from
    ``(seed, slot index, attempt)``, the whole thing capped at
    ``max_delay_s`` — fully deterministic, yet de-synchronised across
    slots so a killed worker's retries don't stampede.  The cap is
    applied *after* the jitter, so for any ``multiplier >=
    1 + jitter`` (the default comfortably qualifies) the delay is
    monotone non-decreasing in the attempt number and never exceeds
    ``max_delay_s``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    retry_on: FrozenSet[str] = field(default=RETRYABLE_KINDS)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")

    def retryable(self, kind: str, attempt: int) -> bool:
        """Whether a failure of ``kind`` on execution number
        ``attempt`` (1-based) earns another try."""
        return kind in self.retry_on and attempt < self.max_attempts

    def delay_s(self, index: int, attempt: int) -> float:
        """Seconds to wait before re-dispatching slot ``index`` after
        its ``attempt``-th execution failed.  Pure function of
        ``(policy, index, attempt)``; monotone non-decreasing in
        ``attempt`` (for ``multiplier >= 1 + jitter``) and capped at
        ``max_delay_s``."""
        backoff = self.base_delay_s * self.multiplier ** (attempt - 1)
        rng = random.Random(self.seed * 1_000_003
                            + index * 8_191 + attempt)
        return min(self.max_delay_s,
                   backoff * (1.0 + self.jitter * rng.random()))
