"""Incremental compilation (paper section 3.2.1).

"Prolog and other AI languages allow some kind of self modifying code
and incremental compilation ...  Incrementally generated code is
written directly to the code cache."  The batch path (the
:class:`~repro.compiler.linker.Linker`) generates large blocks in the
data space and re-zones the pages; this module is the *incremental*
path: new predicates and new queries are compiled against a machine's
live image, appended to its code space, and written word-by-word
through the code cache (:meth:`MemorySystem.code_write`), paying the
write-through cycles the paper describes.

This is also how the final system's "incremental Prolog compiler"
(section 5) consults clauses at the toplevel.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.codegen import Label
from repro.compiler.indexing import PredicateCode, compile_predicate
from repro.compiler.linker import Linker
from repro.compiler.normalize import (
    NormalizedProgram, group_program, normalize_program,
)
from repro.core.builtins import builtin_for
from repro.core.instruction import Instruction
from repro.core.opcodes import BRANCHING_OPS, Op
from repro.errors import LinkError
from repro.prolog.parser import parse_program


class IncrementalLoader:
    """Consult-style loading onto a live machine."""

    def __init__(self, machine):
        self.machine = machine
        self._query_counter = 0
        #: cycles spent writing code through the code cache.
        self.code_write_cycles = 0

    # -- public API -------------------------------------------------------------

    def add_program(self, text: str) -> List[Tuple[str, int]]:
        """Compile and install new predicates; returns their
        indicators.  Redefining an existing predicate is rejected
        (assert/retract semantics are out of scope, as in the paper's
        first environment)."""
        program = normalize_program(parse_program(text))
        groups = group_program(program)
        for indicator in groups:
            if indicator in self.machine.predicates:
                raise LinkError(
                    f"predicate {indicator[0]}/{indicator[1]} already "
                    f"loaded (no redefinition in the incremental path)")
        codes = [compile_predicate(name, arity, clauses,
                                   self.machine.symbols)
                 for (name, arity), clauses in groups.items()]
        self._install(codes, list(program.clauses))
        return [code.indicator for code in codes]

    def query(self, text: str) -> Tuple[int, List[str]]:
        """Compile one query against everything loaded so far; returns
        ``(entry_address, variable_names)`` for :meth:`Machine.run`."""
        self._query_counter += 1
        name = f"$query{self._query_counter}"
        program = NormalizedProgram()
        linker = Linker(symbols=self.machine.symbols)
        clause, names = linker._query_clause(text, program)
        clause.head = type(clause.head)(name)      # Atom(name)
        groups = group_program(program)            # aux control preds
        codes = [compile_predicate(n, a, clauses, self.machine.symbols)
                 for (n, a), clauses in groups.items()]
        codes.append(compile_predicate(name, 0, [clause],
                                       self.machine.symbols))
        self._install(codes, list(program.clauses) + [clause])
        return self.machine.predicates[(name, 0)], names

    # -- installation -------------------------------------------------------------

    def _install(self, codes: List[PredicateCode], clauses) -> None:
        machine = self.machine
        base = len(machine.code)

        # Pass 1: addresses for the new labels.
        addresses: Dict[str, int] = {}
        pc = base
        for code in codes:
            for item in code.items:
                if isinstance(item, Label):
                    addresses[item.name] = pc
                else:
                    pc += item.size

        new_predicates = {code.indicator: addresses[code.entry.name]
                          for code in codes}

        # Library stubs for newly referenced built-ins.
        needed = self._needed_builtins(clauses, new_predicates)
        stub_codes, handlers = self._builtin_stubs(needed, pc)
        for code in stub_codes:
            addresses[code.entry.name] = pc
            new_predicates[code.indicator] = pc
            pc += sum(i.size for i in code.items
                      if isinstance(i, Instruction))

        def resolve(value):
            if isinstance(value, Label):
                return addresses[value.name]
            if isinstance(value, tuple) and len(value) == 3 \
                    and value[0] == "pred":
                _, name, arity = value
                target = new_predicates.get((name, arity))
                if target is None:
                    target = machine.predicates.get((name, arity))
                if target is None:
                    raise LinkError(f"undefined predicate {name}/{arity}")
                return target
            return value

        # Pass 2: resolve and write through the code cache.
        machine.code.extend([None] * (pc - base))
        write_pc = base
        for code in codes + stub_codes:
            for item in code.items:
                if isinstance(item, Label):
                    continue
                if item.op in BRANCHING_OPS:
                    item.a = resolve(item.a)
                elif item.op is Op.SWITCH_ON_TERM:
                    item.a, item.b = resolve(item.a), resolve(item.b)
                    item.c, item.d = resolve(item.c), resolve(item.d)
                elif item.op in (Op.SWITCH_ON_CONSTANT,
                                 Op.SWITCH_ON_STRUCTURE):
                    item.a = {k: resolve(v) for k, v in item.a.items()}
                    item.b = resolve(item.b)
                machine.code[write_pc] = item
                # "Incrementally generated code is written directly to
                # the code cache": one write-through per code word.
                for offset in range(item.size):
                    self.code_write_cycles += \
                        machine.memory.code_write(write_pc + offset)
                write_pc += item.size

        machine.predicates.update(new_predicates)
        machine.builtins.update(handlers)
        # The code zone grew: the machine's predecoded dispatch table
        # (repro.core.predecode) no longer covers the new addresses.
        machine.invalidate_predecode()

    def _needed_builtins(self, clauses, new_predicates):
        from repro.compiler.goals import is_inline
        from repro.prolog.terms import Var, functor_indicator
        needed = set()
        for clause in clauses:
            for goal in clause.goals:
                if isinstance(goal, Var) or is_inline(goal):
                    continue
                indicator = functor_indicator(goal)
                if indicator in self.machine.predicates \
                        or indicator in new_predicates:
                    continue
                needed.add(indicator)
        return needed

    def _builtin_stubs(self, needed, start_pc):
        next_id = max(self.machine.builtins, default=-1) + 1
        stubs: List[PredicateCode] = []
        handlers = {}
        for name, arity in sorted(needed):
            implementation = builtin_for(name, arity)
            if implementation is None:
                raise LinkError(f"undefined predicate {name}/{arity}")
            handlers[next_id] = implementation
            code = PredicateCode(name, arity)
            code.entry = Label(f"builtin+:{name}/{arity}")
            findex = self.machine.symbols.functor_index(name, arity)
            code.items = [code.entry,
                          Instruction(Op.ESCAPE, next_id, arity, findex),
                          Instruction(Op.PROCEED)]
            stubs.append(code)
            next_id += 1
        return stubs, handlers
