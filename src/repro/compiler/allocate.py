"""Clause analysis: chunks, permanent variables, environment shape.

Classical WAM analysis with the KCM twist that the environment is
allocated *after the neck* (head and guard run on temporaries only, so
a shallow failure has nothing to unwind but the trail — section 3.1.5).
Head occurrences of permanent variables are therefore staged through
temporaries and copied into their Y slots right after ALLOCATE.

Definitions:

chunk
    The head plus the goals up to and including the first call goal is
    chunk 0; each further call goal ends the next chunk.  Inline goals
    (arithmetic, tests, ``=``, control) never end a chunk because they
    preserve the argument registers.
permanent variable
    Occurs in more than one chunk; lives in a Y slot of the
    environment.  Y indices are assigned in order of *death* (latest
    last-occurrence first) so the environment can be trimmed: the
    ``nperms`` operand of each CALL is the number of slots still live
    after that call, and the callee reads it to compute the local
    stack top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.compiler.goals import is_call, is_cut, is_guard_goal
from repro.compiler.normalize import Clause
from repro.prolog.terms import Struct, Term, Var, functor_indicator


@dataclass
class ClauseAnalysis:
    """Everything the code generator needs to know about one clause."""

    clause: Clause
    head_arity: int
    #: chunk index of each goal (parallel to clause.goals).
    goal_chunks: List[int] = field(default_factory=list)
    #: total number of chunks.
    chunk_count: int = 1
    #: variable name -> set of chunk indices where it occurs.
    occurrences: Dict[str, Set[int]] = field(default_factory=dict)
    #: number of *occurrences* (not chunks) per variable, to spot voids.
    occurrence_counts: Dict[str, int] = field(default_factory=dict)
    #: permanent variable name -> Y index.
    permanent: Dict[str, int] = field(default_factory=dict)
    #: variable name -> last chunk it occurs in.
    last_chunk: Dict[str, int] = field(default_factory=dict)
    #: Y slot reserved for the cut barrier, or None.
    cut_slot: "int | None" = None
    #: whether the clause needs an environment frame.
    needs_environment: bool = False
    #: indices of goals that are call goals.
    call_goal_indices: List[int] = field(default_factory=list)
    #: number of leading guard goals (compiled before the neck).
    guard_length: int = 0

    @property
    def frame_slots(self) -> int:
        """Total Y slots (permanents plus the cut slot)."""
        return len(self.permanent) + (1 if self.cut_slot is not None else 0)

    def is_permanent(self, name: str) -> bool:
        """Whether the variable lives in the environment."""
        return name in self.permanent

    def is_void(self, name: str) -> bool:
        """Whether the variable occurs exactly once in the clause."""
        return self.occurrence_counts.get(name, 0) == 1

    def live_permanents_after_chunk(self, chunk: int) -> int:
        """Trimmed frame size (in Y slots) after the call ending
        ``chunk`` — the CALL instruction's nperms operand."""
        live = 0
        for name, y_index in self.permanent.items():
            if self.last_chunk[name] > chunk:
                live = max(live, y_index + 1)
        if self.cut_slot is not None and self._cut_live_after(chunk):
            live = max(live, self.cut_slot + 1)
        return live

    def _cut_live_after(self, chunk: int) -> bool:
        return self._last_cut_chunk > chunk

    _last_cut_chunk: int = -1


def _term_variable_names(term: Term) -> List[str]:
    out: List[str] = []
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            out.append(t.name)
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))
    return out


def analyze_clause(clause: Clause) -> ClauseAnalysis:
    """Run the full analysis for one clause."""
    _, head_arity = functor_indicator(clause.head)
    analysis = ClauseAnalysis(clause=clause, head_arity=head_arity)

    # Guard: leading pure tests run before the neck.
    guard = 0
    for goal in clause.goals:
        if is_guard_goal(goal):
            guard += 1
        else:
            break
    analysis.guard_length = guard

    # Chunk assignment.
    chunk = 0
    cut_chunks: List[int] = []
    for index, goal in enumerate(clause.goals):
        analysis.goal_chunks.append(chunk)
        if is_cut(goal):
            cut_chunks.append(chunk)
        if is_call(goal):
            analysis.call_goal_indices.append(index)
            chunk += 1
    analysis.chunk_count = (max(analysis.goal_chunks) + 1
                            if analysis.goal_chunks else 1)

    # Occurrences per chunk (head counts as chunk 0).
    def record(term: Term, in_chunk: int) -> None:
        for name in _term_variable_names(term):
            analysis.occurrences.setdefault(name, set()).add(in_chunk)
            analysis.occurrence_counts[name] = \
                analysis.occurrence_counts.get(name, 0) + 1
            last = analysis.last_chunk.get(name, -1)
            analysis.last_chunk[name] = max(last, in_chunk)

    record(clause.head, 0)
    for index, goal in enumerate(clause.goals):
        record(goal, analysis.goal_chunks[index])

    # Permanent variables, ordered for trimming: die-last gets Y0.
    permanents = [name for name, chunks in analysis.occurrences.items()
                  if len(chunks) > 1]
    permanents.sort(key=lambda n: (-analysis.last_chunk[n], n))
    analysis.permanent = {name: i for i, name in enumerate(permanents)}

    # Cut slot: only needed when a cut occurs after the first call goal
    # (before that, the B0 register is still valid).
    first_call_chunk_end = 0
    needs_cut_slot = any(c > first_call_chunk_end for c in cut_chunks)
    if needs_cut_slot:
        analysis.cut_slot = len(analysis.permanent)
    analysis._last_cut_chunk = max(cut_chunks) if cut_chunks else -1

    # Environment: needed for permanents, a cut slot, several calls, or
    # a call that is not the final goal.
    n_calls = len(analysis.call_goal_indices)
    call_not_last = (n_calls >= 1
                     and analysis.call_goal_indices[-1]
                     != len(clause.goals) - 1)
    analysis.needs_environment = bool(
        analysis.permanent or analysis.cut_slot is not None
        or n_calls >= 2 or call_not_last)
    return analysis
