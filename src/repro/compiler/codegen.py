"""Clause code generation: normalised clauses to KCM instructions.

Follows the WAM compilation scheme with the KCM specifics:

- the **neck discipline** of section 3.1.5: the head and the guard are
  compiled to run entirely on temporaries, never touching the argument
  registers or allocating an environment, so a shallow failure has
  nothing to restore beyond the shadow registers.  ALLOCATE (and the
  staging copies of permanent head variables into their Y slots) comes
  *after* the NECK;
- inline arithmetic: ``is/2`` expressions are constant-folded and
  flattened into ARITH instructions; comparisons become ARITH + TEST
  (and, in leading guard position, run before the neck);
- cut maps to NECK_CUT (first body goal), CUT (before the first call)
  or GET_LEVEL/CUT_Y (after a call);
- the four-address register file's double move: adjacent register
  moves are merged into MOVE2 by a peephole pass.

Output is a list of :class:`Item` — labels and instructions — consumed
by :mod:`repro.compiler.indexing` and :mod:`repro.compiler.assemble`.
Call targets stay symbolic ``("pred", name, arity)`` until link time.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.allocate import ClauseAnalysis, analyze_clause
from repro.compiler.goals import TEST_GOALS, is_cut
from repro.compiler.normalize import Clause
from repro.core.instruction import Instruction
from repro.core.opcodes import ArithOp, Op
from repro.core.registers import X_REGISTERS
from repro.core.symbols import SymbolTable
from repro.core.word import Word, make_float, make_int
from repro.errors import CompileError
from repro.prolog.terms import (
    Atom, Float, Int, Struct, Term, Var, functor_indicator, is_list_cell,
)


class Label:
    """A code label; resolved to an absolute address by the assembler."""

    _counter = itertools.count()

    def __init__(self, hint: str = "L"):
        self.name = f"{hint}#{next(Label._counter)}"

    def __repr__(self) -> str:
        return f"Label({self.name})"


Item = Union[Label, Instruction]

#: Symbolic call target, resolved by the linker.
PredRef = Tuple[str, str, int]


def pred_ref(name: str, arity: int) -> PredRef:
    """A symbolic reference to predicate ``name/arity``."""
    return ("pred", name, arity)


#: Arithmetic functors the expression compiler understands.
ARITH_BINARY = {
    "+": ArithOp.ADD, "-": ArithOp.SUB, "*": ArithOp.MUL, "/": ArithOp.DIV,
    "//": ArithOp.IDIV, "mod": ArithOp.MOD, "min": ArithOp.MIN,
    "max": ArithOp.MAX, "/\\": ArithOp.AND, "\\/": ArithOp.OR,
    "xor": ArithOp.XOR, "<<": ArithOp.SHL, ">>": ArithOp.SHR,
}
ARITH_UNARY = {"-": ArithOp.NEG, "+": None, "abs": ArithOp.ABS}


def fold_constant(term: Term) -> Optional[Union[int, float]]:
    """Statically evaluate a ground arithmetic expression, or None."""
    if isinstance(term, Int):
        return term.value
    if isinstance(term, Float):
        return term.value
    if isinstance(term, Struct):
        if term.arity == 2 and term.name in ARITH_BINARY:
            left = fold_constant(term.args[0])
            right = fold_constant(term.args[1])
            if left is None or right is None:
                return None
            try:
                if term.name == "+":
                    return left + right
                if term.name == "-":
                    return left - right
                if term.name == "*":
                    return left * right
                if term.name == "/":
                    both_int = isinstance(left, int) and isinstance(right,
                                                                    int)
                    return int(left / right) if both_int else left / right
                if term.name == "//":
                    return left // right
                if term.name == "mod":
                    return left % right
                if term.name == "min":
                    return min(left, right)
                if term.name == "max":
                    return max(left, right)
                if term.name == "/\\":
                    return int(left) & int(right)
                if term.name == "\\/":
                    return int(left) | int(right)
                if term.name == "xor":
                    return int(left) ^ int(right)
                if term.name == "<<":
                    return int(left) << int(right)
                if term.name == ">>":
                    return int(left) >> int(right)
            except (ZeroDivisionError, ValueError):
                return None
        if term.arity == 1 and term.name in ("-", "+", "abs"):
            value = fold_constant(term.args[0])
            if value is None:
                return None
            if term.name == "-":
                return -value
            if term.name == "abs":
                return abs(value)
            return value
    return None


def number_word(value: Union[int, float]) -> Word:
    """Tagged word for a Python number."""
    return make_int(value) if isinstance(value, int) else make_float(value)


class ClauseCompiler:
    """Compiles one analysed clause to an instruction stream."""

    def __init__(self, analysis: ClauseAnalysis, symbols: SymbolTable,
                 query_mode: bool = False):
        self.analysis = analysis
        self.clause = analysis.clause
        self.symbols = symbols
        self.query_mode = query_mode
        self.items: List[Item] = []
        #: var name -> ('a'|'x'|'y', index).  'a' means "still sitting
        #: in the argument register it arrived in".
        self.loc: Dict[str, Tuple[str, int]] = {}
        #: head permanents staged in temporaries, copied after ALLOCATE.
        self._pending_y_copies: List[Tuple[int, int]] = []
        arities = [analysis.head_arity]
        for index in analysis.call_goal_indices:
            _, goal_arity = functor_indicator(self.clause.goals[index])
            arities.append(goal_arity)
        self._temp_base = max(arities)
        from repro.prolog.terms import term_variables
        self._head_var_names = {
            v.name for v in term_variables(self.clause.head)}
        self._next_temp = self._temp_base
        self._temp_free: List[int] = []
        self._env_allocated = False
        self.current_chunk = 0

    # -- low-level helpers -----------------------------------------------------

    def emit(self, op: Op, a=None, b=None, c=None, d=None,
             infer: bool = False) -> Instruction:
        instr = Instruction(op, a, b, c, d, infer=infer)
        self.items.append(instr)
        return instr

    def fresh_temp(self) -> int:
        if self._temp_free:
            return self._temp_free.pop()
        reg = self._next_temp
        if reg >= X_REGISTERS:
            raise CompileError(
                f"clause for {self.clause.indicator} needs more than "
                f"{X_REGISTERS} temporary registers")
        self._next_temp = reg + 1
        return reg

    def release_temp(self, reg: int) -> None:
        """Return a register used only for anonymous structure building
        to the pool (long static lists reuse two registers instead of
        one per cell)."""
        self._temp_free.append(reg)

    def _constant_word(self, term: Term) -> Word:
        if isinstance(term, Int):
            return make_int(term.value)
        if isinstance(term, Float):
            return make_float(term.value)
        if isinstance(term, Atom):
            return self.symbols.atom_word(term.name)
        raise CompileError(f"not a constant: {term!r}")

    def _functor_index(self, term: Struct) -> int:
        return self.symbols.functor_index(term.name, term.arity)

    def _mark_goal_start(self, start_index: int) -> None:
        """Flag the first instruction emitted for a goal as a source-
        level inference (the Klips accounting of section 4.2)."""
        for item in self.items[start_index:]:
            if isinstance(item, Instruction):
                item.infer = True
                return
        # Goals like 'true' that emit nothing still count: a 1-cycle
        # register no-op carries the mark.
        self.emit(Op.MOVE2, 0, 0, None, None, infer=True)

    # ------------------------------------------------------------------
    # head compilation
    # ------------------------------------------------------------------

    def compile_head(self) -> None:
        head = self.clause.head
        if isinstance(head, Atom):
            return
        todo: List[Tuple[int, Term]] = []
        for position, arg in enumerate(head.args):
            self._head_argument(position, arg, todo)
        # Breadth-first over nested structures (classic WAM order).
        while todo:
            register, term = todo.pop(0)
            self._head_compound(register, term, todo)

    def _head_argument(self, position: int, arg: Term,
                       todo: List[Tuple[int, Term]]) -> None:
        analysis = self.analysis
        if isinstance(arg, Var):
            location = self.loc.get(arg.name)
            if location is None:
                if analysis.is_void(arg.name):
                    return                      # single occurrence: no code
                if analysis.is_permanent(arg.name):
                    temp = self.fresh_temp()
                    self.emit(Op.GET_X_VARIABLE, temp, position)
                    self.loc[arg.name] = ("x", temp)
                    self._pending_y_copies.append(
                        (analysis.permanent[arg.name], temp))
                else:
                    self.loc[arg.name] = ("a", position)
            else:
                self.emit(Op.GET_X_VALUE, self._x_of(location), position)
            return
        if isinstance(arg, (Atom, Int, Float)):
            if isinstance(arg, Atom) and arg.name == "[]":
                self.emit(Op.GET_NIL, position)
            else:
                self.emit(Op.GET_CONSTANT, self._constant_word(arg),
                          position)
            return
        # Compound argument.
        if is_list_cell(arg):
            self.emit(Op.GET_LIST, position)
        else:
            self.emit(Op.GET_STRUCTURE, self._functor_index(arg), position)
        self._unify_arguments(arg, todo)

    def _head_compound(self, register: int, term: Term,
                       todo: List[Tuple[int, Term]]) -> None:
        if is_list_cell(term):
            self.emit(Op.GET_LIST, register)
        else:
            self.emit(Op.GET_STRUCTURE, self._functor_index(term), register)
        self._unify_arguments(term, todo)

    def _unify_arguments(self, term: Struct, todo: List[Tuple[int, Term]],
                         building: bool = False) -> None:
        """UNIFY_* sequence for the arguments of one level of ``term``.

        ``building`` distinguishes put-side construction (write mode is
        certain; nested substructures were built bottom-up already and
        arrive as register values in ``todo``-free form).
        """
        analysis = self.analysis
        pending_void = 0

        def flush_void() -> None:
            nonlocal pending_void
            if pending_void:
                self.emit(Op.UNIFY_VOID, pending_void)
                pending_void = 0

        for arg in term.args:
            if isinstance(arg, Var):
                location = self.loc.get(arg.name)
                if location is None:
                    if analysis.is_void(arg.name):
                        pending_void += 1
                        continue
                    flush_void()
                    if analysis.is_permanent(arg.name):
                        if self._env_allocated:
                            y_index = analysis.permanent[arg.name]
                            self.emit(Op.UNIFY_Y_VARIABLE, y_index)
                            self.loc[arg.name] = ("y", y_index)
                        else:
                            temp = self.fresh_temp()
                            self.emit(Op.UNIFY_X_VARIABLE, temp)
                            self.loc[arg.name] = ("x", temp)
                            self._pending_y_copies.append(
                                (analysis.permanent[arg.name], temp))
                    else:
                        temp = self.fresh_temp()
                        self.emit(Op.UNIFY_X_VARIABLE, temp)
                        self.loc[arg.name] = ("x", temp)
                else:
                    flush_void()
                    kind, index = location
                    if kind == "y":
                        self.emit(Op.UNIFY_Y_LOCAL_VALUE, index)
                    else:
                        self.emit(Op.UNIFY_X_LOCAL_VALUE,
                                  self._x_of(location))
                continue
            flush_void()
            if isinstance(arg, (Atom, Int, Float)):
                if isinstance(arg, Atom) and arg.name == "[]":
                    self.emit(Op.UNIFY_NIL)
                else:
                    self.emit(Op.UNIFY_CONSTANT, self._constant_word(arg))
                continue
            # Nested compound.
            if building:
                register = self._built_registers.pop(0)
                self.emit(Op.UNIFY_X_VALUE, register)
                self.release_temp(register)
            else:
                temp = self.fresh_temp()
                self.emit(Op.UNIFY_X_VARIABLE, temp)
                todo.append((temp, arg))
        flush_void()

    def _x_of(self, location: Tuple[str, int]) -> int:
        kind, index = location
        if kind in ("a", "x"):
            return index
        raise CompileError("expected an X-register location")

    # ------------------------------------------------------------------
    # neck, environment
    # ------------------------------------------------------------------

    def compile_neck(self, cut_in_neck: bool) -> None:
        if cut_in_neck:
            self.emit(Op.NECK_CUT)
        else:
            self.emit(Op.NECK, self.analysis.head_arity)
        if self.analysis.needs_environment:
            self.emit(Op.ALLOCATE, self.analysis.frame_slots)
            self._env_allocated = True
            for y_index, temp in self._pending_y_copies:
                self.emit(Op.GET_Y_VARIABLE, y_index, temp)
            for y_index, temp in self._pending_y_copies:
                name = self._var_in_temp(temp)
                if name is not None:
                    self.loc[name] = ("y", y_index)
            self._pending_y_copies = []
            if self.analysis.cut_slot is not None:
                self.emit(Op.GET_LEVEL, self.analysis.cut_slot)

    def _var_in_temp(self, temp: int) -> Optional[str]:
        for name, location in self.loc.items():
            if location == ("x", temp):
                return name
        return None

    # ------------------------------------------------------------------
    # body compilation
    # ------------------------------------------------------------------

    def compile_body(self, skip_first_cut: bool) -> None:
        goals = self.clause.goals
        analysis = self.analysis
        start = analysis.guard_length + (1 if skip_first_cut else 0)
        emitted_control_exit = False
        for index in range(start, len(goals)):
            goal = goals[index]
            self.current_chunk = analysis.goal_chunks[index]
            is_last = index == len(goals) - 1
            name, arity = functor_indicator(goal)
            if is_cut(goal):
                self._compile_cut()
                continue
            if (name, arity) == ("true", 0):
                begin = len(self.items)
                self._mark_goal_start(begin)
                continue
            if (name, arity) in (("fail", 0), ("false", 0)):
                self.emit(Op.FAIL, infer=True)
                emitted_control_exit = True
                break
            begin = len(self.items)
            if arity == 2 and name in TEST_GOALS:
                self._compile_test(goal)
            elif (name, arity) == ("is", 2):
                self._compile_is(goal)
            elif (name, arity) == ("=", 2):
                self._compile_unify_goal(goal)
            else:
                self._compile_call(goal, index, is_last)
                if is_last:
                    emitted_control_exit = True
            # The '$answer' solution collector is harness machinery, not
            # a source-level inference.  Generated control predicates
            # ('$(or)N' etc.) do count: they stand for a source goal.
            if name != "$answer":
                self._mark_goal_start(begin)
            if not (arity == 2 and name in TEST_GOALS) \
                    and (name, arity) not in (("is", 2), ("=", 2)) \
                    and not is_last:
                # A call goal ended the chunk: temporaries are dead.
                self._end_chunk()
        if not emitted_control_exit:
            if self._env_allocated:
                self.emit(Op.DEALLOCATE)
            self.emit(Op.PROCEED)

    def _end_chunk(self) -> None:
        self.loc = {name: location for name, location in self.loc.items()
                    if location[0] == "y"}
        self._next_temp = self._temp_base
        self._temp_free = []

    def _compile_cut(self) -> None:
        # Cut is not counted as an inference (section 4.2, footnote).
        if self.analysis.cut_slot is not None \
                and self.current_chunk > 0:
            self.emit(Op.CUT_Y, self.analysis.cut_slot)
        else:
            self.emit(Op.CUT)

    # -- guard tests ------------------------------------------------------------

    def compile_guard(self) -> None:
        """Leading comparison goals, compiled before the neck."""
        for index in range(self.analysis.guard_length):
            begin = len(self.items)
            self._compile_test(self.clause.goals[index])
            self._mark_goal_start(begin)

    def _compile_test(self, goal: Struct) -> None:
        relation = TEST_GOALS[goal.name]
        left = self._expression_register(goal.args[0])
        right = self._expression_register(goal.args[1])
        self.emit(Op.TEST, relation, left, right)

    # -- arithmetic ---------------------------------------------------------------

    def _expression_register(self, term: Term) -> int:
        """Compile an arithmetic expression; returns the register
        holding its (tagged numeric) value."""
        folded = fold_constant(term)
        if folded is not None:
            temp = self.fresh_temp()
            self.emit(Op.PUT_CONSTANT, number_word(folded), temp)
            return temp
        if isinstance(term, Var):
            location = self.loc.get(term.name)
            if location is None:
                # First occurrence inside an expression: materialise an
                # unbound variable so the ARITH instruction raises the
                # run-time instantiation trap, as the hardware would.
                return self._value_into_register(term)
            kind, index = location
            if kind == "y":
                temp = self.fresh_temp()
                self.emit(Op.PUT_Y_VALUE, index, temp)
                return temp
            return index
        if isinstance(term, Struct):
            if term.arity == 2 and term.name in ARITH_BINARY:
                left = self._expression_register(term.args[0])
                right = self._expression_register(term.args[1])
                temp = self.fresh_temp()
                self.emit(Op.ARITH, ARITH_BINARY[term.name], left, right,
                          temp)
                return temp
            if term.arity == 1 and term.name in ARITH_UNARY:
                operand = self._expression_register(term.args[0])
                op = ARITH_UNARY[term.name]
                if op is None:                      # unary plus
                    return operand
                temp = self.fresh_temp()
                self.emit(Op.ARITH, op, operand, operand, temp)
                return temp
        raise CompileError(f"not an arithmetic expression: {term!r} in "
                           f"{self.clause.indicator}")

    def _compile_is(self, goal: Struct) -> None:
        target, expression = goal.args
        result = self._expression_register(expression)
        if isinstance(target, Var) and target.name not in self.loc:
            if self.analysis.is_permanent(target.name):
                y_index = self.analysis.permanent[target.name]
                self.emit(Op.GET_Y_VARIABLE, y_index, result)
                self.loc[target.name] = ("y", y_index)
            else:
                self.loc[target.name] = ("x", result)
            return
        # Bound or non-variable target: general unification.
        target_register = self._value_into_register(target)
        self.emit(Op.GEN_UNIFY, target_register, result)

    def _compile_unify_goal(self, goal: Struct) -> None:
        left, right = goal.args
        # Fresh variable on either side: just record the other side.
        for var_side, other in ((left, right), (right, left)):
            if isinstance(var_side, Var) and var_side.name not in self.loc \
                    and not self.analysis.is_permanent(var_side.name):
                register = self._value_into_register(other)
                self.loc[var_side.name] = ("x", register)
                return
        left_register = self._value_into_register(left)
        right_register = self._value_into_register(right)
        self.emit(Op.GEN_UNIFY, left_register, right_register)

    def _value_into_register(self, term: Term) -> int:
        """Materialise any term into an X register (build if needed)."""
        if isinstance(term, Var):
            location = self.loc.get(term.name)
            if location is None:
                if self.analysis.is_permanent(term.name):
                    y_index = self.analysis.permanent[term.name]
                    temp = self.fresh_temp()
                    self.emit(Op.PUT_Y_VARIABLE, y_index, temp)
                    self.loc[term.name] = ("y", y_index)
                    return temp
                temp = self.fresh_temp()
                self.emit(Op.PUT_X_VARIABLE, temp, temp)
                self.loc[term.name] = ("x", temp)
                return temp
            kind, index = location
            if kind == "y":
                temp = self.fresh_temp()
                self.emit(Op.PUT_Y_VALUE, index, temp)
                return temp
            return index
        if isinstance(term, (Atom, Int, Float)):
            temp = self.fresh_temp()
            if isinstance(term, Atom) and term.name == "[]":
                self.emit(Op.PUT_NIL, temp)
            else:
                self.emit(Op.PUT_CONSTANT, self._constant_word(term), temp)
            return temp
        return self._build_compound(term)

    # -- argument loading (puts) -----------------------------------------------------

    def _compile_call(self, goal: Term, goal_index: int,
                      is_last: bool) -> None:
        name, arity = functor_indicator(goal)
        args = goal.args if isinstance(goal, Struct) else ()
        self._load_arguments(list(args))
        chunk = self.analysis.goal_chunks[goal_index]
        nperms = self.analysis.live_permanents_after_chunk(chunk)
        target = pred_ref(name, arity)
        # The inference mark is applied by _mark_goal_start on the first
        # instruction of the goal's sequence (the argument puts).
        if is_last:
            if self._env_allocated:
                self.emit(Op.DEALLOCATE)
            self.emit(Op.EXECUTE, target)
        else:
            self.emit(Op.CALL, target, nperms)

    def _load_arguments(self, args: List[Term]) -> None:
        m = len(args)
        # 1. Relocate argument-register residents that would clash.
        for name, location in list(self.loc.items()):
            kind, k = location
            if kind != "a" or k >= m:
                continue
            appears = any(isinstance(a, Var) and a.name == name
                          or (isinstance(a, Struct)
                              and self._var_occurs(a, name))
                          for a in args)
            if not appears:
                continue
            stays_put = (k < len(args) and isinstance(args[k], Var)
                         and args[k].name == name)
            if not stays_put:
                temp = self.fresh_temp()
                self.emit(Op.GET_X_VARIABLE, temp, k)
                self.loc[name] = ("x", temp)

        # 2. Build compound arguments bottom-up into temporaries.
        built: Dict[int, int] = {}
        for position, arg in enumerate(args):
            if isinstance(arg, Struct):
                built[position] = self._build_compound(arg)

        # 3. Emit the puts.
        for position, arg in enumerate(args):
            if isinstance(arg, Struct):
                register = built[position]
                self.emit(Op.PUT_X_VALUE, register, position)
                continue
            if isinstance(arg, Var):
                self._put_variable(arg, position)
                continue
            if isinstance(arg, Atom) and arg.name == "[]":
                self.emit(Op.PUT_NIL, position)
            else:
                self.emit(Op.PUT_CONSTANT, self._constant_word(arg),
                          position)

    @staticmethod
    def _var_occurs(term: Struct, name: str) -> bool:
        stack: List[Term] = [term]
        while stack:
            t = stack.pop()
            if isinstance(t, Var) and t.name == name:
                return True
            if isinstance(t, Struct):
                stack.extend(t.args)
        return False

    def _put_variable(self, var: Var, position: int) -> None:
        analysis = self.analysis
        location = self.loc.get(var.name)
        if location is None:
            if analysis.is_permanent(var.name):
                y_index = analysis.permanent[var.name]
                self.emit(Op.PUT_Y_VARIABLE, y_index, position)
                self.loc[var.name] = ("y", y_index)
            else:
                self.emit(Op.PUT_X_VARIABLE, position, position)
                self.loc[var.name] = ("x", position)
            return
        kind, index = location
        if kind == "y":
            if analysis.last_chunk[var.name] == self.current_chunk \
                    and var.name not in self._head_var_names:
                self.emit(Op.PUT_UNSAFE_VALUE, index, position)
            else:
                self.emit(Op.PUT_Y_VALUE, index, position)
            return
        if kind == "a" and index == position:
            return                                  # pass-through: no code
        self.emit(Op.PUT_X_VALUE, index, position)

    def _build_compound(self, term: Struct) -> int:
        """Build ``term`` on the heap bottom-up; returns its register."""
        self._built_registers: List[int] = []
        sub_registers = []
        for arg in term.args:
            if isinstance(arg, Struct):
                sub_registers.append(self._build_compound(arg))
        register = self.fresh_temp()
        if is_list_cell(term):
            self.emit(Op.PUT_LIST, register)
        else:
            self.emit(Op.PUT_STRUCTURE, self._functor_index(term), register)
        self._built_registers = sub_registers
        self._unify_arguments(term, [], building=True)
        return register

    # ------------------------------------------------------------------
    # whole clause
    # ------------------------------------------------------------------

    def compile(self) -> List[Item]:
        analysis = self.analysis
        goals = self.clause.goals
        self.compile_head()
        self.compile_guard()
        neck_index = analysis.guard_length
        cut_in_neck = (neck_index < len(goals)
                       and is_cut(goals[neck_index]))
        self.compile_neck(cut_in_neck)
        self.compile_body(skip_first_cut=cut_in_neck)
        return self.items


def compile_clause(clause: Clause, symbols: SymbolTable) -> List[Item]:
    """Analyse and compile one clause."""
    analysis = analyze_clause(clause)
    return ClauseCompiler(analysis, symbols).compile()


def peephole(items: List[Item]) -> List[Item]:
    """Merge adjacent independent register moves into MOVE2 (the
    four-address format's two-moves-per-cycle capability) and drop
    no-op moves."""
    out: List[Item] = []
    for item in items:
        if (isinstance(item, Instruction)
                and item.op is Op.GET_X_VARIABLE and item.a == item.b
                and not item.infer):
            continue                                 # Xn := Xn
        previous = out[-1] if out else None
        if (isinstance(item, Instruction)
                and isinstance(previous, Instruction)
                and item.op is Op.GET_X_VARIABLE
                and previous.op is Op.GET_X_VARIABLE
                and not item.infer
                and previous.c is None
                and item.b != previous.a
                and item.a != previous.b and item.a != previous.a):
            merged = Instruction(Op.MOVE2, previous.b, previous.a,
                                 item.b, item.a, infer=previous.infer)
            out[-1] = merged
            continue
        out.append(item)
    return out
