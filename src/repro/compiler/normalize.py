"""Clause normalisation: from reader terms to flat clause bodies.

The code generator wants every clause as ``head + list of plain
goals``.  This pass:

- splits ``H :- B`` into head and body and flattens the ``','/2``
  conjunction spine,
- compiles away the control constructs — disjunction ``;/2``,
  if-then(-else) ``->/2`` and negation-as-failure ``\\+/1`` — into
  auxiliary predicates with cut, the classical source-to-source
  transformation (this is also how early WAM compilers, including the
  KCM/SEPIA toolchain, handled them),
- leaves ``!`` as an ordinary goal for the code generator, which maps
  it onto NECK_CUT / CUT / CUT_Y.

The result is a list of :class:`Clause` grouped per predicate by
:func:`group_program`, preserving source order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import CompileError
from repro.prolog.terms import (
    Atom, Struct, Term, Var, functor_indicator, is_callable, term_variables,
)


@dataclass
class Clause:
    """One normalised clause: ``head :- goals``."""

    head: Term
    goals: List[Term]

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate this clause belongs to."""
        return functor_indicator(self.head)


@dataclass
class NormalizedProgram:
    """All clauses of a program, plus generated auxiliary clauses."""

    clauses: List[Clause] = field(default_factory=list)
    aux_counter: int = 0

    def fresh_aux_name(self, kind: str) -> str:
        """A unique name for a generated control predicate."""
        self.aux_counter += 1
        return f"$({kind}){self.aux_counter}"


def flatten_conjunction(body: Term) -> List[Term]:
    """The goal list of a ','/2 spine (right-leaning or not)."""
    goals: List[Term] = []
    stack = [body]
    while stack:
        term = stack.pop()
        if isinstance(term, Struct) and term.name == "," and term.arity == 2:
            stack.append(term.args[1])
            stack.append(term.args[0])
        else:
            goals.append(term)
    return goals


def _aux_head(name: str, variables: List[Var]) -> Term:
    if not variables:
        return Atom(name)
    return Struct(name, tuple(variables))


def _aux_call(name: str, variables: List[Var]) -> Term:
    return _aux_head(name, variables)


def _normalize_goal(goal: Term, program: NormalizedProgram) -> List[Term]:
    """Rewrite one goal; may add auxiliary clauses to ``program``."""
    if isinstance(goal, Var):
        # Meta-call through a variable.
        return [Struct("call", (goal,))]
    if not is_callable(goal):
        raise CompileError(f"goal is not callable: {goal!r}")

    if isinstance(goal, Struct) and goal.name == "," and goal.arity == 2:
        out: List[Term] = []
        for g in flatten_conjunction(goal):
            out.extend(_normalize_goal(g, program))
        return out

    if isinstance(goal, Struct) and goal.name == ";" and goal.arity == 2:
        left, right = goal.args
        variables = term_variables(goal)
        name = program.fresh_aux_name("or")
        if isinstance(left, Struct) and left.name == "->" \
                and left.arity == 2:
            condition, then_part = left.args
            _add_clause(program, _aux_head(name, variables),
                        flatten_conjunction(condition) + [Atom("!")]
                        + flatten_conjunction(then_part))
            _add_clause(program, _aux_head(name, variables),
                        flatten_conjunction(right))
        else:
            _add_clause(program, _aux_head(name, variables),
                        flatten_conjunction(left))
            _add_clause(program, _aux_head(name, variables),
                        flatten_conjunction(right))
        return [_aux_call(name, variables)]

    if isinstance(goal, Struct) and goal.name == "->" and goal.arity == 2:
        # Bare if-then: (C -> T) is (C -> T ; fail).
        condition, then_part = goal.args
        variables = term_variables(goal)
        name = program.fresh_aux_name("ite")
        _add_clause(program, _aux_head(name, variables),
                    flatten_conjunction(condition) + [Atom("!")]
                    + flatten_conjunction(then_part))
        return [_aux_call(name, variables)]

    if isinstance(goal, Struct) and goal.name == "is" and goal.arity == 2 \
            and isinstance(goal.args[1], Var):
        # The expression only arrives at run time: route through the
        # generic arithmetic escape instead of inline ARITH code.
        return [Struct("$eval_is", goal.args)]

    if isinstance(goal, Struct) and goal.name == "\\=" and goal.arity == 2:
        # X \= Y is \+ (X = Y): lower through the same transformation.
        return _normalize_goal(
            Struct("\\+", (Struct("=", goal.args),)), program)

    if isinstance(goal, Struct) and goal.name == "\\+" and goal.arity == 1:
        inner = goal.args[0]
        variables = term_variables(goal)
        name = program.fresh_aux_name("not")
        _add_clause(program, _aux_head(name, variables),
                    flatten_conjunction(inner) + [Atom("!"), Atom("fail")])
        _add_clause(program, _aux_head(name, variables), [])
        return [_aux_call(name, variables)]

    return [goal]


def _add_clause(program: NormalizedProgram, head: Term,
                raw_goals: List[Term]) -> None:
    goals: List[Term] = []
    for goal in raw_goals:
        goals.extend(_normalize_goal(goal, program))
    program.clauses.append(Clause(head, goals))


def normalize_clause_term(term: Term, program: NormalizedProgram) -> None:
    """Normalise one reader term (a fact, rule or directive) into
    ``program``.  Directives (``:- G``) are rejected — the simulator's
    toolchain is batch-mode (section 3.2.1) and takes queries
    separately."""
    if isinstance(term, Struct) and term.name == ":-" and term.arity == 2:
        head, body = term.args
        if not is_callable(head):
            raise CompileError(f"clause head is not callable: {head!r}")
        _add_clause(program, head, flatten_conjunction(body))
        return
    if isinstance(term, Struct) and term.name == ":-" and term.arity == 1:
        raise CompileError("directives are not supported; pass queries "
                           "to the linker instead")
    if not is_callable(term):
        raise CompileError(f"clause is not callable: {term!r}")
    _add_clause(program, term, [])


def normalize_program(terms: List[Term]) -> NormalizedProgram:
    """Normalise a whole program (reader output order preserved)."""
    program = NormalizedProgram()
    for term in terms:
        normalize_clause_term(term, program)
    return program


def group_program(program: NormalizedProgram
                  ) -> "Dict[Tuple[str, int], List[Clause]]":
    """Clauses grouped by predicate indicator, in first-seen order."""
    groups: Dict[Tuple[str, int], List[Clause]] = {}
    for clause in program.clauses:
        groups.setdefault(clause.indicator, []).append(clause)
    return groups
