"""Goal classification shared by the analysis and code-generation passes.

KCM compiles arithmetic and unification *inline* (section 4.2 mentions
integer-arithmetic compilation; the MWAC gives the machine multi-way
branching for the generic case), so these goals produce no CALL:

- ``is/2`` — expression flattened into ARITH instructions,
- the six numeric comparisons — ARITH + TEST,
- ``=/2`` — GEN_UNIFY,
- ``!``, ``true``, ``fail`` — control instructions.

Everything else is a *call goal* (a chunk boundary for the register
allocator): user predicates and escape built-ins alike.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.opcodes import TestOp
from repro.prolog.terms import Atom, Struct, Term, functor_indicator

#: source operator -> TEST relation.
TEST_GOALS = {
    "<": TestOp.LT,
    ">": TestOp.GT,
    "=<": TestOp.LE,
    ">=": TestOp.GE,
    "=:=": TestOp.EQ,
    "=\\=": TestOp.NE,
}

INLINE_CONTROL = {("!", 0), ("true", 0), ("fail", 0), ("false", 0)}


def goal_indicator(goal: Term) -> Tuple[str, int]:
    """(name, arity) of a goal term."""
    return functor_indicator(goal)


def is_cut(goal: Term) -> bool:
    """True for the ``!`` goal."""
    return isinstance(goal, Atom) and goal.name == "!"


def is_inline(goal: Term) -> bool:
    """True when the goal compiles to inline instructions (no CALL)."""
    name, arity = goal_indicator(goal)
    if (name, arity) in INLINE_CONTROL:
        return True
    if arity == 2 and (name in TEST_GOALS or name in ("is", "=")):
        return True
    return False


def is_call(goal: Term) -> bool:
    """True when the goal is a chunk-boundary call."""
    return not is_inline(goal)


def is_guard_goal(goal: Term) -> bool:
    """True for goals allowed *before the neck* (the clause guard of
    section 3.1.5): pure tests that do not modify the Prolog state.

    Arithmetic comparisons qualify; ``is/2`` and ``=/2`` do not (they
    bind), and calls obviously do not.
    """
    name, arity = goal_indicator(goal)
    return arity == 2 and name in TEST_GOALS and isinstance(goal, Struct)
