"""First-argument indexing: switch instructions and try chains.

Section 4.2 credits KCM's speed on database-style programs ("the
efficiency of KCM indexing") to its dispatch hardware; this pass emits
the classic WAM index structure over each predicate:

- a SWITCH_ON_TERM on the first argument's type (MWAC-backed 4-way
  dispatch) when the clause heads discriminate at all,
- SWITCH_ON_CONSTANT / SWITCH_ON_STRUCTURE hash tables per bucket (the
  only multi-word instructions, cf. Table 1's discussion),
- TRY/RETRY/TRUST chains for buckets holding several candidates,
- the full try_me_else / retry_me_else / trust_me chain as the variable
  entry point.

A bucket with a single candidate jumps straight at the clause code:
that call will run with the shallow flag clear and never touch the
choice-point machinery — the deterministic-selection payoff of
section 3.1.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.codegen import Item, Label, compile_clause, peephole
from repro.compiler.normalize import Clause
from repro.core.instruction import Instruction
from repro.core.opcodes import Op
from repro.core.symbols import SymbolTable
from repro.core.word import make_float, make_int
from repro.prolog.terms import Atom, Float, Int, Var, is_list_cell


@dataclass
class PredicateCode:
    """The compiled form of one predicate: a labelled item stream."""

    name: str
    arity: int
    items: List[Item] = field(default_factory=list)
    entry: Optional[Label] = None

    @property
    def indicator(self) -> Tuple[str, int]:
        """(name, arity)."""
        return (self.name, self.arity)

    @property
    def instruction_count(self) -> int:
        """Number of instructions (switch tables count as one)."""
        return sum(1 for i in self.items if isinstance(i, Instruction))

    @property
    def word_count(self) -> int:
        """Code-space words including switch tables."""
        return sum(i.size for i in self.items if isinstance(i, Instruction))


# First-argument key kinds.
KIND_VAR = "var"
KIND_CONST = "const"
KIND_LIST = "list"
KIND_STRUCT = "struct"


def _first_argument_key(clause: Clause, symbols: SymbolTable
                        ) -> Tuple[str, Optional[object]]:
    """(kind, key) of a clause's first head argument."""
    head = clause.head
    if isinstance(head, Atom) or not head.args:
        return (KIND_VAR, None)
    arg = head.args[0]
    if isinstance(arg, Var):
        return (KIND_VAR, None)
    if isinstance(arg, Atom):
        word = symbols.atom_word(arg.name)
        return (KIND_CONST, (word.tag, word.value))
    if isinstance(arg, Int):
        word = make_int(arg.value)
        return (KIND_CONST, (word.tag, word.value))
    if isinstance(arg, Float):
        word = make_float(arg.value)
        return (KIND_CONST, (word.tag, word.value))
    if is_list_cell(arg):
        return (KIND_LIST, None)
    return (KIND_STRUCT, symbols.functor_index(arg.name, arg.arity))


def compile_predicate(name: str, arity: int, clauses: List[Clause],
                      symbols: SymbolTable) -> PredicateCode:
    """Compile all clauses of one predicate with indexing."""
    code = PredicateCode(name, arity)
    entry = Label(f"{name}/{arity}")
    code.entry = entry
    code.items.append(entry)

    compiled = [peephole(compile_clause(clause, symbols))
                for clause in clauses]
    clause_labels = [Label(f"{name}/{arity}.c{i}")
                     for i in range(len(clauses))]

    if len(clauses) == 1:
        code.items.append(clause_labels[0])
        code.items.extend(compiled[0])
        return code

    keys = [_first_argument_key(clause, symbols) for clause in clauses]
    indexable = arity >= 1 and any(kind != KIND_VAR for kind, _ in keys)

    var_chain_label = Label(f"{name}/{arity}.var")
    index_items: List[Item] = []

    if indexable:
        const_target = _bucket(index_items, name, arity, clause_labels,
                               keys, KIND_CONST, symbols)
        list_target = _bucket(index_items, name, arity, clause_labels,
                              keys, KIND_LIST, symbols)
        struct_target = _bucket(index_items, name, arity, clause_labels,
                                keys, KIND_STRUCT, symbols)
        code.items.append(Instruction(
            Op.SWITCH_ON_TERM, var_chain_label, const_target, list_target,
            struct_target))
        code.items.extend(index_items)

    # The variable entry: the full sequential chain.
    code.items.append(var_chain_label)
    for i, (label, items) in enumerate(zip(clause_labels, compiled)):
        if len(clauses) > 1:
            if i == 0:
                next_label = Label(f"{name}/{arity}.v1")
                code.items.append(Instruction(Op.TRY_ME_ELSE, next_label,
                                              arity))
            elif i < len(clauses) - 1:
                code.items.append(next_label)
                next_label = Label(f"{name}/{arity}.v{i + 1}")
                code.items.append(Instruction(Op.RETRY_ME_ELSE, next_label,
                                              arity))
            else:
                code.items.append(next_label)
                code.items.append(Instruction(Op.TRUST_ME))
        code.items.append(label)
        code.items.extend(items)
    return code


def _bucket(index_items: List[Item], name: str, arity: int,
            clause_labels: List[Label],
            keys: List[Tuple[str, Optional[object]]], kind: str,
            symbols: SymbolTable) -> Optional[Union[Label, object]]:
    """Build the dispatch target for one SWITCH_ON_TERM leg.

    Returns a Label (or None for guaranteed failure).  For the const
    and struct legs this may emit a second-level switch instruction
    plus TRY chains into ``index_items``.
    """
    if kind == KIND_LIST:
        candidates = [clause_labels[i] for i, (k, _) in enumerate(keys)
                      if k in (KIND_LIST, KIND_VAR)]
        return _chain(index_items, name, arity, candidates, "list")

    # Candidate sets per key value, preserving clause order; var-headed
    # clauses belong to every bucket.
    per_key: Dict[object, List[Label]] = {}
    var_candidates: List[Label] = []
    order: List[object] = []
    for i, (k, key) in enumerate(keys):
        if k == KIND_VAR:
            var_candidates.append(clause_labels[i])
            for lst in per_key.values():
                lst.append(clause_labels[i])
        elif k == kind:
            if key not in per_key:
                per_key[key] = list(var_candidates)
                order.append(key)
            per_key[key].append(clause_labels[i])

    if not per_key:
        # No clause discriminates on this kind: all candidates are the
        # var-headed clauses.
        return _chain(index_items, name, arity, var_candidates,
                      kind)

    default_target = _chain(index_items, name, arity, var_candidates,
                            f"{kind}.default")
    table: Dict[object, object] = {}
    for key in order:
        table[key] = _chain(index_items, name, arity, per_key[key],
                            f"{kind}.bucket")
    switch_label = Label(f"{name}/{arity}.{kind}switch")
    op = Op.SWITCH_ON_CONSTANT if kind == KIND_CONST \
        else Op.SWITCH_ON_STRUCTURE
    index_items.insert(0, switch_label)
    index_items.insert(1, Instruction(op, table, default_target))
    return switch_label


def _chain(index_items: List[Item], name: str, arity: int,
           candidates: List[Label], hint: str) -> Optional[Label]:
    """A TRY/RETRY/TRUST chain over candidate clause labels (or a
    direct jump label for the deterministic single-candidate case)."""
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    chain_label = Label(f"{name}/{arity}.{hint}")
    index_items.append(chain_label)
    index_items.append(Instruction(Op.TRY, candidates[0], arity))
    for label in candidates[1:-1]:
        index_items.append(Instruction(Op.RETRY, label, arity))
    index_items.append(Instruction(Op.TRUST, candidates[-1], arity))
    return chain_label
