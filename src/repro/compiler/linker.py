"""Static linker and assembler.

The paper's toolchain compiles and assembles on the host and links each
program "together with a small runtime library" before downloading it
to KCM (section 4).  This module is that toolchain: it

1. compiles every predicate of the program (with indexing),
2. compiles the query as a hidden predicate ``'$query'/0`` whose body
   ends in a ``'$answer'(Vars)`` escape that reports solutions,
3. generates the runtime library for every referenced built-in — either
   escape stubs, or (for ``write/1``, ``nl/0``, ``tab/1`` in the
   benchmark configuration) unit clauses costing exactly the minimal
   5-cycle call/return that section 4.2's methodology prescribes,
4. assembles everything into one absolute code image (two passes:
   address assignment, then operand resolution — all KCM branch
   targets are absolute addresses, section 3.1.3).

Static code-size accounting for Table 1 (program predicates only,
"values indicated do not include the code of the runtime library")
is exposed via :attr:`LinkedImage.program_instructions` and
:attr:`LinkedImage.program_words`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.codegen import Label
from repro.compiler.indexing import PredicateCode, compile_predicate
from repro.compiler.normalize import (
    Clause, NormalizedProgram, group_program, normalize_program,
)
from repro.core.builtins import builtin_for
from repro.core.instruction import Instruction
from repro.core.opcodes import BRANCHING_OPS, Op
from repro.core.symbols import SymbolTable
from repro.errors import LinkError
from repro.prolog.parser import parse_program, parse_term
from repro.prolog.terms import (
    Atom, Struct, Term, Var, functor_indicator, term_variables,
)

#: write-family predicates that the benchmark configuration compiles as
#: unit clauses (section 4.2).
IO_STUB_PREDICATES = {("write", 1), ("writeq", 1), ("print", 1),
                      ("nl", 0), ("tab", 1)}


@dataclass
class LinkedImage:
    """A fully linked code image ready to install into a machine."""

    code: List[Optional[Instruction]]
    entry: int
    predicates: Dict[Tuple[str, int], int]
    builtin_handlers: Dict[int, object]
    symbols: SymbolTable
    query_variable_names: List[str]
    #: per program predicate: (instructions, words).
    sizes: Dict[Tuple[str, int], Tuple[int, int]] = field(
        default_factory=dict)
    #: builtin id -> (name, arity); the picklable description of
    #: ``builtin_handlers``, from which the handlers are rebuilt on
    #: unpickle (see ``__getstate__``).
    builtin_specs: Dict[int, Tuple[str, int]] = field(default_factory=dict)

    # -- pickling (images ship to service workers, see repro.serve) ----

    def __getstate__(self) -> dict:
        """Ship the handler table as (name, arity) specs, not callables.

        The handlers are currently all module-level functions and would
        pickle by reference, but the wire format must not depend on
        handler identity: workers rebuild the table from the specs via
        :func:`repro.core.builtins.builtin_for`, so an image links
        against the *receiving* process's builtin implementations.
        """
        state = self.__dict__.copy()
        state["builtin_handlers"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        handlers: Dict[int, object] = {}
        for builtin_id, (name, arity) in self.builtin_specs.items():
            implementation = builtin_for(name, arity)
            if implementation is None:
                raise LinkError(
                    f"unpickled image references unknown builtin "
                    f"{name}/{arity}")
            handlers[builtin_id] = implementation
        self.builtin_handlers = handlers

    @property
    def program_instructions(self) -> int:
        """Static instruction count, runtime library excluded."""
        return sum(i for i, _ in self.sizes.values())

    @property
    def program_words(self) -> int:
        """Static code words (switch tables included), library excluded."""
        return sum(w for _, w in self.sizes.values())

    @property
    def program_bytes(self) -> int:
        """Static code bytes: 8 bytes per 64-bit code word."""
        return 8 * self.program_words

    def install(self, machine) -> None:
        """Load this image into a machine (which must share the symbol
        table the image was compiled against)."""
        if machine.symbols is not self.symbols:
            raise LinkError("machine and image use different symbol tables")
        machine.code = list(self.code)
        machine.predicates = dict(self.predicates)
        machine.builtins = dict(self.builtin_handlers)
        machine._stubs = {}
        # The code zone changed wholesale: the predecoded dispatch
        # table (repro.core.predecode) is stale.
        machine.invalidate_predecode()


class Linker:
    """Compile + link a program and one query."""

    #: process-wide count of full compile+link pipelines ever run; the
    #: hook the image cache's zero-recompile regression tests read
    #: (tests/test_serve_cache.py).
    links_performed = 0

    def __init__(self, symbols: Optional[SymbolTable] = None,
                 io_mode: str = "stub"):
        if io_mode not in ("stub", "real"):
            raise LinkError(f"unknown io_mode {io_mode!r}")
        self.symbols = symbols if symbols is not None else SymbolTable()
        self.io_mode = io_mode

    # -- front half: compilation ------------------------------------------------

    def link(self, program_text: str, query_text: str,
             collect_query_vars: bool = True) -> LinkedImage:
        """The whole pipeline: text in, LinkedImage out."""
        program = normalize_program(parse_program(program_text))
        query_clause, names = self._query_clause(query_text, program)
        return self.link_clauses(program, query_clause, names)

    def link_clauses(self, program: NormalizedProgram, query_clause: Clause,
                     query_names: List[str]) -> LinkedImage:
        Linker.links_performed += 1
        groups = group_program(program)
        predicate_codes: List[PredicateCode] = []
        for (name, arity), clauses in groups.items():
            predicate_codes.append(
                compile_predicate(name, arity, clauses, self.symbols))

        query_code = compile_predicate("$query", 0, [query_clause],
                                       self.symbols)

        defined = {p.indicator for p in predicate_codes}
        referenced = self._referenced_predicates(
            list(program.clauses) + [query_clause])
        library_codes, builtin_handlers, builtin_specs = \
            self._runtime_library(referenced - defined)

        all_codes = predicate_codes + library_codes + [query_code]
        code, addresses = self._assemble(all_codes)

        predicates = {p.indicator: addresses[p.entry.name]
                      for p in all_codes}
        # Static sizes cover the program plus its driver (the query
        # clause) — the paper's benchmarks are self-contained programs —
        # but never the runtime library (Table 1's stated exclusion).
        sizes = {p.indicator: (p.instruction_count, p.word_count)
                 for p in predicate_codes}
        sizes[("$query", 0)] = (query_code.instruction_count,
                                query_code.word_count)
        return LinkedImage(
            code=code,
            entry=predicates[("$query", 0)],
            predicates=predicates,
            builtin_handlers=builtin_handlers,
            symbols=self.symbols,
            query_variable_names=query_names,
            sizes=sizes,
            builtin_specs=builtin_specs,
        )

    def _query_clause(self, query_text: str, program: NormalizedProgram
                      ) -> Tuple[Clause, List[str]]:
        """Build '$query' :- Goals, '$answer'(Vars)."""
        term = parse_term(query_text)
        variables = [v for v in term_variables(term)
                     if not v.name.startswith("_")]
        names = [v.name for v in variables]
        if variables:
            answer: Term = Struct("$answer", tuple(variables))
        else:
            answer = Atom("$answer")
        from repro.compiler.normalize import (
            flatten_conjunction, _normalize_goal)
        goals: List[Term] = []
        for goal in flatten_conjunction(term):
            goals.extend(_normalize_goal(goal, program))
        goals.append(answer)
        return Clause(Atom("$query"), goals), names

    def _referenced_predicates(self, clauses: List[Clause]
                               ) -> "set[Tuple[str, int]]":
        from repro.compiler.goals import is_inline
        referenced = set()
        for clause in clauses:
            for goal in clause.goals:
                if isinstance(goal, Var):
                    continue
                if is_inline(goal):
                    continue
                referenced.add(functor_indicator(goal))
        return referenced

    # -- runtime library -----------------------------------------------------------

    def _runtime_library(self, needed: "set[Tuple[str, int]]"
                         ) -> Tuple[List[PredicateCode], Dict[int, object],
                                    Dict[int, Tuple[str, int]]]:
        library: List[PredicateCode] = []
        handlers: Dict[int, object] = {}
        specs: Dict[int, Tuple[str, int]] = {}
        next_id = 0
        for name, arity in sorted(needed):
            if self.io_mode == "stub" and (name, arity) in IO_STUB_PREDICATES:
                library.append(self._unit_clause_stub(name, arity))
                continue
            implementation = builtin_for(name, arity)
            if implementation is None:
                raise LinkError(f"undefined predicate {name}/{arity}")
            findex = self.symbols.functor_index(name, arity)
            builtin_id = next_id
            next_id += 1
            handlers[builtin_id] = implementation
            specs[builtin_id] = (name, arity)
            code = PredicateCode(name, arity)
            code.entry = Label(f"builtin:{name}/{arity}")
            code.items = [
                code.entry,
                Instruction(Op.ESCAPE, builtin_id, arity, findex),
                Instruction(Op.PROCEED),
            ]
            library.append(code)
        return library, handlers, specs

    def _unit_clause_stub(self, name: str, arity: int) -> PredicateCode:
        """write/1 etc. as a unit clause: neck + proceed = the minimal
        5-cycle call/return of section 4.2."""
        code = PredicateCode(name, arity)
        code.entry = Label(f"iostub:{name}/{arity}")
        code.items = [
            code.entry,
            Instruction(Op.NECK, arity),
            Instruction(Op.PROCEED),
        ]
        return code

    # -- back half: assembly -----------------------------------------------------------

    def _assemble(self, codes: List[PredicateCode]
                  ) -> Tuple[List[Optional[Instruction]], Dict[str, int]]:
        addresses: Dict[str, int] = {}
        pc = 0
        for code in codes:
            for item in code.items:
                if isinstance(item, Label):
                    if item.name in addresses:
                        raise LinkError(f"duplicate label {item.name}")
                    addresses[item.name] = pc
                else:
                    pc += item.size

        entry_by_pred = {code.indicator: addresses[code.entry.name]
                         for code in codes}

        def resolve(value):
            if isinstance(value, Label):
                return addresses[value.name]
            if isinstance(value, tuple) and len(value) == 3 \
                    and value[0] == "pred":
                _, name, arity = value
                target = entry_by_pred.get((name, arity))
                if target is None:
                    raise LinkError(f"undefined predicate {name}/{arity}")
                return target
            return value

        image: List[Optional[Instruction]] = [None] * pc
        pc = 0
        for code in codes:
            for item in code.items:
                if isinstance(item, Label):
                    continue
                instr = item
                if instr.op in BRANCHING_OPS:
                    instr.a = resolve(instr.a)
                elif instr.op is Op.SWITCH_ON_TERM:
                    instr.a = resolve(instr.a)
                    instr.b = resolve(instr.b)
                    instr.c = resolve(instr.c)
                    instr.d = resolve(instr.d)
                elif instr.op in (Op.SWITCH_ON_CONSTANT,
                                  Op.SWITCH_ON_STRUCTURE):
                    instr.a = {key: resolve(target)
                               for key, target in instr.a.items()}
                    instr.b = resolve(instr.b)
                image[pc] = instr
                pc += instr.size
        return image, addresses


def link_program(program_text: str, query_text: str,
                 symbols: Optional[SymbolTable] = None,
                 io_mode: str = "stub") -> LinkedImage:
    """One-call convenience wrapper around :class:`Linker`."""
    return Linker(symbols=symbols, io_mode=io_mode).link(program_text,
                                                         query_text)
