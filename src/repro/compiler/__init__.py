"""The KCM compiler toolchain: normalise, analyse, generate, index,
assemble, link (paper section 4: "code generation tools").
"""

from repro.compiler.allocate import ClauseAnalysis, analyze_clause
from repro.compiler.codegen import ClauseCompiler, compile_clause, peephole
from repro.compiler.indexing import PredicateCode, compile_predicate
from repro.compiler.linker import LinkedImage, Linker, link_program
from repro.compiler.normalize import (
    Clause, NormalizedProgram, group_program, normalize_program,
)

__all__ = [
    "ClauseAnalysis", "analyze_clause", "ClauseCompiler", "compile_clause",
    "peephole", "PredicateCode", "compile_predicate", "LinkedImage",
    "Linker", "link_program", "Clause", "NormalizedProgram",
    "group_program", "normalize_program",
]
