"""The composed KCM memory system (paper section 3.2, figure 4).

Wires together the functional store, the zone checker, the two logical
caches, the MMU and the main-memory board into the two access paths the
CPU sees:

- ``data_read`` / ``data_write`` — the data-cache path, used by the
  execution unit.  Zone check runs on every access; address translation
  only on cache misses (the caches are logical).
- ``code_fetch`` / ``code_write`` — the code-cache path used by the
  prefetch unit and by incremental code generation.

Every method returns the cycle cost of the access: 1 base cycle (the
80 ns cache access) plus any miss/write-back/page-fault penalty.  The
machine adds these to its cycle counter.  A ``timing_enabled=False``
mode skips the cache/MMU models entirely (functional simulation only),
used by tests that don't care about cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.tags import (
    ADDRESS_MASK, TAG_TYPE_SHIFT, TAG_ZONE_SHIFT, Type, Zone,
    ZONE_BY_INDEX, tag_zone,
)
from repro.core.word import Word, ZERO_WORD
from repro.memory.cache import CodeCache, DataCache
from repro.memory.layout import DEFAULT_LAYOUT, Region
from repro.memory.main_memory import MainMemory
from repro.memory.mmu import MMU
from repro.memory.store import DataStore
from repro.memory.zones import ZoneChecker


class MemorySystem:
    """Facade over the whole memory hierarchy."""

    def __init__(self,
                 layout: Optional[Dict[Zone, Region]] = None,
                 sectioned_cache: bool = True,
                 zone_check: bool = True,
                 timing_enabled: bool = True,
                 page_fault_cycles: int = 0,
                 demand_paging: bool = True):
        # page_fault_cycles defaults to 0: benchmark timings assume a
        # warm machine whose working set the host has already wired
        # (section 2.1's paging server); the paging experiments pass an
        # explicit host round-trip cost.
        #
        # demand_paging=True maps missing pages implicitly inside the
        # MMU (the warm-machine shortcut).  demand_paging=False makes a
        # missing translation raise a PageFault trap instead, which the
        # recovery subsystem's page-fault handler services — the
        # faithful model of the host paging server of section 2.1.
        self.layout = layout if layout is not None else DEFAULT_LAYOUT
        self.store = DataStore()
        self.zones = ZoneChecker(self.layout, enabled=zone_check)
        self.main_memory = MainMemory()
        self.data_cache = DataCache(self.main_memory,
                                    sectioned=sectioned_cache)
        self.code_cache = CodeCache(self.main_memory)
        self.mmu = MMU(page_fault_cycles=page_fault_cycles,
                       demand_paging=demand_paging)
        self.timing_enabled = timing_enabled

    # -- the data path ---------------------------------------------------------

    def data_read(self, address: int, zone: Zone,
                  word_type: Type = Type.DATA_PTR) -> "tuple[Word, int]":
        """Read one data word; returns ``(word, cycles)``."""
        self.zones.check(zone, address, word_type, is_write=False)
        word = self.store.read(address)
        if not self.timing_enabled:
            return word, 1
        cycles = 1 + self._data_miss_cycles(address, zone, is_write=False)
        return word, cycles

    def data_write(self, address: int, word: Word, zone: Zone,
                   word_type: Type = Type.DATA_PTR) -> int:
        """Write one data word; returns cycles."""
        self.zones.check(zone, address, word_type, is_write=True)
        self.store.write(address, word)
        if not self.timing_enabled:
            return 1
        return 1 + self._data_miss_cycles(address, zone, is_write=True)

    def _data_miss_cycles(self, address: int, zone: Zone,
                          is_write: bool) -> int:
        penalty = self.data_cache.access(address, zone, is_write)
        if penalty:
            # Logical cache: translate only on the miss.
            _, fault = self.mmu.translate(address, is_write)
            penalty += fault
        return penalty

    # -- the fused data path (predecoded execution layer) ----------------------

    def fused_data_path(self, machine) \
            -> "tuple[Callable, Callable, Callable]":
        """Build single-frame replacements for the machine's data
        accessors; returns ``(read, write, deref)`` closures.

        The layered path above costs around eight Python frames per
        access (machine wrapper, zone check, containment, store, miss
        accounting, cache, index split), which dominates host time in a
        cycle-accurate interpreter.  The closures fold the *happy* path
        — zone check passes, cache hits — into one frame, including the
        machine-side cycle/statistics accounting the seed keeps in
        :meth:`Machine._read` / :meth:`Machine._write`, and fall back
        to :meth:`ZoneChecker.check` for every violation so traps,
        messages and every counter (zone ``checks``/``violations``,
        cache hit/miss/write-back statistics, ``uninitialised_reads``,
        MMU faults, ``RunStats`` data accesses) are bit-identical.

        :meth:`Machine._execute` installs the pair for the duration of
        one run when ``fast_path`` is on and removes it afterwards; the
        ablation (``fast_path=False``) never sees them.  Built per run
        because the closures capture the run's ``RunStats``; everything
        else captured (zone table, store chunks, cache tag/dirty lists,
        counters objects) is mutated in place and never rebound.  The
        property tests in ``tests/test_props_fastpath.py`` pin the
        equivalence, including under injected faults.
        """
        zones = self.zones
        zone_enabled = zones.enabled
        entries = zones.entries
        # Zone enums are IntEnums 0..7 and the entries dict's key set is
        # fixed at construction (values are mutated in place), so a
        # 16-slot tuple turns the per-access dict hash into an index.
        zone_entry = tuple(entries.get(Zone(i)) if i < 8 else None
                           for i in range(16))
        zone_check = zones.check
        store = self.store
        chunks = store._chunks
        timing = self.timing_enabled
        cache = self.data_cache
        cstats = cache.stats
        tags = cache.tags
        dirty = cache.dirty
        sectioned = cache.sectioned
        main = cache.memory
        translate = self.mmu.translate
        stats = machine.stats
        address_mask = ADDRESS_MASK
        DATA_PTR = Type.DATA_PTR

        def read(address, zone, word_type=DATA_PTR):
            # Counter ordering mirrors the layered path exactly: the
            # store/zone/cache counters move before a trap can escape,
            # stats.data_reads and machine.cycles only after the access
            # is known to complete (an MMU page-fault trap on the miss
            # path must leave them untouched, as data_read would).
            if zone_enabled:
                entry = zone_entry[zone]
                if (entry is not None and 0 <= address <= address_mask
                        and word_type in entry.allowed_types
                        and entry.low_bound <= address < entry.high_bound):
                    entry.checks += 1
                else:
                    zone_check(zone, address, word_type, False)  # raises
            chunk = chunks.get(address >> 16)
            word = chunk[address & 0xFFFF] if chunk is not None else None
            if word is None:
                store.uninitialised_reads += 1
                word = ZERO_WORD
            if not timing:
                stats.data_reads += 1
                return word           # 1 cycle, folded into instr cost
            cstats.reads += 1
            if sectioned:
                index = ((zone & 7) << 10) | (address & 1023)
                tag = address >> 10
            else:
                index = address & 8191
                tag = address >> 13
            if tags[index] == tag:
                cstats.read_hits += 1
                stats.data_reads += 1
                return word
            cstats.misses += 1
            penalty = 0
            if tags[index] is not None and dirty[index]:
                cstats.write_backs += 1
                penalty += main.write_words(1)
            penalty += main.read_words(1)
            tags[index] = tag
            dirty[index] = False
            _, fault = translate(address, False)
            machine.cycles += penalty + fault
            stats.data_reads += 1
            return word

        def write(address, word, zone, word_type=DATA_PTR):
            undo = machine._undo_log
            if undo is not None:
                # Before anything else, exactly like Machine._write: a
                # trap mid-instruction must be able to undo writes that
                # succeeded functionally before the fault.
                undo.append((address, store.peek(address)))
            if zone_enabled:
                entry = zone_entry[zone]
                if (entry is not None and 0 <= address <= address_mask
                        and word_type in entry.allowed_types
                        and not entry.write_protected
                        and entry.low_bound <= address < entry.high_bound):
                    entry.checks += 1
                else:
                    zone_check(zone, address, word_type, True)  # raises
            chunk = chunks.get(address >> 16)
            if chunk is None:
                store.write(address, word)  # allocates the chunk
            else:
                chunk[address & 0xFFFF] = word
            if not timing:
                stats.data_writes += 1
                return
            cstats.writes += 1
            if sectioned:
                index = ((zone & 7) << 10) | (address & 1023)
                tag = address >> 10
            else:
                index = address & 8191
                tag = address >> 13
            if tags[index] == tag:
                cstats.write_hits += 1
                dirty[index] = True
                stats.data_writes += 1
                return
            cstats.misses += 1
            penalty = 0
            if tags[index] is not None and dirty[index]:
                cstats.write_backs += 1
                penalty += main.write_words(1)
            penalty += main.read_words(1)
            tags[index] = tag
            dirty[index] = True
            _, fault = translate(address, True)
            machine.cycles += penalty + fault
            stats.data_writes += 1

        # Reference-chain walking is the single hottest compound
        # operation (one read per link), so it gets its own closure
        # implementing Machine.deref semantics with the *hit* read
        # inlined per hop.  The inline path commits no counter until
        # every condition has passed; any edge (zone violation, cache
        # miss, uninitialised cell, timing off, zone checking off)
        # leaves all state untouched and re-runs the hop through
        # ``read`` above, which owns those cases.
        type_shift = TAG_TYPE_SHIFT
        zone_shift = TAG_ZONE_SHIFT
        zone_table = ZONE_BY_INDEX
        REF_TYPE = Type.REF
        ref_index = int(REF_TYPE)
        deref_cost = machine.costs.deref_per_link

        def deref(word):
            while True:
                wtag = word.tag
                if (wtag >> type_shift) & 15 != ref_index:
                    return word
                address = word.value
                zone = word.zone
                if zone is None:
                    zone = tag_zone(wtag)   # raises, as the seed would
                cell = None
                if zone_enabled and timing:
                    entry = zone_entry[zone]
                    if (entry is not None and 0 <= address <= address_mask
                            and REF_TYPE in entry.allowed_types
                            and entry.low_bound <= address
                            < entry.high_bound):
                        chunk = chunks.get(address >> 16)
                        if chunk is not None:
                            cell = chunk[address & 0xFFFF]
                if cell is not None:
                    if sectioned:
                        index = ((zone & 7) << 10) | (address & 1023)
                        line = address >> 10
                    else:
                        index = address & 8191
                        line = address >> 13
                    if tags[index] == line:
                        entry.checks += 1
                        cstats.reads += 1
                        cstats.read_hits += 1
                        stats.data_reads += 1
                    else:
                        cell = None         # miss: layered hop below
                if cell is None:
                    cell = read(address, zone, REF_TYPE)
                machine.cycles += deref_cost
                stats.dereference_links += 1
                ctag = cell.tag
                if (ctag >> type_shift) & 15 == ref_index \
                        and cell.value == address:
                    return cell             # unbound variable
                word = cell

        if store.track_dirty:
            # Incremental-checkpoint variant, chosen once at build time
            # so the idle path above never pays even a flag test per
            # write.  The wrapper only records the chunk key; the
            # store.write fallback inside ``write`` marks too, which is
            # harmless (it is a set).
            dirty_chunks = store.dirty_chunks
            plain_write = write

            def write(address, word, zone, word_type=DATA_PTR):  # noqa: F811
                dirty_chunks.add(address >> 16)
                plain_write(address, word, zone, word_type)

        return read, write, deref

    # -- the code path ---------------------------------------------------------

    def code_fetch(self, address: int) -> int:
        """Instruction fetch timing; returns cycles (content lives in
        the machine's code space, see :mod:`repro.compiler.linker`)."""
        if not self.timing_enabled:
            return 0
        penalty = self.code_cache.fetch(address)
        if penalty:
            _, fault = self.mmu.translate(address, is_write=False,
                                          code_space=True)
            penalty += fault
        return penalty

    def code_probe_state(self) -> "tuple[list, int, int]":
        """State for an inlined code-fetch *hit* probe:
        ``(line_tags, index_mask, tag_shift)``.

        The predecoded run loop (:meth:`Machine._loop_predecoded`)
        tests ``line_tags[address & index_mask] == address >> tag_shift``
        itself — a hit costs zero penalty cycles and touches nothing
        but the read counters, which the loop batches and flushes
        through :attr:`code_cache` ``.stats`` — and falls back to the
        full :meth:`code_fetch` path on a miss, so miss/prefetch/MMU
        behaviour and every counter stay bit-identical to the seed
        loop.  The tag list is mutated in place by the cache, never
        rebound, so the reference stays valid across the run.
        """
        cache = self.code_cache
        return cache.tags, cache.TOTAL_WORDS - 1, 13

    def code_write(self, address: int) -> int:
        """Incremental code generation write (straight to code cache)."""
        if not self.timing_enabled:
            return 1
        return 1 + self.code_cache.write(address)

    # -- trap servicing ----------------------------------------------------------

    def service_page_fault(self, virtual_page: int,
                           code_space: bool = False) -> int:
        """Map a faulted page in (the page-fault handler's primitive);
        returns the host service cost in cycles.  Raises
        :class:`~repro.errors.PageFault` when physical memory is
        exhausted — that one really is fatal."""
        self.mmu.map_page(virtual_page, code_space=code_space,
                          writable=True)
        self.mmu.faults += 1
        return self.mmu.page_fault_cycles

    # -- timing-state snapshot (durable checkpoints) -----------------------------

    def timing_state(self) -> Dict[str, object]:
        """Everything outside the functional store that influences
        *future* cycle counts, as one picklable dict.

        The original :class:`~repro.core.traps.MachineCheckpoint`
        deliberately treated caches and page tables as expendable — fine
        for restoring onto the machine that captured them (its warm
        state is a superset), but resuming on a *fresh* machine must
        reproduce cache tags, MMU translations and every statistics
        counter or the resumed run's cycle accounting diverges from the
        uninterrupted run.  Mirrors :meth:`reset_for_reuse`'s inventory
        of state a run dirties.
        """
        data_cache = self.data_cache
        code_cache = self.code_cache
        main = self.main_memory
        mmu = self.mmu
        entries = {}
        for virtual_page, code_space in mmu._touched:
            entry = mmu._table(code_space)[virtual_page]
            entries[(virtual_page, code_space)] = (entry.status,
                                                   entry.physical_page)
        return {
            "data_tags": list(data_cache.tags),
            "data_dirty": list(data_cache.dirty),
            "data_stats": vars(data_cache.stats).copy(),
            "code_tags": list(code_cache.tags),
            "code_stats": vars(code_cache.stats).copy(),
            "main_memory": {
                "reads": main.reads, "writes": main.writes,
                "words_read": main.words_read,
                "words_written": main.words_written,
            },
            "mmu": {
                "entries": entries,
                "next_free_page": mmu.next_free_page,
                "faults": mmu.faults,
                "translations": mmu.translations,
                "demand_paging": mmu.demand_paging,
            },
            "uninitialised_reads": self.store.uninitialised_reads,
            "zone_checks": {zone: entry.checks
                            for zone, entry in self.zones.entries.items()},
            "zone_violations": self.zones.violations,
        }

    def restore_timing_state(self, state: Dict[str, object]) -> None:
        """Put the hierarchy back into a :meth:`timing_state` snapshot.

        Containers are mutated in place, never rebound — the fused data
        path and the predecoded loop's code probe hold references to
        the tag/dirty lists and the statistics objects.
        """
        self.data_cache.tags[:] = state["data_tags"]
        self.data_cache.dirty[:] = state["data_dirty"]
        for name, value in state["data_stats"].items():
            setattr(self.data_cache.stats, name, value)
        self.code_cache.tags[:] = state["code_tags"]
        for name, value in state["code_stats"].items():
            setattr(self.code_cache.stats, name, value)
        main = state["main_memory"]
        self.main_memory.reads = main["reads"]
        self.main_memory.writes = main["writes"]
        self.main_memory.words_read = main["words_read"]
        self.main_memory.words_written = main["words_written"]
        mmu = self.mmu
        saved = state["mmu"]
        for virtual_page, code_space in mmu._touched:
            entry = mmu._table(code_space)[virtual_page]
            entry.status = 0
            entry.physical_page = 0
        mmu._touched.clear()
        for (virtual_page, code_space), (status, physical) \
                in saved["entries"].items():
            entry = mmu._table(code_space)[virtual_page]
            entry.status = status
            entry.physical_page = physical
            mmu._touched.add((virtual_page, code_space))
        mmu.next_free_page = saved["next_free_page"]
        mmu.faults = saved["faults"]
        mmu.translations = saved["translations"]
        mmu.demand_paging = saved["demand_paging"]
        self.store.uninitialised_reads = state["uninitialised_reads"]
        for zone, checks in state["zone_checks"].items():
            self.zones.entries[zone].checks = checks
        self.zones.violations = state["zone_violations"]

    # -- engine reuse ------------------------------------------------------------

    def reset_for_reuse(self) -> None:
        """Return the whole hierarchy to its just-constructed state.

        The warm-machine-pool path (:meth:`Machine.reset_for_reuse`):
        a reused engine must present *cold* caches, an empty store,
        layout-pristine zone limits and a clean MMU, or its simulated
        statistics diverge from a fresh machine's.  Every container is
        mutated in place, never rebound — the fused data path and the
        predecoded loop's code probe capture ``store._chunks``,
        ``data_cache.tags``/``dirty`` and ``code_cache.tags`` by
        reference.
        """
        self.store._chunks.clear()
        self.store.uninitialised_reads = 0
        self.store.dirty_chunks.clear()
        self.zones.reset_limits()
        self.data_cache.tags[:] = [None] * DataCache.TOTAL_WORDS
        self.data_cache.dirty[:] = [False] * DataCache.TOTAL_WORDS
        self.code_cache.invalidate()
        self.mmu.reset()
        self.reset_statistics()

    # -- statistics --------------------------------------------------------------

    def reset_statistics(self) -> None:
        """Zero every counter in the hierarchy (between benchmark runs)
        without disturbing cache/page-table contents."""
        self.data_cache.stats.reset()
        self.code_cache.stats.reset()
        self.main_memory.reset_statistics()

    def statistics(self) -> Dict[str, float]:
        """A flat snapshot of the interesting counters."""
        return {
            "data_accesses": self.data_cache.stats.accesses,
            "data_hit_ratio": self.data_cache.stats.hit_ratio,
            "data_write_backs": self.data_cache.stats.write_backs,
            "code_fetches": self.code_cache.stats.reads,
            "code_hit_ratio": self.code_cache.stats.hit_ratio,
            "memory_words_read": self.main_memory.words_read,
            "memory_words_written": self.main_memory.words_written,
            "page_faults": self.mmu.faults,
        }
