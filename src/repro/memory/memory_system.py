"""The composed KCM memory system (paper section 3.2, figure 4).

Wires together the functional store, the zone checker, the two logical
caches, the MMU and the main-memory board into the two access paths the
CPU sees:

- ``data_read`` / ``data_write`` — the data-cache path, used by the
  execution unit.  Zone check runs on every access; address translation
  only on cache misses (the caches are logical).
- ``code_fetch`` / ``code_write`` — the code-cache path used by the
  prefetch unit and by incremental code generation.

Every method returns the cycle cost of the access: 1 base cycle (the
80 ns cache access) plus any miss/write-back/page-fault penalty.  The
machine adds these to its cycle counter.  A ``timing_enabled=False``
mode skips the cache/MMU models entirely (functional simulation only),
used by tests that don't care about cycles.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.tags import Type, Zone
from repro.core.word import Word
from repro.memory.cache import CodeCache, DataCache
from repro.memory.layout import DEFAULT_LAYOUT, Region
from repro.memory.main_memory import MainMemory
from repro.memory.mmu import MMU
from repro.memory.store import DataStore
from repro.memory.zones import ZoneChecker


class MemorySystem:
    """Facade over the whole memory hierarchy."""

    def __init__(self,
                 layout: Optional[Dict[Zone, Region]] = None,
                 sectioned_cache: bool = True,
                 zone_check: bool = True,
                 timing_enabled: bool = True,
                 page_fault_cycles: int = 0,
                 demand_paging: bool = True):
        # page_fault_cycles defaults to 0: benchmark timings assume a
        # warm machine whose working set the host has already wired
        # (section 2.1's paging server); the paging experiments pass an
        # explicit host round-trip cost.
        #
        # demand_paging=True maps missing pages implicitly inside the
        # MMU (the warm-machine shortcut).  demand_paging=False makes a
        # missing translation raise a PageFault trap instead, which the
        # recovery subsystem's page-fault handler services — the
        # faithful model of the host paging server of section 2.1.
        self.layout = layout if layout is not None else DEFAULT_LAYOUT
        self.store = DataStore()
        self.zones = ZoneChecker(self.layout, enabled=zone_check)
        self.main_memory = MainMemory()
        self.data_cache = DataCache(self.main_memory,
                                    sectioned=sectioned_cache)
        self.code_cache = CodeCache(self.main_memory)
        self.mmu = MMU(page_fault_cycles=page_fault_cycles,
                       demand_paging=demand_paging)
        self.timing_enabled = timing_enabled

    # -- the data path ---------------------------------------------------------

    def data_read(self, address: int, zone: Zone,
                  word_type: Type = Type.DATA_PTR) -> "tuple[Word, int]":
        """Read one data word; returns ``(word, cycles)``."""
        self.zones.check(zone, address, word_type, is_write=False)
        word = self.store.read(address)
        if not self.timing_enabled:
            return word, 1
        cycles = 1 + self._data_miss_cycles(address, zone, is_write=False)
        return word, cycles

    def data_write(self, address: int, word: Word, zone: Zone,
                   word_type: Type = Type.DATA_PTR) -> int:
        """Write one data word; returns cycles."""
        self.zones.check(zone, address, word_type, is_write=True)
        self.store.write(address, word)
        if not self.timing_enabled:
            return 1
        return 1 + self._data_miss_cycles(address, zone, is_write=True)

    def _data_miss_cycles(self, address: int, zone: Zone,
                          is_write: bool) -> int:
        penalty = self.data_cache.access(address, zone, is_write)
        if penalty:
            # Logical cache: translate only on the miss.
            _, fault = self.mmu.translate(address, is_write)
            penalty += fault
        return penalty

    # -- the code path ---------------------------------------------------------

    def code_fetch(self, address: int) -> int:
        """Instruction fetch timing; returns cycles (content lives in
        the machine's code space, see :mod:`repro.compiler.linker`)."""
        if not self.timing_enabled:
            return 0
        penalty = self.code_cache.fetch(address)
        if penalty:
            _, fault = self.mmu.translate(address, is_write=False,
                                          code_space=True)
            penalty += fault
        return penalty

    def code_write(self, address: int) -> int:
        """Incremental code generation write (straight to code cache)."""
        if not self.timing_enabled:
            return 1
        return 1 + self.code_cache.write(address)

    # -- trap servicing ----------------------------------------------------------

    def service_page_fault(self, virtual_page: int,
                           code_space: bool = False) -> int:
        """Map a faulted page in (the page-fault handler's primitive);
        returns the host service cost in cycles.  Raises
        :class:`~repro.errors.PageFault` when physical memory is
        exhausted — that one really is fatal."""
        self.mmu.map_page(virtual_page, code_space=code_space,
                          writable=True)
        self.mmu.faults += 1
        return self.mmu.page_fault_cycles

    # -- statistics --------------------------------------------------------------

    def reset_statistics(self) -> None:
        """Zero every counter in the hierarchy (between benchmark runs)
        without disturbing cache/page-table contents."""
        self.data_cache.stats.reset()
        self.code_cache.stats.reset()
        self.main_memory.reset_statistics()

    def statistics(self) -> Dict[str, float]:
        """A flat snapshot of the interesting counters."""
        return {
            "data_accesses": self.data_cache.stats.accesses,
            "data_hit_ratio": self.data_cache.stats.hit_ratio,
            "data_write_backs": self.data_cache.stats.write_backs,
            "code_fetches": self.code_cache.stats.reads,
            "code_hit_ratio": self.code_cache.stats.hit_ratio,
            "memory_words_read": self.main_memory.words_read,
            "memory_words_written": self.main_memory.words_written,
            "page_faults": self.mmu.faults,
        }
