"""The two logical caches (paper section 3.2.4).

Both caches operate on virtual addresses (logical caches — no address
translation on hits, flushing is a non-issue on a single-task machine).

Data cache
    8K x 64 bits, direct mapped, line size one, *copy-back* (store-in):
    Prolog's read:write ratio of about 1:1 makes write-through
    wasteful.  The KCM twist: the cache is split into 8 sections of
    1K words each, selected by the **zone field of the address word**,
    so different stacks can never evict each other even when their
    top-of-stack pointers are congruent modulo the cache size.
    ``sectioned=False`` gives the plain direct-mapped variant used as
    the baseline in the section 3.2.4 collision experiment.

Code cache
    8K x 64 bits, direct mapped, line size one, *write-through* (code
    is almost never written), with page-mode prefetch of a few words
    ahead on a miss.

Both are timing models over the functional store: they track which
addresses would be resident and charge miss/write-back cycles, while
word contents live in :class:`repro.memory.store.DataStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tags import Zone
from repro.memory.main_memory import MainMemory


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for one cache."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    misses: int = 0
    write_backs: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        """Total hits."""
        return self.read_hits + self.write_hits

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses (1.0 when idle, so cold tests read sanely)."""
        total = self.accesses
        return (self.hits / total) if total else 1.0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = self.writes = 0
        self.read_hits = self.write_hits = 0
        self.misses = self.write_backs = 0


class DataCache:
    """The zone-sectioned, direct-mapped, copy-back data cache.

    ``access`` returns the cycle *penalty* beyond the single base cycle
    every data access costs (80 ns hit time): 0 on a hit, a main-memory
    fetch on a miss, plus a write-back when the evicted line is dirty.
    """

    #: Total size in words (8K) and number of zone-selected sections.
    TOTAL_WORDS = 8 * 1024
    SECTIONS = 8

    def __init__(self, memory: MainMemory, sectioned: bool = True):
        self.memory = memory
        self.sectioned = sectioned
        self.section_words = self.TOTAL_WORDS // self.SECTIONS  # 1K
        # One flat array of line tags and dirty flags; index layout is
        # section*1K + (address mod 1K) when sectioned, address mod 8K
        # when plain.  Tag None == invalid line.
        self.tags = [None] * self.TOTAL_WORDS
        self.dirty = [False] * self.TOTAL_WORDS
        self.stats = CacheStats()

    def _index_and_tag(self, address: int, zone: Zone) -> "tuple[int, int]":
        if self.sectioned:
            section = int(zone) & (self.SECTIONS - 1)
            index = section * self.section_words \
                + (address & (self.section_words - 1))
            tag = address >> 10
        else:
            index = address & (self.TOTAL_WORDS - 1)
            tag = address >> 13
        return index, tag

    def access(self, address: int, zone: Zone, is_write: bool) -> int:
        """One word access; returns penalty cycles beyond the base cycle."""
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        index, tag = self._index_and_tag(address, zone)
        if self.tags[index] == tag:
            if is_write:
                stats.write_hits += 1
                self.dirty[index] = True
            else:
                stats.read_hits += 1
            return 0
        # Miss: write back the victim if dirty, then allocate the line.
        penalty = 0
        stats.misses += 1
        if self.tags[index] is not None and self.dirty[index]:
            stats.write_backs += 1
            penalty += self.memory.write_words(1)
        # Copy-back caches allocate on both read and write misses.
        penalty += self.memory.read_words(1)
        self.tags[index] = tag
        self.dirty[index] = is_write
        return penalty

    def flush(self) -> int:
        """Write back all dirty lines and invalidate; returns cycles.
        (Used by the runtime when re-zoning pages, section 3.2.1.)"""
        cycles = 0
        for i in range(self.TOTAL_WORDS):
            if self.tags[i] is not None and self.dirty[i]:
                cycles += self.memory.write_words(1)
                self.stats.write_backs += 1
            self.tags[i] = None
            self.dirty[i] = False
        return cycles

    def resident(self, address: int, zone: Zone) -> bool:
        """Whether ``address`` currently hits (inspection for tests)."""
        index, tag = self._index_and_tag(address, zone)
        return self.tags[index] == tag


class CodeCache:
    """The 8K-word write-through code cache with page-mode prefetch.

    On a read miss the controller fetches ``prefetch_words`` consecutive
    words using the memory's page mode ("fetching a few words ahead when
    a miss occurs"), so straight-line code pays one miss per burst.

    Writes go straight through to memory *and* update the cache —
    incrementally generated code is written directly to the code cache
    (section 3.2.1).
    """

    TOTAL_WORDS = 8 * 1024

    def __init__(self, memory: MainMemory, prefetch_words: int = 4):
        self.memory = memory
        self.prefetch_words = prefetch_words
        self.tags = [None] * self.TOTAL_WORDS
        self.stats = CacheStats()

    def fetch(self, address: int) -> int:
        """Instruction fetch; returns penalty cycles beyond the base
        80 ns read."""
        stats = self.stats
        stats.reads += 1
        index = address & (self.TOTAL_WORDS - 1)
        tag = address >> 13
        if self.tags[index] == tag:
            stats.read_hits += 1
            return 0
        stats.misses += 1
        penalty = self.memory.read_words(self.prefetch_words)
        # Install the prefetched burst.
        for i in range(self.prefetch_words):
            a = address + i
            self.tags[a & (self.TOTAL_WORDS - 1)] = a >> 13
        return penalty

    def write(self, address: int) -> int:
        """Code-space write (incremental compilation); write-through."""
        self.stats.writes += 1
        index = address & (self.TOTAL_WORDS - 1)
        self.tags[index] = address >> 13
        self.stats.write_hits += 1
        return self.memory.write_words(1)

    def invalidate(self) -> None:
        """Invalidate the whole cache (batch code generation hand-over,
        section 3.2.1).  In place: the run loop's inlined hit probe
        (:meth:`MemorySystem.code_probe_state`) holds a reference to
        the tag list."""
        self.tags[:] = [None] * self.TOTAL_WORDS
