"""KCM memory system: zones, caches, MMU, main memory, backing store.

See paper section 3.2.  :class:`MemorySystem` is the facade the machine
uses; the individual components are importable for targeted tests and
the cache-collision experiment.
"""

from repro.memory.cache import CacheStats, CodeCache, DataCache
from repro.memory.layout import (
    DATA_SPACE_WORDS, DEFAULT_LAYOUT, Region, initial_stack_pointer,
    validate_layout,
)
from repro.memory.main_memory import MainMemory, MemoryTiming
from repro.memory.memory_system import MemorySystem
from repro.memory.mmu import MMU, PageTableEntry
from repro.memory.store import DataStore
from repro.memory.zones import ZoneChecker, ZoneEntry

__all__ = [
    "CacheStats", "CodeCache", "DataCache",
    "DATA_SPACE_WORDS", "DEFAULT_LAYOUT", "Region",
    "initial_stack_pointer", "validate_layout",
    "MainMemory", "MemoryTiming", "MemorySystem",
    "MMU", "PageTableEntry", "DataStore", "ZoneChecker", "ZoneEntry",
]
