"""Memory management unit (paper section 3.2.5).

KCM holds the *entire* page table in a dedicated RAM (32K entries of
16 bits: 16K virtual pages for the code space and 16K for the data
space), so translation never walks main memory and needs no TLB — a
luxury a single-task machine can afford.  Each entry packs 5 status
bits and an 11-bit physical page number; pages are 16K words.

Because the caches are logical, the MMU only acts on cache *misses*:
translation is overlapped with the DRAM setup and costs no extra
cycles on the translation itself.  What does cost time is a **page
fault**: the host workstation services paging for KCM (section 2.1),
and the round trip is modelled with a configurable cycle charge.

The model allocates physical pages on demand from the 32 MB board
(2048 physical pages of 16K words each with 1 Mbit parts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.tags import PAGE_SIZE_WORDS, page_number, page_offset
from repro.errors import PageFault, ProtectionFault

# Entry status bits (5 bits per the paper; assignment is ours).
VALID = 1 << 0
WRITABLE = 1 << 1
DIRTY = 1 << 2
REFERENCED = 1 << 3
CODE_SPACE = 1 << 4

#: 16K virtual pages per address space (28-bit word addresses).
VIRTUAL_PAGES = 1 << 14


@dataclass
class PageTableEntry:
    """One 16-bit page-table RAM entry: status bits + physical page."""

    status: int = 0
    physical_page: int = 0

    @property
    def valid(self) -> bool:
        """Whether the translation is usable."""
        return bool(self.status & VALID)


class MMU:
    """Page-table RAM plus on-demand physical allocation.

    ``translate`` is called by the memory system on cache misses; it
    returns ``(physical_address, fault_cycles)`` where ``fault_cycles``
    is zero unless the host had to map the page in.
    """

    def __init__(self, physical_pages: int = 2048,
                 page_fault_cycles: int = 2000,
                 demand_paging: bool = True):
        self.data_table: List[PageTableEntry] = [
            PageTableEntry() for _ in range(VIRTUAL_PAGES)]
        self.code_table: List[PageTableEntry] = [
            PageTableEntry() for _ in range(VIRTUAL_PAGES)]
        self.physical_pages = physical_pages
        self.page_fault_cycles = page_fault_cycles
        self.demand_paging = demand_paging
        self._demand_paging_default = demand_paging
        self.next_free_page = 0
        self.faults = 0
        self.translations = 0
        # Every (virtual_page, code_space) pair ever installed, so
        # reset() can clear exactly the entries that were touched
        # instead of rebuilding 32K PageTableEntry objects — the
        # rebuild would cost milliseconds per reuse, longer than a
        # short query runs.
        self._touched: set = set()

    # -- host/runtime interface ------------------------------------------------

    def _table(self, code_space: bool) -> List[PageTableEntry]:
        return self.code_table if code_space else self.data_table

    def map_page(self, virtual_page: int, code_space: bool = False,
                 writable: bool = True,
                 physical_page: Optional[int] = None) -> int:
        """Install a translation; allocates a physical page if needed."""
        if physical_page is None:
            if self.next_free_page >= self.physical_pages:
                raise PageFault("out of physical memory (32 MB board full)",
                                virtual_page=virtual_page,
                                code_space=code_space)
            physical_page = self.next_free_page
            self.next_free_page += 1
        entry = self._table(code_space)[virtual_page]
        entry.physical_page = physical_page
        entry.status = VALID | (WRITABLE if writable else 0) \
            | (CODE_SPACE if code_space else 0)
        self._touched.add((virtual_page, code_space))
        return physical_page

    def reset(self) -> None:
        """Return the MMU to its just-constructed state (engine reuse).

        Clears only the page-table entries :meth:`map_page` ever
        touched, zeroes the fault/translation counters, releases every
        physical page and restores the constructor's ``demand_paging``
        setting (the fault injector flips it while attached).
        """
        for virtual_page, code_space in self._touched:
            entry = self._table(code_space)[virtual_page]
            entry.status = 0
            entry.physical_page = 0
        self._touched.clear()
        self.next_free_page = 0
        self.faults = 0
        self.translations = 0
        self.demand_paging = self._demand_paging_default

    def unmap_page(self, virtual_page: int, code_space: bool = False) -> None:
        """Invalidate a translation (used when re-zoning a data page into
        the code space after batch compilation, section 3.2.1, and by the
        fault injector to plant transient page faults)."""
        self._table(code_space)[virtual_page].status = 0

    def resident_pages(self, code_space: bool = False) -> "List[int]":
        """Virtual pages with a valid translation, ascending (used by
        the fault injector to pick an eviction victim and by paging
        diagnostics)."""
        return [vpage for vpage, entry
                in enumerate(self._table(code_space)) if entry.valid]

    def is_mapped(self, virtual_page: int, code_space: bool = False) -> bool:
        """Whether a virtual page currently has a valid translation."""
        return self._table(code_space)[virtual_page].valid

    def rezone_data_page_to_code(self, virtual_page: int) -> None:
        """The section 3.2.1 hand-over: invalidate the virtual data page
        and attach its physical page to the code space."""
        data_entry = self.data_table[virtual_page]
        if not data_entry.valid:
            raise PageFault(f"data page {virtual_page} not mapped",
                            virtual_page=virtual_page)
        physical = data_entry.physical_page
        data_entry.status = 0
        self.map_page(virtual_page, code_space=True, writable=False,
                      physical_page=physical)

    # -- translation -----------------------------------------------------------

    def translate(self, address: int, is_write: bool,
                  code_space: bool = False) -> "tuple[int, int]":
        """Translate a virtual word address on a cache miss.

        Returns ``(physical_address, extra_cycles)``.  Raises
        :class:`ProtectionFault` on a write to a read-only page and
        :class:`PageFault` when the page is absent and demand paging is
        disabled (or physical memory is exhausted).
        """
        self.translations += 1
        vpage = page_number(address)
        entry = self._table(code_space)[vpage]
        fault_cycles = 0
        if not entry.valid:
            if not self.demand_paging:
                raise PageFault(
                    f"no translation for virtual page {vpage} "
                    f"({'code' if code_space else 'data'} space)",
                    virtual_page=vpage, code_space=code_space)
            self.faults += 1
            self.map_page(vpage, code_space=code_space, writable=True)
            entry = self._table(code_space)[vpage]
            fault_cycles = self.page_fault_cycles
        if is_write and not (entry.status & WRITABLE):
            raise ProtectionFault(
                f"write to read-only page {vpage} "
                f"({'code' if code_space else 'data'} space)",
                virtual_page=vpage, code_space=code_space)
        entry.status |= REFERENCED | (DIRTY if is_write else 0)
        physical = entry.physical_page * PAGE_SIZE_WORDS \
            + page_offset(address)
        return physical, fault_cycles
