"""The zone check: access-right verification at the virtual level
(paper section 3.2.3).

Each stack and memory area is mapped to a zone defined by a start and
end address; the check verifies, on every data-cache access, that

1. the 4 most significant address bits (31..28) are zero,
2. the address lies between the zone's current minimum and maximum
   (with 4K-word granularity, matching the special RAM field the
   hardware compares against), and
3. the *type* of the word used as an address is allowed for the zone
   (e.g. a float may never address memory; lists may point into the
   global stack but not into the local stack),

and that no write hits a write-protected zone.  Zone limits may be
changed dynamically, which is how the runtime monitors stack sizes,
detects overflow/collision and can trigger garbage collection.

The check is combinational hardware running in parallel with the cache
access, so it contributes no cycles; it only raises traps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.core.tags import (
    ADDRESS_MASK, Type, Zone, ZONE_ADDRESS_TYPES, ZONE_GRANULE_WORDS,
    address_in_range,
)
from repro.errors import StackOverflowTrap, ZoneTrap
from repro.memory.layout import DEFAULT_LAYOUT, Region


def _granule_floor(address: int) -> int:
    return address - (address % ZONE_GRANULE_WORDS)


def _granule_ceil(address: int) -> int:
    return -(-address // ZONE_GRANULE_WORDS) * ZONE_GRANULE_WORDS


@dataclass
class ZoneEntry:
    """One zone's dynamic state: limits, allowed types, protection."""

    zone: Zone
    min_address: int
    max_address: int           # exclusive
    allowed_types: FrozenSet[Type]
    write_protected: bool = False
    #: Count of checks performed against this zone (statistics only).
    checks: int = field(default=0, repr=False)
    #: Granule-rounded limits, derived from min/max by
    #: :meth:`refresh_bounds`.  Every limit mutation funnels through
    #: :meth:`ZoneChecker.set_limits` / :meth:`ZoneChecker.reset_limits`
    #: (which refresh), so the hot accessors compare against these two
    #: integers instead of re-rounding per access.
    low_bound: int = field(default=0, repr=False)
    high_bound: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.refresh_bounds()

    def refresh_bounds(self) -> None:
        self.low_bound = _granule_floor(self.min_address)
        self.high_bound = _granule_ceil(self.max_address)

    def contains(self, address: int) -> bool:
        """Granule-level containment test, as the hardware comparator
        sees it (bits 27..12 against the RAM field)."""
        return self.low_bound <= address < self.high_bound


class ZoneChecker:
    """Holds the zone table and performs the three-part check."""

    def __init__(self, layout: Optional[Dict[Zone, Region]] = None,
                 enabled: bool = True):
        layout = layout if layout is not None else DEFAULT_LAYOUT
        self.enabled = enabled
        self._layout: Dict[Zone, Region] = dict(layout)
        self.entries: Dict[Zone, ZoneEntry] = {}
        for zone, region in layout.items():
            allowed = ZONE_ADDRESS_TYPES.get(zone, frozenset())
            self.entries[zone] = ZoneEntry(
                zone=zone,
                min_address=region.base,
                max_address=region.limit,
                allowed_types=allowed,
            )
        self.violations = 0

    def reset_limits(self) -> None:
        """Restore every zone to its constructor layout (engine reuse).

        Growth handlers and the fault injector move limits during a
        run; a reused machine must start from the pristine layout or
        its overflow traps fire at different addresses than a fresh
        machine's would.  Entries are mutated in place — the fused data
        path captures the ``entries`` dict.
        """
        for zone, region in self._layout.items():
            entry = self.entries[zone]
            entry.min_address = region.base
            entry.max_address = region.limit
            entry.refresh_bounds()
            entry.write_protected = False
            entry.checks = 0
        self.violations = 0

    # -- dynamic reconfiguration (runtime system interface) ------------------

    def set_limits(self, zone: Zone, min_address: int,
                   max_address: int) -> None:
        """Move a zone's limits; how the runtime grows/shrinks stacks."""
        entry = self.entries[zone]
        entry.min_address = min_address
        entry.max_address = max_address
        entry.refresh_bounds()

    def move_limits(self, zone: Zone, min_address: int,
                    max_address: int) -> None:
        """Validated limit move: the primitive the stack-growth trap
        handlers use (see :mod:`repro.recovery`).

        Unlike the raw :meth:`set_limits`, this refuses (``ValueError``)
        a move that would make the zone's *granule* range — what the
        hardware comparators actually see — collide with another zone's,
        or that is degenerate (``min > max``) or outside the 28-bit
        address space.  Stacks may therefore grow beyond their initial
        layout region into unclaimed address space, but never into one
        another.
        """
        if min_address > max_address:
            raise ValueError(
                f"degenerate limits for zone {zone.name}: "
                f"[{min_address:#x}, {max_address:#x})")
        if not (address_in_range(min_address)
                and address_in_range(max_address)):
            raise ValueError(
                f"limits for zone {zone.name} outside the 28-bit "
                f"address space")
        new_low = _granule_floor(min_address)
        new_high = _granule_ceil(max_address)
        for other, entry in self.entries.items():
            if other is zone:
                continue
            low = _granule_floor(entry.min_address)
            high = _granule_ceil(entry.max_address)
            if new_low < high and low < new_high:
                raise ValueError(
                    f"zone {zone.name} limits [{min_address:#x}, "
                    f"{max_address:#x}) would overlap zone {other.name} "
                    f"[{entry.min_address:#x}, {entry.max_address:#x})")
        self.set_limits(zone, min_address, max_address)

    def headroom(self, zone: Zone) -> int:
        """Words the zone's granule ceiling could grow before colliding
        with the nearest zone above (or the end of the address space)."""
        entry = self.entries[zone]
        top = _granule_ceil(entry.max_address)
        nearest = ADDRESS_MASK + 1
        for other, candidate in self.entries.items():
            if other is zone:
                continue
            low = _granule_floor(candidate.min_address)
            if low >= top:
                nearest = min(nearest, low)
        return nearest - top

    def set_write_protected(self, zone: Zone, protected: bool) -> None:
        """Toggle write protection on a whole zone."""
        self.entries[zone].write_protected = protected

    # -- the check itself -----------------------------------------------------

    def check(self, zone: Zone, address: int, word_type: Type,
              is_write: bool) -> None:
        """Verify one access; raises :class:`ZoneTrap` subclasses.

        ``zone`` and ``word_type`` come from the tag part of the address
        word driving the access; ``address`` is its value part.
        """
        if not self.enabled:
            return
        if not address_in_range(address):
            raise ZoneTrap(
                f"address {address:#x} has non-zero high bits (zone "
                f"{zone.name})", zone=zone, address=address)
        entry = self.entries.get(zone)
        if entry is None:
            self.violations += 1
            raise ZoneTrap(f"access through unmapped zone {zone.name} "
                           f"at {address:#x}", zone=zone, address=address)
        entry.checks += 1
        if word_type not in entry.allowed_types:
            self.violations += 1
            raise ZoneTrap(
                f"type {word_type.name} not allowed as an address into "
                f"zone {zone.name} (address {address:#x})",
                zone=zone, address=address)
        if not entry.contains(address):
            self.violations += 1
            raise StackOverflowTrap(
                f"address {address:#x} outside zone {zone.name} limits "
                f"[{entry.min_address:#x}, {entry.max_address:#x})",
                zone=zone, address=address)
        if is_write and entry.write_protected:
            self.violations += 1
            raise ZoneTrap(f"write to write-protected zone {zone.name} "
                           f"at {address:#x}", zone=zone, address=address)
