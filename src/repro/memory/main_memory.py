"""Main memory board model (paper section 3.2.6).

One board holds 32 MBytes (4 M words) behind a 32-bit data bus; a fast
page mode pairs two 32-bit accesses into one 64-bit KCM word and also
prefetches ahead for the code cache.  The model is a *timing* model:
it answers "how many CPU cycles does this transfer cost", while the
word contents live in the functional store (:class:`DataStore`).

Timing parameters live in :class:`MemoryTiming`; the defaults follow
the paper's figures (80 ns CPU cycle; page-mode cycle time of 120 ns —
the text prints "120 ps", an evident typo for nanoseconds given 1988
DRAM).  A 64-bit word therefore needs one full RAS access plus one
page-mode access, and each further word of a prefetch burst one more
page-mode access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.layout import DATA_SPACE_WORDS


@dataclass(frozen=True)
class MemoryTiming:
    """DRAM timing in CPU cycles (80 ns each).

    ``first_access_cycles`` covers the full RAS/CAS access of the first
    32-bit half; ``page_mode_cycles`` each further 32-bit half within
    the open page (120 ns / 80 ns rounded up = 2 cycles).
    """

    first_access_cycles: int = 3
    page_mode_cycles: int = 2

    def word_cycles(self, words: int = 1) -> int:
        """Cycles to transfer ``words`` consecutive 64-bit words: the
        first 32-bit half pays full access, every further half runs in
        page mode."""
        halves = 2 * words
        return (self.first_access_cycles
                + (halves - 1) * self.page_mode_cycles)


@dataclass
class MainMemory:
    """One 32 MB memory board: capacity accounting plus transfer timing.

    ``read_words``/``write_words`` return the cycle cost of the
    transfer and keep traffic statistics used by the evaluation
    harness (Prolog's read:write ratio of about 1:1, section 3.2.4,
    shows up directly in these counters).
    """

    words: int = DATA_SPACE_WORDS
    timing: MemoryTiming = field(default_factory=MemoryTiming)
    reads: int = 0
    writes: int = 0
    words_read: int = 0
    words_written: int = 0

    def read_words(self, count: int = 1) -> int:
        """Account a read burst of ``count`` words; returns cycles."""
        self.reads += 1
        self.words_read += count
        return self.timing.word_cycles(count)

    def write_words(self, count: int = 1) -> int:
        """Account a write burst of ``count`` words; returns cycles."""
        self.writes += 1
        self.words_written += count
        return self.timing.word_cycles(count)

    def reset_statistics(self) -> None:
        """Zero the traffic counters (between benchmark runs)."""
        self.reads = self.writes = 0
        self.words_read = self.words_written = 0
