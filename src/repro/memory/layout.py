"""The default data-space memory map.

The paper maps every stack and data area to a *zone* (section 3.2.2);
the concrete placement of zones in the 28-bit virtual data space is an
implementation choice.  This layout uses 4 M words total — exactly the
32 MBytes one KCM memory board provides (section 3.2.6) — with every
zone base aligned to the 4K-word zone-check granule and to the 16K-word
page size.

All sizes and bases are in 64-bit *words* (KCM addresses are word
addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.tags import Zone, ZONE_GRANULE_WORDS, PAGE_SIZE_WORDS


@dataclass(frozen=True)
class Region:
    """One zone's placement: [base, base + size) and growth direction."""

    zone: Zone
    base: int
    size: int
    grows_up: bool = True

    @property
    def limit(self) -> int:
        """One past the last valid address."""
        return self.base + self.size


#: The default map.  GLOBAL (heap) is the largest area since lists and
#: structures live there; LOCAL and CONTROL get generous stack room;
#: the TRAIL is smaller, as only conditional bindings land on it.
DEFAULT_LAYOUT: Dict[Zone, Region] = {
    Zone.STATIC: Region(Zone.STATIC, 0x000000, 0x010000),
    Zone.GLOBAL: Region(Zone.GLOBAL, 0x040000, 0x140000),
    Zone.LOCAL: Region(Zone.LOCAL, 0x180000, 0x0C0000),
    Zone.CONTROL: Region(Zone.CONTROL, 0x240000, 0x0C0000),
    Zone.TRAIL: Region(Zone.TRAIL, 0x300000, 0x080000),
    Zone.SYSTEM: Region(Zone.SYSTEM, 0x380000, 0x010000),
}

#: Total words of data space the default layout can touch; the backing
#: store and the MMU physical memory are sized from this.
DATA_SPACE_WORDS = 0x400000  # 4 M words == 32 MB == one memory board


def validate_layout(layout: Dict[Zone, Region]) -> None:
    """Check alignment and non-overlap; raises ValueError on problems.

    Bases must be aligned to both the zone-check granule (4K words,
    section 3.2.3) and the page size (16K words, section 3.2.5) so the
    hardware comparators and the page table can describe them exactly.
    """
    regions = sorted(layout.values(), key=lambda r: r.base)
    previous_limit = 0
    for region in regions:
        if region.base % ZONE_GRANULE_WORDS:
            raise ValueError(f"{region.zone.name} base not granule-aligned")
        if region.base % PAGE_SIZE_WORDS:
            raise ValueError(f"{region.zone.name} base not page-aligned")
        if region.size <= 0:
            raise ValueError(f"{region.zone.name} has non-positive size")
        if region.base < previous_limit:
            raise ValueError(f"{region.zone.name} overlaps previous region")
        previous_limit = region.limit
    if previous_limit > DATA_SPACE_WORDS:
        raise ValueError("layout exceeds the 4M-word data space")


validate_layout(DEFAULT_LAYOUT)


#: Cache-line distance between consecutive staggered stack starts, used
#: by :func:`initial_stack_pointer`.  128 words spreads the four stacks
#: across a 1K direct-mapped cache without wasting much zone space.
STACK_STAGGER_WORDS = 128


def initial_stack_pointer(region: Region, staggered: bool) -> int:
    """Where a stack pointer starts inside its region.

    This reproduces the two initialisations of the section 3.2.4 cache
    experiment: in the first run "the top-of-stack pointers were
    initialised to values such that they used different cache locations"
    (``staggered=True``: each zone starts at a distinct offset modulo
    the 1K cache index range); in the second run "they all pointed to
    the same cache cell" (``staggered=False``: every base is 16K-aligned
    and therefore congruent to 0 modulo 1K).
    """
    if not staggered:
        return region.base
    return region.base + int(region.zone) * STACK_STAGGER_WORDS
