"""The functional backing store for the data address space.

The timing side of the memory system (caches, MMU, DRAM) is modelled
separately; this store is where word *contents* actually live, which
keeps functional correctness decoupled from timing experiments — the
standard split in architecture simulators (see DESIGN.md, substitution
note 2).

Uninitialised reads return a distinctive zero integer word rather than
raising, matching hardware (RAM has *some* contents), but the store
counts them so tests can assert none happened on correct programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.word import Word, ZERO_WORD
from repro.memory.layout import DATA_SPACE_WORDS


class DataStore:
    """A flat word-addressed array over the 4 M-word data space.

    Backed by chunked lists allocated on demand so a freshly created
    machine does not pay for 4 M Python slots.

    When ``track_dirty`` is on, every write records its chunk key in
    ``dirty_chunks`` so an incremental checkpoint
    (:class:`repro.core.traps.MachineCheckpoint`) can copy only the
    chunks touched since the previous capture.  Off by default: the
    flag test is the only cost, and the serving layer arms it solely
    for checkpointed runs.
    """

    CHUNK_WORDS = 1 << 16  # 64K words per chunk

    def __init__(self, size: int = DATA_SPACE_WORDS):
        self.size = size
        self._chunks: Dict[int, List[Optional[Word]]] = {}
        self.uninitialised_reads = 0
        self.track_dirty = False
        self.dirty_chunks: Set[int] = set()

    def read(self, address: int) -> Word:
        """Fetch the word at ``address``."""
        chunk = self._chunks.get(address >> 16)
        word = chunk[address & 0xFFFF] if chunk is not None else None
        if word is None:
            self.uninitialised_reads += 1
            return ZERO_WORD
        return word

    def write(self, address: int, word: Word) -> None:
        """Store ``word`` at ``address``."""
        key = address >> 16
        chunk = self._chunks.get(key)
        if chunk is None:
            if not 0 <= address < self.size:
                raise IndexError(f"address {address:#x} outside data space")
            chunk = [None] * self.CHUNK_WORDS
            self._chunks[key] = chunk
        if self.track_dirty:
            self.dirty_chunks.add(key)
        chunk[address & 0xFFFF] = word

    def peek(self, address: int) -> Optional[Word]:
        """Raw cell contents, ``None`` when never written.

        Unlike :meth:`read` this does not count an uninitialised read:
        it is for host-side bookkeeping (the trap replay's write-undo
        log), not simulated accesses.
        """
        chunk = self._chunks.get(address >> 16)
        return chunk[address & 0xFFFF] if chunk is not None else None

    def poke(self, address: int, word: Optional[Word]) -> None:
        """Raw overwrite; ``None`` restores the never-written state.

        Host-side counterpart of :meth:`peek` — no zone checks, no
        cycle accounting.
        """
        key = address >> 16
        chunk = self._chunks.get(key)
        if chunk is None:
            if word is None:
                return
            if not 0 <= address < self.size:
                raise IndexError(f"address {address:#x} outside data space")
            chunk = [None] * self.CHUNK_WORDS
            self._chunks[key] = chunk
        if self.track_dirty:
            self.dirty_chunks.add(key)
        chunk[address & 0xFFFF] = word

    def initialised(self, address: int) -> bool:
        """Whether ``address`` has been written (test inspection)."""
        chunk = self._chunks.get(address >> 16)
        return chunk is not None and chunk[address & 0xFFFF] is not None
