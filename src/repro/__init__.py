"""repro: a full reproduction of "KCM: A Knowledge Crunching Machine"
(Benker et al., ISCA 1989).

A cycle-level simulator of the ECRC KCM Prolog back-end processor —
64-bit tagged architecture, shallow backtracking, zone-checked memory
system with split logical caches — together with the WAM/KCM compiler
toolchain, the PLM benchmark suite, baseline machine models (PLM, SPUR,
Quintus/SUN-3) and harnesses regenerating every table and figure of the
paper's evaluation.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.api import QueryResult, compile_and_load, run_query
from repro.core import (
    CostModel, Features, Machine, RunStats, SymbolTable, Type, Word, Zone,
    kcm_cost_model, kcm_features,
)
from repro.compiler import Linker, link_program
from repro.compiler.incremental import IncrementalLoader
from repro.core import MachineCheckpoint, TrapReport, TrapVector
from repro.core.gc import (
    HeapCompactor, HeapMarker, should_collect,
)
from repro.core.monitor import (
    CycleProfiler, MacrocodeTracer, PortTracer, attach,
)
from repro.errors import (
    CycleLimitExceeded, MachineError, MachineTrap, PageFault,
    ProtectionFault, SpuriousTrap, StackOverflowTrap, ZoneTrap,
)
from repro.prolog import parse_program, parse_term, term_to_text
from repro.recovery import (
    FaultInjector, GrowthPolicy, install_default_recovery,
)
from repro.serve import (
    ChaosPolicy, ImageCache, QueryService, RetryPolicy, ServiceHealth,
    ServiceResult, default_image_cache,
)

__version__ = "1.0.0"

__all__ = [
    "QueryResult", "compile_and_load", "run_query",
    "CostModel", "Features", "Machine", "RunStats", "SymbolTable",
    "Type", "Word", "Zone", "kcm_cost_model", "kcm_features",
    "Linker", "link_program", "IncrementalLoader",
    "HeapCompactor", "HeapMarker", "should_collect",
    "CycleProfiler", "MacrocodeTracer", "PortTracer", "attach",
    "parse_program", "parse_term", "term_to_text",
    "MachineCheckpoint", "TrapReport", "TrapVector",
    "MachineError", "MachineTrap", "ZoneTrap", "StackOverflowTrap",
    "PageFault", "ProtectionFault", "SpuriousTrap", "CycleLimitExceeded",
    "FaultInjector", "GrowthPolicy", "install_default_recovery",
    "ImageCache", "QueryService", "ServiceResult", "default_image_cache",
    "ChaosPolicy", "RetryPolicy", "ServiceHealth",
    "__version__",
]
