"""High-level convenience API.

Most users want exactly this::

    from repro import run_query
    result = run_query("append([],L,L). append([H|T],L,[H|R]) :- "
                       "append(T,L,R).",
                       "append([1,2],[3],X)")
    result.solutions[0]["X"]      # the term [1, 2, 3]
    result.stats.cycles           # KCM cycles
    result.klips                  # the paper's performance metric

Lower-level control (feature ablations, baseline cost models, memory
configuration) is available by constructing :class:`repro.Machine` and
:class:`repro.compiler.Linker` directly; see the examples directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.linker import LinkedImage, Linker
from repro.core.costs import CostModel, Features
from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.core.symbols import SymbolTable
from repro.prolog.terms import Term
from repro.prolog.writer import term_to_text


@dataclass
class QueryResult:
    """Everything one query execution produced.

    A result normally keeps the machine and image alive so callers can
    inspect them; :meth:`detach` releases both (capturing the derived
    observables first) for batch paths where retaining one heap per
    result is unaffordable — the query service returns detached-style
    results exclusively.
    """

    solutions: List[Dict[str, Term]]
    stats: RunStats
    machine: Optional[Machine]
    image: Optional[LinkedImage]
    _cycle_seconds: Optional[float] = field(default=None, repr=False)
    _output: Optional[str] = field(default=None, repr=False)
    _trap_reports: Optional[list] = field(default=None, repr=False)

    def detach(self) -> "QueryResult":
        """Release the machine and image (idempotent); returns ``self``.

        Captures the machine-derived observables (``output``,
        ``trap_reports``, the cycle time behind ``milliseconds`` /
        ``klips``) so every property keeps working; only direct
        ``result.machine`` / ``result.image`` access is given up.
        """
        if self.machine is not None:
            self._cycle_seconds = self.machine.costs.cycle_seconds
            self._output = "".join(self.machine.output)
            self._trap_reports = list(self.machine.trap_log)
            self.machine = None
            self.image = None
        return self

    @property
    def detached(self) -> bool:
        """Whether :meth:`detach` has released the machine."""
        return self.machine is None

    def _cycle_time(self) -> float:
        if self.machine is not None:
            return self.machine.costs.cycle_seconds
        if self._cycle_seconds is None:
            raise ValueError("result was created without a machine")
        return self._cycle_seconds

    @property
    def succeeded(self) -> bool:
        """Whether at least one solution was found."""
        return bool(self.solutions)

    @property
    def milliseconds(self) -> float:
        """Wall-clock time at the machine's cycle time."""
        return self.stats.milliseconds(self._cycle_time())

    @property
    def klips(self) -> float:
        """Kilo logical inferences per second (section 4.2 definition)."""
        return self.stats.klips(self._cycle_time())

    @property
    def output(self) -> str:
        """Text produced by write/1 and friends (real-I/O mode only)."""
        if self.machine is None:
            return self._output or ""
        return "".join(self.machine.output)

    @property
    def trap_reports(self):
        """Every trap the run delivered (recovered or fatal), as
        :class:`repro.core.traps.TrapReport` objects in delivery order."""
        if self.machine is None:
            return list(self._trap_reports or [])
        return list(self.machine.trap_log)

    def bindings_text(self, index: int = 0) -> str:
        """Readable rendering of one solution's bindings."""
        solution = self.solutions[index]
        return ", ".join(f"{name} = {term_to_text(term)}"
                         for name, term in solution.items())


def compile_and_load(program: str, query: str,
                     machine: Optional[Machine] = None,
                     io_mode: str = "stub",
                     costs: Optional[CostModel] = None,
                     features: Optional[Features] = None,
                     use_cache: bool = True) -> Machine:
    """Compile, link and install; returns the loaded machine with the
    image stashed at ``machine.image``.

    When no machine is passed, the image comes from the process-global
    compile-once cache (:mod:`repro.serve.cache`): identical
    (program, query, io_mode) requests after the first reuse the linked
    image and its symbol table and do zero compiler work.  Passing an
    existing ``machine`` forces a fresh link against that machine's
    symbol table (an image is only installable into machines sharing
    its symbols); ``use_cache=False`` forces a fresh link outright.
    """
    if machine is not None:
        image = Linker(symbols=machine.symbols, io_mode=io_mode).link(
            program, query)
    elif use_cache:
        from repro.serve.cache import default_image_cache
        image = default_image_cache().get(program, query, io_mode=io_mode)
    else:
        image = Linker(symbols=SymbolTable(), io_mode=io_mode).link(
            program, query)
    if machine is None:
        machine = Machine(symbols=image.symbols, costs=costs,
                          features=features)
    image.install(machine)
    machine.image = image
    return machine


def run_query(program: str, query: str,
              all_solutions: bool = False,
              machine: Optional[Machine] = None,
              io_mode: str = "stub",
              costs: Optional[CostModel] = None,
              features: Optional[Features] = None,
              max_cycles: Optional[int] = None,
              recovery: bool = False,
              injector=None,
              use_cache: bool = True) -> QueryResult:
    """Compile ``program``, run ``query``, return solutions and stats.

    ``all_solutions=True`` backtracks through the whole search space;
    the default stops at the first solution, like the benchmark runs.

    Repeated calls with identical (program, query, io_mode) reuse the
    linked image from the compile-once cache and skip the compiler
    entirely (``use_cache=False`` restores the recompile-every-call
    seed behaviour; a caller-supplied ``machine`` implies it, since the
    image must link against that machine's symbol table).

    ``recovery=True`` arms the machine with the production trap
    handlers (:func:`repro.recovery.install_default_recovery`) so stack
    overflows, page faults and heap overflows are repaired and the run
    continues instead of aborting.  ``injector`` attaches a
    :class:`repro.recovery.FaultInjector` for the run and implies
    ``recovery`` unless the machine's trap vector is already armed.
    """
    machine = compile_and_load(program, query, machine=machine,
                               io_mode=io_mode, costs=costs,
                               features=features, use_cache=use_cache)
    if max_cycles is not None:
        machine.max_cycles = max_cycles
    if (recovery or injector is not None) and not machine.trap_vector.armed:
        from repro.recovery import install_default_recovery
        install_default_recovery(machine)
    if injector is not None:
        injector.attach(machine)
    image: LinkedImage = machine.image
    stats = machine.run(image.entry, collect_all=all_solutions,
                        answer_names=image.query_variable_names)
    return QueryResult(solutions=machine.solutions, stats=stats,
                       machine=machine, image=image)
