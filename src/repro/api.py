"""High-level convenience API.

Most users want exactly this::

    from repro import run_query
    result = run_query("append([],L,L). append([H|T],L,[H|R]) :- "
                       "append(T,L,R).",
                       "append([1,2],[3],X)")
    result.solutions[0]["X"]      # the term [1, 2, 3]
    result.stats.cycles           # KCM cycles
    result.klips                  # the paper's performance metric

Lower-level control (feature ablations, baseline cost models, memory
configuration) is available by constructing :class:`repro.Machine` and
:class:`repro.compiler.Linker` directly; see the examples directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.linker import LinkedImage, Linker
from repro.core.costs import CostModel, Features
from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.core.symbols import SymbolTable
from repro.prolog.terms import Term
from repro.prolog.writer import term_to_text


@dataclass
class QueryResult:
    """Everything one query execution produced."""

    solutions: List[Dict[str, Term]]
    stats: RunStats
    machine: Machine
    image: LinkedImage

    @property
    def succeeded(self) -> bool:
        """Whether at least one solution was found."""
        return bool(self.solutions)

    @property
    def milliseconds(self) -> float:
        """Wall-clock time at the machine's cycle time."""
        return self.stats.milliseconds(self.machine.costs.cycle_seconds)

    @property
    def klips(self) -> float:
        """Kilo logical inferences per second (section 4.2 definition)."""
        return self.stats.klips(self.machine.costs.cycle_seconds)

    @property
    def output(self) -> str:
        """Text produced by write/1 and friends (real-I/O mode only)."""
        return "".join(self.machine.output)

    @property
    def trap_reports(self):
        """Every trap the run delivered (recovered or fatal), as
        :class:`repro.core.traps.TrapReport` objects in delivery order."""
        return list(self.machine.trap_log)

    def bindings_text(self, index: int = 0) -> str:
        """Readable rendering of one solution's bindings."""
        solution = self.solutions[index]
        return ", ".join(f"{name} = {term_to_text(term)}"
                         for name, term in solution.items())


def compile_and_load(program: str, query: str,
                     machine: Optional[Machine] = None,
                     io_mode: str = "stub",
                     costs: Optional[CostModel] = None,
                     features: Optional[Features] = None) -> Machine:
    """Compile, link and install; returns the loaded machine with the
    image stashed at ``machine.image``."""
    symbols = machine.symbols if machine is not None else SymbolTable()
    image = Linker(symbols=symbols, io_mode=io_mode).link(program, query)
    if machine is None:
        machine = Machine(symbols=symbols, costs=costs, features=features)
    image.install(machine)
    machine.image = image
    return machine


def run_query(program: str, query: str,
              all_solutions: bool = False,
              machine: Optional[Machine] = None,
              io_mode: str = "stub",
              costs: Optional[CostModel] = None,
              features: Optional[Features] = None,
              max_cycles: Optional[int] = None,
              recovery: bool = False,
              injector=None) -> QueryResult:
    """Compile ``program``, run ``query``, return solutions and stats.

    ``all_solutions=True`` backtracks through the whole search space;
    the default stops at the first solution, like the benchmark runs.

    ``recovery=True`` arms the machine with the production trap
    handlers (:func:`repro.recovery.install_default_recovery`) so stack
    overflows, page faults and heap overflows are repaired and the run
    continues instead of aborting.  ``injector`` attaches a
    :class:`repro.recovery.FaultInjector` for the run and implies
    ``recovery`` unless the machine's trap vector is already armed.
    """
    machine = compile_and_load(program, query, machine=machine,
                               io_mode=io_mode, costs=costs,
                               features=features)
    if max_cycles is not None:
        machine.max_cycles = max_cycles
    if (recovery or injector is not None) and not machine.trap_vector.armed:
        from repro.recovery import install_default_recovery
        install_default_recovery(machine)
    if injector is not None:
        injector.attach(machine)
    image: LinkedImage = machine.image
    stats = machine.run(image.entry, collect_all=all_solutions,
                        answer_names=image.query_variable_names)
    return QueryResult(solutions=machine.solutions, stats=stats,
                       machine=machine, image=image)
