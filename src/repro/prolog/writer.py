"""Term output: the inverse of the reader.

``term_to_text`` produces canonical-ish Edinburgh syntax with operator
notation, used by the simulated ``write/1`` built-in, the benchmark
answer decoder and round-trip property tests (parse ∘ write == id on
ground terms).
"""

from __future__ import annotations

from repro.prolog import operators as ops
from repro.prolog.terms import (
    Atom, Float, Int, Struct, Term, Var, is_list_cell,
)

_ALPHA_ATOM = "abcdefghijklmnopqrstuvwxyz"


def atom_needs_quotes(name: str) -> bool:
    """Whether an atom must be quoted to read back correctly."""
    if not name:
        return True
    if name in ("[]", "{}", "!", ";", ","):
        return False
    first = name[0]
    if first in _ALPHA_ATOM:
        return not all(c == "_" or c.isalnum() for c in name)
    symbol_chars = set("+-*/\\^<>=~:.?@#&$")
    if all(c in symbol_chars for c in name):
        return False
    return True


def _quote_atom(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace("'", "\\'")
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return f"'{escaped}'"


def _write_atom(name: str, quoted: bool) -> str:
    if quoted and atom_needs_quotes(name):
        return _quote_atom(name)
    return name


def term_to_text(term: Term, quoted: bool = False,
                 max_priority: int = 1200) -> str:
    """Render ``term`` as text.

    ``quoted`` selects writeq-style quoting of atoms; ``max_priority``
    drives parenthesisation of operator terms, exactly as a Prolog
    writer does.
    """
    if isinstance(term, Var):
        return f"_{term.name}" if not term.name.startswith("_") else term.name
    if isinstance(term, Int):
        return str(term.value)
    if isinstance(term, Float):
        text = repr(term.value)
        return text if ("." in text or "e" in text or "E" in text) \
            else text + ".0"
    if isinstance(term, Atom):
        return _write_atom(term.name, quoted)
    if isinstance(term, Struct):
        return _write_struct(term, quoted, max_priority)
    raise TypeError(f"not a term: {term!r}")


def _operand(term: Term, quoted: bool, max_priority: int) -> str:
    """Render an operator operand; an atom that is itself an operator
    must be parenthesised ('+' + a prints as (+) + a) or it would read
    back as a prefix-operator application."""
    if isinstance(term, Atom) and ops.is_operator(term.name):
        return "(" + _write_atom(term.name, quoted) + ")"
    return term_to_text(term, quoted, max_priority)


def _write_struct(term: Struct, quoted: bool, max_priority: int) -> str:
    # Lists get bracket notation.
    if is_list_cell(term):
        return _write_list(term, quoted)
    if term.name == "{}" and term.arity == 1:
        return "{" + term_to_text(term.args[0], quoted, 1200) + "}"
    # Operator notation.
    if term.arity == 2:
        entry = ops.infix(term.name)
        if entry is not None:
            priority, op_type = entry
            lmax, rmax = ops.argument_priorities(priority, op_type)
            left = _operand(term.args[0], quoted, lmax)
            right = _operand(term.args[1], quoted, rmax)
            name = term.name
            spaced = f"{left}{name}{right}" if name == "," \
                else f"{left} {name} {right}"
            if priority > max_priority:
                return f"({spaced})"
            return spaced
    if term.arity == 1:
        entry = ops.prefix(term.name)
        if entry is not None:
            priority, op_type = entry
            amax = ops.prefix_argument_priority(priority, op_type)
            arg = _operand(term.args[0], quoted, amax)
            # A space is mandatory whenever gluing would change the
            # token stream: before digits ("- 5" vs the literal -5) and
            # before symbol characters ("+ +foo", not the atom '++').
            from repro.prolog.lexer import SYMBOL_CHARS
            first = arg[0] if arg else ""
            glue_safe = (term.name in ("-", "+", "\\")
                         and not first.isdigit()
                         and first not in SYMBOL_CHARS)
            out = f"{term.name}{'' if glue_safe else ' '}{arg}"
            if priority > max_priority:
                return f"({out})"
            return out
    # Canonical functional notation.
    args = ", ".join(term_to_text(a, quoted, 999) for a in term.args)
    return f"{_write_atom(term.name, quoted)}({args})"


def _write_list(term: Term, quoted: bool) -> str:
    parts = []
    while is_list_cell(term):
        parts.append(term_to_text(term.args[0], quoted, 999))
        term = term.args[1]
    if isinstance(term, Atom) and term.name == "[]":
        return "[" + ", ".join(parts) + "]"
    return "[" + ", ".join(parts) + "|" + term_to_text(term, quoted, 999) \
        + "]"
