"""Tokenizer for Edinburgh-syntax Prolog.

Produces a flat token stream for :mod:`repro.prolog.parser`.  Handles
the full lexical repertoire the benchmark suite and typical programs
need: quoted atoms with escapes, ``0'c`` character codes, line and
block comments, symbolic atoms (maximal munch over the symbol-char
set), and the punctuation tokens with their special roles (``(`` vs
`` (`` matters for operator-vs-call disambiguation, tracked via the
``layout_before`` flag).
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from repro.errors import PrologSyntaxError

SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")
SOLO_CHARS = set("()[]{},|!;")


def _is_known_operator(text: str) -> bool:
    """Whether ``text`` is in the operator table (import deferred to
    avoid a cycle at module load)."""
    from repro.prolog import operators
    return operators.is_operator(text)


class Token(NamedTuple):
    """One lexical token.

    ``kind`` is one of: atom, var, int, float, string, punct, end.
    ``layout_before`` records whether whitespace/comments preceded the
    token, needed to distinguish ``f(X)`` (a call) from ``f (X)``.
    """

    kind: str
    text: str
    value: object
    line: int
    column: int
    layout_before: bool


class Lexer:
    """Streaming tokenizer over a source string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        s = self.text[self.pos:self.pos + count]
        for ch in s:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return s

    def _error(self, message: str) -> PrologSyntaxError:
        return PrologSyntaxError(message, self.line, self.column)

    def _skip_layout(self) -> bool:
        """Skip whitespace and comments; True when anything was skipped."""
        skipped = False
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                skipped = True
            elif ch == "%":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
                skipped = True
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
                skipped = True
            else:
                break
        return skipped

    # -- token scanners ------------------------------------------------------

    def _scan_number(self, line: int, col: int, layout: bool) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        # 0'c character code
        if (self.text[start:self.pos] == "0" and self._peek() == "'"
                and self._peek(1)):
            self._advance()
            ch = self._advance()
            if ch == "\\":
                ch = self._scan_escape("'")
            return Token("int", self.text[start:self.pos], ord(ch),
                         line, col, layout)
        # 0x / 0o / 0b radix integers
        if (self.text[start:self.pos] == "0"
                and self._peek() in "xob" and self._peek(1)):
            radix_char = self._advance()
            base = {"x": 16, "o": 8, "b": 2}[radix_char]
            digits_start = self.pos
            while self._peek().isalnum():
                self._advance()
            digits = self.text[digits_start:self.pos]
            try:
                value = int(digits, base)
            except ValueError:
                raise self._error(f"bad base-{base} integer: {digits!r}")
            return Token("int", self.text[start:self.pos], value,
                         line, col, layout)
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE":
            after = 1
            if self._peek(1) in "+-":
                after = 2
            if self._peek(after).isdigit():
                is_float = True
                self._advance(after)
                while self._peek().isdigit():
                    self._advance()
        text = self.text[start:self.pos]
        if is_float:
            return Token("float", text, float(text), line, col, layout)
        return Token("int", text, int(text), line, col, layout)

    def _scan_escape(self, quote: str) -> str:
        """Scan one character after a backslash inside a quoted token."""
        ch = self._advance()
        simple = {"n": "\n", "t": "\t", "r": "\r", "a": "\a", "b": "\b",
                  "f": "\f", "v": "\v", "\\": "\\", "'": "'", '"': '"',
                  "`": "`", "0": "\0"}
        if ch in simple:
            return simple[ch]
        if ch == "x":
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if self._peek() == "\\":
                self._advance()
            if not digits:
                raise self._error("empty \\x escape")
            return chr(int(digits, 16))
        if ch == "\n":
            return ""  # line continuation inside quoted atom
        raise self._error(f"unknown escape \\{ch}")

    def _scan_quoted(self, quote: str) -> str:
        out: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated quoted token")
            ch = self._advance()
            if ch == quote:
                if self._peek() == quote:      # doubled quote
                    self._advance()
                    out.append(quote)
                    continue
                return "".join(out)
            if ch == "\\":
                out.append(self._scan_escape(quote))
            else:
                out.append(ch)

    # -- the main loop -------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until end of input; final token has kind 'end'."""
        while True:
            layout = self._skip_layout()
            line, col = self.line, self.column
            if self.pos >= len(self.text):
                yield Token("end", "", None, line, col, layout)
                return
            ch = self._peek()

            if ch.isdigit():
                yield self._scan_number(line, col, layout)
            elif ch == "_" or ch.isalpha():
                start = self.pos
                while self._peek() == "_" or self._peek().isalnum():
                    self._advance()
                text = self.text[start:self.pos]
                if text[0] == "_" or text[0].isupper():
                    yield Token("var", text, text, line, col, layout)
                else:
                    yield Token("atom", text, text, line, col, layout)
            elif ch == "'":
                self._advance()
                value = self._scan_quoted("'")
                yield Token("atom", f"'{value}'", value, line, col, layout)
            elif ch == '"':
                self._advance()
                value = self._scan_quoted('"')
                yield Token("string", f'"{value}"', value, line, col, layout)
            elif ch in SOLO_CHARS:
                self._advance()
                kind = "atom" if ch in "!;" else "punct"
                yield Token(kind, ch, ch, line, col, layout)
            elif ch in SYMBOL_CHARS:
                start = self.pos
                while self._peek() in SYMBOL_CHARS:
                    self._advance()
                text = self.text[start:self.pos]
                # A lone '.' followed by layout or EOF is the clause end.
                if text == ".":
                    yield Token("punct", ".", ".", line, col, layout)
                elif (text.endswith(".") and len(text) > 1
                      and (self._peek() in " \t\r\n%" or not self._peek())
                      and _is_known_operator(text[:-1])):
                    # A clause ending in a glued symbolic operator, e.g.
                    # "a:-." style corner cases: split the clause dot off
                    # only when the remainder is a known operator (this
                    # keeps '=..' one token).
                    yield Token("atom", text[:-1], text[:-1], line, col,
                                layout)
                    yield Token("punct", ".", ".", self.line, self.column,
                                False)
                else:
                    yield Token("atom", text, text, line, col, layout)
            else:
                raise self._error(f"unexpected character {ch!r}")


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` completely, returning the list including the
    trailing 'end' token."""
    return list(Lexer(text).tokens())
