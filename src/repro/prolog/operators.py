"""The standard Prolog operator table.

The reader is operator-precedence driven, as any real Prolog reader is.
This table carries the standard operators plus the few SEPIA-era extras
the benchmark suite needs.  Priorities follow the Edinburgh standard:
lower number binds tighter; 1200 is the clause level.

Operator types:

=====  =======================================================
xfx    infix, both arguments strictly lower priority
xfy    infix, right argument may have equal priority (right assoc)
yfx    infix, left argument may have equal priority (left assoc)
fy     prefix, argument may have equal priority
fx     prefix, argument strictly lower priority
xf/yf  postfix (rare; present for completeness)
=====  =======================================================
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: (priority, type) for infix/postfix operators, keyed by name.
INFIX_OPERATORS: Dict[str, Tuple[int, str]] = {
    ":-": (1200, "xfx"),
    "-->": (1200, "xfx"),
    ";": (1100, "xfy"),
    "->": (1050, "xfy"),
    ",": (1000, "xfy"),
    "=": (700, "xfx"),
    "\\=": (700, "xfx"),
    "==": (700, "xfx"),
    "\\==": (700, "xfx"),
    "@<": (700, "xfx"),
    "@>": (700, "xfx"),
    "@=<": (700, "xfx"),
    "@>=": (700, "xfx"),
    "is": (700, "xfx"),
    "=:=": (700, "xfx"),
    "=\\=": (700, "xfx"),
    "<": (700, "xfx"),
    ">": (700, "xfx"),
    "=<": (700, "xfx"),
    ">=": (700, "xfx"),
    "=..": (700, "xfx"),
    "+": (500, "yfx"),
    "-": (500, "yfx"),
    "/\\": (500, "yfx"),
    "\\/": (500, "yfx"),
    "xor": (500, "yfx"),
    "*": (400, "yfx"),
    "/": (400, "yfx"),
    "//": (400, "yfx"),
    "mod": (400, "yfx"),
    "rem": (400, "yfx"),
    "<<": (400, "yfx"),
    ">>": (400, "yfx"),
    "**": (200, "xfx"),
    "^": (200, "xfy"),
}

#: (priority, type) for prefix operators, keyed by name.
PREFIX_OPERATORS: Dict[str, Tuple[int, str]] = {
    ":-": (1200, "fx"),
    "?-": (1200, "fx"),
    "\\+": (900, "fy"),
    "-": (200, "fy"),
    "+": (200, "fy"),
    "\\": (200, "fy"),
}


def infix(name: str) -> Optional[Tuple[int, str]]:
    """Look up an infix operator; None when ``name`` is not one."""
    return INFIX_OPERATORS.get(name)


def prefix(name: str) -> Optional[Tuple[int, str]]:
    """Look up a prefix operator; None when ``name`` is not one."""
    return PREFIX_OPERATORS.get(name)


def is_operator(name: str) -> bool:
    """True when ``name`` has any operator definition."""
    return name in INFIX_OPERATORS or name in PREFIX_OPERATORS


def argument_priorities(priority: int, op_type: str) -> Tuple[int, int]:
    """Maximum priorities allowed for the (left, right) arguments of an
    infix operator of the given priority and type."""
    if op_type == "xfx":
        return priority - 1, priority - 1
    if op_type == "xfy":
        return priority - 1, priority
    if op_type == "yfx":
        return priority, priority - 1
    raise ValueError(f"not an infix operator type: {op_type}")


def prefix_argument_priority(priority: int, op_type: str) -> int:
    """Maximum priority allowed for the argument of a prefix operator."""
    if op_type == "fy":
        return priority
    if op_type == "fx":
        return priority - 1
    raise ValueError(f"not a prefix operator type: {op_type}")
