"""Operator-precedence parser for Edinburgh-syntax Prolog.

Implements the classical precedence-climbing read algorithm over the
token stream from :mod:`repro.prolog.lexer` and the operator table in
:mod:`repro.prolog.operators`.  The public entry points are:

- :func:`parse_term` — read one term from a string,
- :func:`parse_program` — read a whole program (a list of clause terms),
- :class:`Parser` — incremental reading, used by the consult loop.

Anonymous variables ``_`` are renamed apart (``_G0``, ``_G1``, ...) so
each occurrence is a distinct variable, matching standard semantics.
Double-quoted strings become lists of character codes (the classical
default flag value).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import PrologSyntaxError
from repro.prolog import operators as ops
from repro.prolog.lexer import Token, tokenize
from repro.prolog.terms import (
    Atom, Float, Int, Struct, Term, Var, make_list,
)

#: Priority of arguments inside f(...) and list elements: just below ','.
ARG_PRIORITY = 999
#: Priority of a whole term (clause level).
TERM_PRIORITY = 1200


class Parser:
    """Parses a token list into terms, one clause at a time."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.index = 0
        self._anon_counter = 0

    # -- token-level helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        tok = self.tokens[self.index]
        if tok.kind != "end":
            self.index += 1
        return tok

    def _error(self, message: str, tok: Optional[Token] = None
               ) -> PrologSyntaxError:
        tok = tok or self._peek()
        return PrologSyntaxError(message, tok.line, tok.column)

    def _expect_punct(self, text: str) -> Token:
        tok = self._next()
        if tok.kind != "punct" or tok.text != text:
            raise self._error(f"expected {text!r}, found {tok.text!r}", tok)
        return tok

    def at_end(self) -> bool:
        """True when all input has been consumed."""
        return self._peek().kind == "end"

    # -- term reading ---------------------------------------------------------

    def read_clause(self) -> Optional[Term]:
        """Read one clause terminated by '.'; None at end of input."""
        if self.at_end():
            return None
        term = self._parse(TERM_PRIORITY)
        tok = self._next()
        if tok.kind != "punct" or tok.text != ".":
            raise self._error("expected end of clause '.'", tok)
        return term

    def read_term(self) -> Term:
        """Read one term (no trailing '.'), requiring all input consumed."""
        term = self._parse(TERM_PRIORITY)
        tok = self._peek()
        if tok.kind == "punct" and tok.text == ".":
            self._next()
            tok = self._peek()
        if tok.kind != "end":
            raise self._error(f"unexpected trailing input {tok.text!r}", tok)
        return term

    # The core precedence-climbing loop.

    def _parse(self, max_priority: int) -> Term:
        left, left_priority = self._parse_primary(max_priority)
        return self._parse_infix(left, left_priority, max_priority)

    def _parse_infix(self, left: Term, left_priority: int,
                     max_priority: int) -> Term:
        while True:
            tok = self._peek()
            name = None
            if tok.kind == "atom":
                name = tok.value
            elif tok.kind == "punct" and tok.text in (",", "|"):
                name = tok.text
            if name is None:
                return left
            if name == "|":
                # '|' as an infix operator is ';' at priority 1100.
                entry = (1100, "xfy") if max_priority >= 1100 else None
                display_name = ";"
            else:
                entry = ops.infix(name)
                display_name = name
            if entry is None:
                return left
            priority, op_type = entry
            left_max, right_max = ops.argument_priorities(priority, op_type)
            if priority > max_priority or left_priority > left_max:
                return left
            self._next()
            right = self._parse(right_max)
            left = Struct(display_name, (left, right))
            left_priority = priority

    def _parse_primary(self, max_priority: int) -> "tuple[Term, int]":
        """Parse a primary term; returns (term, its operator priority).

        The priority is 0 for ordinary terms and the operator priority
        for terms built by a prefix operator, which the infix loop needs
        for correct left-argument checks.
        """
        tok = self._next()

        if tok.kind == "int":
            return Int(tok.value), 0
        if tok.kind == "float":
            return Float(tok.value), 0
        if tok.kind == "var":
            if tok.value == "_":
                self._anon_counter += 1
                return Var(f"_G{self._anon_counter}"), 0
            return Var(tok.value), 0
        if tok.kind == "string":
            codes = [Int(ord(c)) for c in tok.value]
            return make_list(codes), 0

        if tok.kind == "punct":
            if tok.text == "(":
                term = self._parse(TERM_PRIORITY)
                self._expect_punct(")")
                return term, 0
            if tok.text == "[":
                return self._parse_list(), 0
            if tok.text == "{":
                if self._peek().kind == "punct" and self._peek().text == "}":
                    self._next()
                    return Atom("{}"), 0
                inner = self._parse(TERM_PRIORITY)
                self._expect_punct("}")
                return Struct("{}", (inner,)), 0
            raise self._error(f"unexpected {tok.text!r}", tok)

        if tok.kind == "atom":
            name = tok.value
            nxt = self._peek()
            # Call syntax: atom immediately followed by '(' (no layout).
            if (nxt.kind == "punct" and nxt.text == "("
                    and not nxt.layout_before):
                self._next()
                args = self._parse_arguments()
                return Struct(name, tuple(args)), 0
            # Negative numeric literals: '-' directly before a number
            # with no intervening layout ("-5" is a literal, "- 5" is
            # the prefix operator applied to 5).
            if (name == "-" and self._peek().kind in ("int", "float")
                    and not self._peek().layout_before):
                num = self._next()
                if num.kind == "int":
                    return Int(-num.value), 0
                return Float(-num.value), 0
            # Prefix operator?
            entry = ops.prefix(name)
            if entry is not None and self._can_start_term(self._peek()):
                priority, op_type = entry
                if priority <= max_priority:
                    arg_max = ops.prefix_argument_priority(priority, op_type)
                    arg = self._parse(arg_max)
                    return Struct(name, (arg,)), priority
            # Plain atom (possibly an operator used as an atom).
            if ops.is_operator(name):
                return Atom(name), ops.INFIX_OPERATORS.get(
                    name, ops.PREFIX_OPERATORS.get(name, (0, "")))[0]
            return Atom(name), 0

        raise self._error(f"unexpected token {tok.text!r}", tok)

    def _can_start_term(self, tok: Token) -> bool:
        """Whether ``tok`` can begin a term (decides if a prefix operator
        actually has an argument, vs being used as an atom)."""
        if tok.kind in ("int", "float", "var", "string"):
            return True
        if tok.kind == "atom":
            # An infix-only operator cannot start a term — unless it is
            # immediately followed by '(' (call syntax, e.g. *(0.0)).
            if ops.infix(tok.value) and not ops.prefix(tok.value):
                after = self._peek(1)
                return (after.kind == "punct" and after.text == "("
                        and not after.layout_before)
            return True
        if tok.kind == "punct":
            return tok.text in ("(", "[", "{")
        return False

    def _parse_arguments(self) -> List[Term]:
        args = [self._parse(ARG_PRIORITY)]
        while True:
            tok = self._next()
            if tok.kind == "punct" and tok.text == ",":
                args.append(self._parse(ARG_PRIORITY))
            elif tok.kind == "punct" and tok.text == ")":
                return args
            else:
                raise self._error("expected ',' or ')' in argument list",
                                  tok)

    def _parse_list(self) -> Term:
        tok = self._peek()
        if tok.kind == "punct" and tok.text == "]":
            self._next()
            return Atom("[]")
        items = [self._parse(ARG_PRIORITY)]
        tail: Term = Atom("[]")
        while True:
            tok = self._next()
            if tok.kind == "punct" and tok.text == ",":
                items.append(self._parse(ARG_PRIORITY))
            elif tok.kind == "punct" and tok.text == "|":
                tail = self._parse(ARG_PRIORITY)
                self._expect_punct("]")
                break
            elif tok.kind == "punct" and tok.text == "]":
                break
            else:
                raise self._error("expected ',', '|' or ']' in list", tok)
        return make_list(items, tail)


def parse_term(text: str) -> Term:
    """Parse a single term from ``text`` (optional trailing '.')."""
    return Parser(text).read_term()


def parse_program(text: str) -> List[Term]:
    """Parse a whole program: a list of '.'-terminated clause terms."""
    parser = Parser(text)
    clauses = []
    while True:
        clause = parser.read_clause()
        if clause is None:
            return clauses
        clauses.append(clause)
