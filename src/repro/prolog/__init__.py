"""Prolog front end: terms, reader (lexer + parser), writer.

This subpackage is a pure-Prolog substrate: it knows nothing about the
KCM.  The compiler in :mod:`repro.compiler` consumes its terms; the
benchmark runner uses its writer to decode answers.
"""

from repro.prolog.terms import (
    Atom, Float, Int, Struct, Term, Var,
    cons, functor_indicator, is_callable, is_list_cell, list_to_python,
    make_list, term_variables,
)
from repro.prolog.parser import Parser, parse_program, parse_term
from repro.prolog.writer import term_to_text

__all__ = [
    "Atom", "Float", "Int", "Struct", "Term", "Var",
    "cons", "functor_indicator", "is_callable", "is_list_cell",
    "list_to_python", "make_list", "term_variables",
    "Parser", "parse_program", "parse_term", "term_to_text",
]
