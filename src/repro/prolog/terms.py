"""Source-level Prolog term representation.

These classes represent terms as the *compiler* sees them, before they
are flattened into KCM instructions.  The simulated machine itself never
touches them — at run time everything is tagged :class:`repro.core.word.Word`
cells in simulated memory.  The benchmark runner converts machine heap
terms back into these classes for answer checking (see
:func:`repro.bench.runner.decode_term`).

Terms are immutable and hashable so they can key dictionaries (e.g. the
first-argument index tables built by the compiler).
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

Term = Union["Atom", "Int", "Float", "Var", "Struct"]


class Atom:
    """A Prolog atom, e.g. ``foo`` or ``[]`` or ``'hello world'``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("atom", self.name))

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"


class Int:
    """A Prolog integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Int) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("int", self.value))

    def __repr__(self) -> str:
        return f"Int({self.value})"


class Float:
    """A Prolog floating-point constant."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Float) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("float", self.value))

    def __repr__(self) -> str:
        return f"Float({self.value})"


class Var:
    """A named source variable, e.g. ``X`` or ``_Acc`` or ``_``.

    Variables compare by name within one clause; the reader gives each
    anonymous ``_`` a unique name so distinct occurrences stay distinct.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return f"Var({self.name})"


class Struct:
    """A compound term ``name(arg1, ..., argN)`` with N >= 1.

    Lists are represented as ``'.'/2`` structures terminated by the atom
    ``[]``, the classical Prolog convention; :func:`make_list` builds them.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple[Term, ...]):
        self.name = name
        self.args = tuple(args)
        if not self.args:
            raise ValueError("Struct requires at least one argument; "
                             "use Atom for arity-0 terms")

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate indicator ``(name, arity)``."""
        return (self.name, len(self.args))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Struct)
                and self.name == other.name and self.args == other.args)

    def __hash__(self) -> int:
        return hash(("struct", self.name, self.args))

    def __repr__(self) -> str:
        return f"Struct({self.name!r}, {self.args!r})"


#: The list terminator atom.
NIL = Atom("[]")
#: The canonical true atom.
TRUE = Atom("true")

CONS = "."


def cons(head: Term, tail: Term) -> Struct:
    """One list cell ``[Head|Tail]``."""
    return Struct(CONS, (head, tail))


def make_list(items: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a (possibly partial) list term from ``items`` ending in
    ``tail``."""
    result = tail
    for item in reversed(list(items)):
        result = cons(item, result)
    return result


def list_to_python(term: Term) -> list:
    """Convert a proper list term to a Python list of terms.

    Raises :class:`ValueError` on partial or improper lists so callers
    cannot silently mis-read an answer.
    """
    items = []
    while True:
        if term == NIL:
            return items
        if isinstance(term, Struct) and term.name == CONS and term.arity == 2:
            items.append(term.args[0])
            term = term.args[1]
        else:
            raise ValueError(f"not a proper list (tail is {term!r})")


def is_list_cell(term: Term) -> bool:
    """True for a ``'.'/2`` structure (one cons cell)."""
    return isinstance(term, Struct) and term.name == CONS and term.arity == 2


def is_callable(term: Term) -> bool:
    """True for terms that can appear as goals (atoms and structures)."""
    return isinstance(term, (Atom, Struct))


def term_variables(term: Term) -> "list[Var]":
    """All distinct variables in ``term``, in first-occurrence order.

    Iterative to stay safe on the deep left-leaning structures the
    differentiation benchmarks produce.
    """
    seen = set()
    out = []
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            if t.name not in seen:
                seen.add(t.name)
                out.append(t)
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))
    return out


def functor_indicator(term: Term) -> Tuple[str, int]:
    """The ``(name, arity)`` of a callable term."""
    if isinstance(term, Atom):
        return (term.name, 0)
    if isinstance(term, Struct):
        return term.indicator
    raise ValueError(f"not a callable term: {term!r}")


def rename_apart(term: Term, suffix: str) -> Term:
    """Copy ``term`` with every variable renamed by appending ``suffix``.

    Used by tests and by the query harness to keep variables of separate
    clauses distinct.
    """
    if isinstance(term, Var):
        return Var(term.name + suffix)
    if isinstance(term, Struct):
        return Struct(term.name,
                      tuple(rename_apart(a, suffix) for a in term.args))
    return term
