"""The PLM benchmark suite (paper section 4).

The suite "gathered by the PLM team at U.C. Berkeley in order to
evaluate the performance of the PLM", an extension of D.H.D. Warren's
original benchmark set.  The original sources are not in the paper, so
each program below is reconstructed from the classical Warren/Berkeley
benchmark descriptions; where the paper's published inference counts
pin the program down (its Klips definition makes counts reproducible),
the reconstruction matches them *exactly* — validated by
``tests/test_suite_counts.py``:

===========  =====================  =====================
program      Table 2 inferences     Table 3 inferences
             (timed variant)        (pure variant, I/O removed)
===========  =====================  =====================
con1         6                      4
con6         42                     12
divide10     22                     20
hanoi        1787                   767
log10        14                     12
nrev1        499                    497
ops8         20                     18
times10      22                     20
===========  =====================  =====================

For mutest, palin25, pri2, qs4, queens and query the sources are the
standard benchmark formulations; measured counts are reported next to
the paper's in EXPERIMENTS.md.

Each benchmark comes in two variants matching the paper's two tables:

- ``timed``  — write/nl calls present, compiled as 5-cycle unit
  clauses (Table 2 methodology);
- ``pure``   — "All the I/O predicates ... have been removed"
  (Table 3 methodology, the starred program names).

The assert/retract program of the original suite is omitted — the
paper itself could not run it ("this library did not include any
assert/retract facilities which made it impossible to run one of the
programs of the suite").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Benchmark:
    """One suite program in both variants."""

    name: str
    description: str
    source_timed: str
    query_timed: str
    source_pure: str
    query_pure: str
    #: run the query to exhaustion (fail-driven loop), not first answer.
    all_solutions: bool = False
    #: exact paper counts where the reconstruction is pinned, else None.
    paper_inferences_timed: Optional[int] = None
    paper_inferences_pure: Optional[int] = None


CONCAT = """
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
"""

CON6_SOURCE = CONCAT + """
out([]) :- nl.
out([H|T]) :- write(H), out(T).
"""

DERIV = """
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V * V)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(- U, X, - DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
"""

TIMES10_EXPR = "((((((((x*x)*x)*x)*x)*x)*x)*x)*x)*x"
DIVIDE10_EXPR = "((((((((x/x)/x)/x)/x)/x)/x)/x)/x)/x"
LOG10_EXPR = "log(log(log(log(log(log(log(log(log(log(x))))))))))"
OPS8_EXPR = "(x + 1) * ((x ^ 2 + 2) * (x ^ 3 + 3))"

DERIV_TIMES10 = DERIV + f"\ntimes10(D) :- d({TIMES10_EXPR}, x, D).\n"
DERIV_DIVIDE10 = DERIV + f"\ndivide10(D) :- d({DIVIDE10_EXPR}, x, D).\n"
DERIV_LOG10 = DERIV + f"\nlog10(D) :- d({LOG10_EXPR}, x, D).\n"
DERIV_OPS8 = DERIV + f"\nops8(D) :- d({OPS8_EXPR}, x, D).\n"

HANOI_TIMED = """
hanoi(N) :- move(N, left, centre, right).
move(0, _, _, _) :- !.
move(N, A, B, C) :-
    M is N - 1, move(M, A, C, B), inform(A, B), move(M, C, B, A).
inform(A, B) :- write(A), write(B), nl.
"""

HANOI_PURE = """
hanoi(N) :- move(N, left, centre, right).
move(0, _, _, _) :- !.
move(N, A, B, C) :-
    M is N - 1, move(M, A, C, B), move(M, C, B, A).
"""

NREV_LIST = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20," \
    "21,22,23,24,25,26,27,28,29,30]"

NREV = CONCAT + f"""
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
nrev1(R) :- nrev({NREV_LIST}, R).
"""

MUTEST = """
/* Derive the MU-puzzle string 'muiiu' forward from the axiom 'mi'
   within a depth bound (Hofstadter's MIU system). */
mutest :- derive(6, [m, i], [m, u, i, i, u]).

derive(_, T, T).
derive(Depth, S, T) :-
    Depth > 0, D is Depth - 1, rules(S, R), derive(D, R, T).

rules(S, R) :-
    ( rule1(S, R) ; rule2(S, R) ; rule3(S, R) ; rule4(S, R) ).

/* Xi -> Xiu */
rule1(S, R) :- append(X, [i], S), append(X, [i, u], R).
/* mX -> mXX */
rule2([m|T], [m|R]) :- append(T, T, R).
/* XiiiY -> XuY */
rule3(S, R) :- append(X, [i, i, i|Y], S), append(X, [u|Y], R).
/* XuuY -> XY */
rule4(S, R) :- append(X, [u, u|Y], S), append(X, Y, R).

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

PALIN25_LIST = "[a,b,c,d,e,f,g,h,i,j,k,l,m,l,k,j,i,h,g,f,e,d,c,b,a]"

PALIN25 = CONCAT + """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
palin(L) :- nrev(L, L).
palin25 :- palin(%s).
""" % PALIN25_LIST

PRI2 = """
primes(Limit, Ps) :- integers(2, Limit, Is), sift(Is, Ps).
integers(Low, High, [Low|Rest]) :-
    Low =< High, !, M is Low + 1, integers(M, High, Rest).
integers(_, _, []).
sift([], []).
sift([I|Is], [I|Ps]) :- remove(I, Is, New), sift(New, Ps).
remove(_, [], []).
remove(P, [I|Is], Nis) :- IModP is I mod P, IModP =:= 0, !,
    remove(P, Is, Nis).
remove(P, [I|Is], [I|Nis]) :- remove(P, Is, Nis).
pri2(Ps) :- primes(80, Ps).
"""

QS4_LIST = "[27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11," \
    "55,29,39,81,90,37,10,0,66,51,7,21,85,27,31,63,75,4,95,99,11,28,61," \
    "74,18,92,40,53,59,8]"

QS4 = f"""
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).
qs4(R) :- qsort({QS4_LIST}, R, []).
"""

QUEENS = """
queens6(Qs) :- queens([1, 2, 3, 4, 5, 6], [], Qs).
queens([], Qs, Qs).
queens(Unplaced, Safe, Qs) :-
    selectq(Q, Unplaced, Rest),
    noattack(Q, Safe, 1),
    queens(Rest, [Q|Safe], Qs).
noattack(_, [], _).
noattack(Y, [Y1|Ys], D) :-
    Y =\\= Y1 + D, Y =\\= Y1 - D, D1 is D + 1, noattack(Y, Ys, D1).
selectq(X, [X|Xs], Xs).
selectq(X, [Y|Ys], [Y|Zs]) :- selectq(X, Ys, Zs).
"""

QUERY = """
query(C1, D1, C2, D2) :-
    density(C1, D1),
    density(C2, D2),
    D1 > D2,
    T1 is 20 * D1,
    T2 is 21 * D2,
    T1 < T2.
density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.

pop(china, 8250).       area(china, 3380).
pop(india, 5863).       area(india, 1139).
pop(ussr, 2521).        area(ussr, 8708).
pop(usa, 2119).         area(usa, 3609).
pop(indonesia, 1276).   area(indonesia, 570).
pop(japan, 1097).       area(japan, 148).
pop(brazil, 1042).      area(brazil, 3288).
pop(bangladesh, 750).   area(bangladesh, 55).
pop(pakistan, 682).     area(pakistan, 311).
pop(w_germany, 620).    area(w_germany, 96).
pop(nigeria, 613).      area(nigeria, 373).
pop(mexico, 581).       area(mexico, 764).
pop(uk, 559).           area(uk, 86).
pop(italy, 554).        area(italy, 116).
pop(france, 525).       area(france, 213).
pop(philippines, 415).  area(philippines, 90).
pop(thailand, 410).     area(thailand, 200).
pop(turkey, 383).       area(turkey, 296).
pop(egypt, 364).        area(egypt, 386).
pop(spain, 352).        area(spain, 190).
pop(poland, 337).       area(poland, 121).
pop(s_korea, 335).      area(s_korea, 37).
pop(iran, 320).         area(iran, 628).
pop(ethiopia, 272).     area(ethiopia, 350).
pop(argentina, 251).    area(argentina, 1080).
"""


def _benchmark(name: str, description: str, source: str, timed_query: str,
               pure_query: str, source_pure: Optional[str] = None,
               all_solutions: bool = False,
               paper_timed: Optional[int] = None,
               paper_pure: Optional[int] = None) -> Benchmark:
    return Benchmark(
        name=name, description=description,
        source_timed=source, query_timed=timed_query,
        source_pure=source_pure if source_pure is not None else source,
        query_pure=pure_query, all_solutions=all_solutions,
        paper_inferences_timed=paper_timed, paper_inferences_pure=paper_pure)


#: The suite, in the paper's table order.
SUITE: Dict[str, Benchmark] = {b.name: b for b in [
    _benchmark(
        "con1", "concatenation of two short lists",
        CONCAT,
        "concat([a,b,c], [d,e], L), write(L), nl",
        "concat([a,b,c], [d,e], L)",
        paper_timed=6, paper_pure=4),
    _benchmark(
        "con6", "two concatenations with element-wise output",
        CON6_SOURCE,
        "concat([a,b,c,d,e], [f], L1), out(L1), nl, "
        "concat([a,b,c,d,e], [f], L2), out(L2), nl",
        "concat([a,b,c,d,e], [f], L1), concat([a,b,c,d,e], [f], L2)",
        paper_timed=42, paper_pure=12),
    _benchmark(
        "divide10", "symbolic differentiation of a 10-operand quotient",
        DERIV_DIVIDE10,
        "divide10(D), write(D), nl",
        "divide10(D)",
        paper_timed=22, paper_pure=20),
    _benchmark(
        "hanoi", "towers of Hanoi, 8 discs, reporting each move",
        HANOI_TIMED,
        "hanoi(8)",
        "hanoi(8)",
        source_pure=HANOI_PURE,
        paper_timed=1787, paper_pure=767),
    _benchmark(
        "log10", "symbolic differentiation of 10 nested logarithms",
        DERIV_LOG10,
        "log10(D), write(D), nl",
        "log10(D)",
        paper_timed=14, paper_pure=12),
    _benchmark(
        "mutest", "prove the MU-puzzle theorem 'muiiu'",
        MUTEST,
        "mutest",
        "mutest"),
    _benchmark(
        "nrev1", "naive reversal of a 30-element list",
        NREV,
        "nrev1(R), write(R), nl",
        "nrev1(R)",
        paper_timed=499, paper_pure=497),
    _benchmark(
        "ops8", "symbolic differentiation of an 8-operand expression",
        DERIV_OPS8,
        "ops8(D), write(D), nl",
        "ops8(D)",
        paper_timed=20, paper_pure=18),
    _benchmark(
        "palin25", "recognise a 25-symbol palindrome",
        PALIN25,
        "palin25, write(yes), nl",
        "palin25"),
    _benchmark(
        "pri2", "sieve of Eratosthenes up to 80",
        PRI2,
        "pri2(Ps), write(Ps), nl",
        "pri2(Ps)"),
    _benchmark(
        "qs4", "quicksort of Warren's 50-element list",
        QS4,
        "qs4(R), write(R), nl",
        "qs4(R)"),
    _benchmark(
        "queens", "6 queens, first solution",
        QUEENS,
        "queens6(Qs), write(Qs), nl",
        "queens6(Qs)"),
    _benchmark(
        "query", "database query: population-density pairs",
        QUERY,
        "query(C1, D1, C2, D2), write(C1), write(C2), nl, fail",
        "query(C1, D1, C2, D2), fail",
        all_solutions=False),
    _benchmark(
        "times10", "symbolic differentiation of a 10-operand product",
        DERIV_TIMES10,
        "times10(D), write(D), nl",
        "times10(D)",
        paper_timed=22, paper_pure=20),
]}

#: Order used by every table.
SUITE_ORDER: List[str] = [
    "con1", "con6", "divide10", "hanoi", "log10", "mutest", "nrev1",
    "ops8", "palin25", "pri2", "qs4", "queens", "query", "times10",
]
