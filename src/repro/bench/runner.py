"""Benchmark runner: executes suite programs on configured machines.

One :class:`BenchResult` per (program, machine configuration) holding
the run statistics and the paper's derived figures (ms at the machine's
cycle time, Klips by the section 4.2 definition).  Machine
configurations are produced by factories so pytest-benchmark can re-run
with a warm instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.bench.programs import SUITE, SUITE_ORDER, Benchmark
from repro.core.machine import Machine
from repro.core.statistics import RunStats
from repro.core.symbols import SymbolTable
from repro.serve.cache import default_image_cache


@dataclass
class BenchResult:
    """Measured figures for one benchmark run."""

    name: str
    variant: str
    stats: RunStats
    cycle_seconds: float

    @property
    def inferences(self) -> int:
        """Logical inferences (paper definition)."""
        return self.stats.inferences

    @property
    def milliseconds(self) -> float:
        """Execution time at the configuration's cycle time."""
        return self.stats.milliseconds(self.cycle_seconds)

    @property
    def klips(self) -> float:
        """Kilo logical inferences per second."""
        return self.stats.klips(self.cycle_seconds)


class SuiteRunner:
    """Loads and runs suite benchmarks on one machine configuration.

    ``machine_factory`` builds a fresh machine around a given symbol
    table; the default is the calibrated KCM.  Loaded images are cached
    so repeated runs (pytest-benchmark rounds) pay compilation once.
    """

    def __init__(self,
                 machine_factory: Optional[
                     Callable[[SymbolTable], Machine]] = None,
                 io_mode: str = "stub"):
        self.machine_factory = machine_factory or (
            lambda symbols: Machine(symbols=symbols))
        self.io_mode = io_mode
        self._loaded: Dict[str, Machine] = {}

    def load(self, name: str, variant: str = "pure") -> Machine:
        """Install ``name`` in ``variant`` onto a fresh machine.

        The linked image comes from the process-global compile-once
        cache (:mod:`repro.serve.cache`), so several runners — the
        fast/ablation pair of the host-throughput bench, the service
        benchmarks — compile each suite program exactly once between
        them; the machine is built around the cached image's symbol
        table.
        """
        key = f"{name}:{variant}"
        machine = self._loaded.get(key)
        if machine is not None:
            return machine
        benchmark = SUITE[name]
        source, query = self._select(benchmark, variant)
        image = default_image_cache().get(source, query,
                                          io_mode=self.io_mode)
        machine = self.machine_factory(image.symbols)
        image.install(machine)
        machine.image = image
        self._loaded[key] = machine
        return machine

    @staticmethod
    def _select(benchmark: Benchmark, variant: str) -> "tuple[str, str]":
        if variant == "timed":
            return benchmark.source_timed, benchmark.query_timed
        if variant == "pure":
            return benchmark.source_pure, benchmark.query_pure
        raise ValueError(f"unknown variant {variant!r}")

    def run(self, name: str, variant: str = "pure",
            warm: bool = True) -> BenchResult:
        """Execute one benchmark; returns its measurements.

        ``warm=True`` (default) runs the program once beforehand so the
        measured run sees warm caches — the paper's methodology ("the
        figure given here is the best figure obtained on 4 successive
        runs"); con1's published 0.006 ms cannot contain a single cold
        miss.  ``warm=False`` measures the cold first run instead.
        """
        machine = self.load(name, variant)
        image = machine.image
        collect = SUITE[name].all_solutions
        names = image.query_variable_names
        if warm:
            machine.run(image.entry, collect_all=collect,
                        answer_names=names)
            machine.memory.reset_statistics()
        stats = machine.run(image.entry, collect_all=collect,
                            answer_names=names)
        return BenchResult(name=name, variant=variant, stats=stats,
                           cycle_seconds=machine.costs.cycle_seconds)

    def run_suite(self, variant: str = "pure",
                  warm: bool = True) -> Dict[str, BenchResult]:
        """Run every suite program; returns results in table order."""
        return {name: self.run(name, variant, warm=warm)
                for name in SUITE_ORDER}
