"""Opcode-sequence profiler: selects the superinstruction fusion table.

Runs the PLM bench corpus under an instruction tracer (which forces the
seed per-instruction loop, so the profile sees the exact executed
instruction stream), segments the stream into straight-line runs — a
run breaks at every control transfer, i.e. wherever the executed
successor differs from the fall-through, and after every
:data:`~repro.core.predecode.BLOCK_ENDERS` opcode, mirroring how the
predecoder delimits basic blocks — and counts executions per opcode
sequence.  Sequences are ranked by ``count * max(1, len - 1)``: the
number of handler dispatches fusing that sequence would eliminate
(single-opcode runs still save the outer-loop iteration, counted as
one dispatch).

The selection is written as the generated module
:mod:`repro.core.superops_table`, committed so builds are reproducible
without re-profiling.  Regenerate (or verify, in CI) with::

    PYTHONPATH=src python -m repro.bench.superprofile            # rewrite
    PYTHONPATH=src python -m repro.bench.superprofile --check    # verify
    PYTHONPATH=src python -m repro.bench.superprofile --json out.json

The output is deterministic for a given corpus and selection
parameters: simulated execution is deterministic, and ranking ties
break on the sequence itself.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.programs import SUITE_ORDER
from repro.bench.runner import SuiteRunner
from repro.core.machine import Machine
from repro.core.predecode import BLOCK_ENDERS
from repro.core.superops import MAX_FUSE_LEN, MIN_FUSE_LEN

#: Default selection parameters (the committed table's provenance).
#: The count floor is 1 on purpose: the deriv family and the long
#: once-per-query head/body blocks run only a handful of times each,
#: but carry a large share of their program's host time — a high floor
#: fuses the recursion-heavy programs and leaves the one-shot ones
#: cold.  The top-N cut is what bounds table size.
DEFAULT_TOP = 384
DEFAULT_MIN_COUNT = 1


class SequenceProfiler:
    """Tracer that segments the executed instruction stream into
    straight-line runs and counts them by opcode-name sequence."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self.instructions = 0
        self._run: List[str] = []
        self._expected = -1

    def on_instruction(self, machine, p, instr, replay=False) -> None:
        if replay:
            return
        self.instructions += 1
        if p != self._expected and self._run:
            # Control arrived here from somewhere else: the previous
            # run ended at its last instruction (deviation or failure).
            self._flush()
        self._run.append(instr.op.name)
        if instr.op in BLOCK_ENDERS:
            self._flush()
            self._expected = -1
        else:
            self._expected = p + instr.size

    def _flush(self) -> None:
        if self._run:
            self.counts[tuple(self._run)] += 1
            del self._run[:]

    def finish(self) -> None:
        """Account the trailing run (program halted mid-block)."""
        self._flush()


def profile_corpus(programs: Optional[Sequence[str]] = None,
                   variant: str = "pure") -> SequenceProfiler:
    """Execute ``programs`` (default: the full suite) under the
    profiler and return it."""
    names = list(programs) if programs is not None else list(SUITE_ORDER)
    profiler = SequenceProfiler()
    runner = SuiteRunner(machine_factory=lambda s: Machine(symbols=s,
                                                           fast_path=True))
    for name in names:
        machine = runner.load(name, variant)
        machine.tracer = profiler     # forces the per-instruction loop
        try:
            runner.run(name, variant, warm=False)
        finally:
            machine.tracer = None
        profiler.finish()
    return profiler


def select_sequences(counts: Counter,
                     top: int = DEFAULT_TOP,
                     min_count: int = DEFAULT_MIN_COUNT
                     ) -> List[Tuple[Tuple[str, ...], int]]:
    """Rank profiled sequences by eliminated dispatches and keep the
    ``top`` ones above ``min_count`` executions.

    Runs longer than :data:`~repro.core.superops.MAX_FUSE_LEN` are
    truncated to that prefix (merging counts) rather than dropped —
    the fuser matches static blocks by recorded prefix, so the prefix
    is what the table needs to carry.  Single-opcode runs eliminate no
    dispatch but a whole outer-loop iteration, weighted here like one
    dispatch; the fuser only accepts them for inline-emitted opcodes.
    """
    merged: Counter = Counter()
    for seq, count in counts.items():
        if len(seq) >= MIN_FUSE_LEN:
            merged[seq[:MAX_FUSE_LEN]] += count
    ranked = []
    for seq, count in merged.items():
        if count < min_count:
            continue
        ranked.append((count * max(1, len(seq) - 1), count, seq))
    ranked.sort(key=lambda item: (-item[0], -item[1], item[2]))
    return [(seq, count) for _, count, seq in ranked[:top]]


def render_table(selected: List[Tuple[Tuple[str, ...], int]],
                 corpus: Sequence[str], total_instructions: int,
                 top: int, min_count: int) -> str:
    """The generated superops_table.py source text (deterministic)."""
    lines = [
        '"""GENERATED - do not edit.',
        "",
        "Superinstruction fusion table selected by profiling the bench",
        "corpus; see repro.bench.superprofile (the generator) and",
        "repro.core.superops (the consumer).  Regenerate with:",
        "",
        "    PYTHONPATH=src python -m repro.bench.superprofile",
        "",
        f"Corpus: {', '.join(corpus)}",
        f"Instructions profiled: {total_instructions}",
        f"Selection: top {top} sequences with >= {min_count} executions,",
        "ranked by executions * max(1, length - 1) (handler dispatches",
        'eliminated).  Each entry is (opcode_names, executed_count).',
        '"""',
        "",
        "SEQUENCES = (",
    ]
    for seq, count in selected:
        names = ", ".join(f'"{name}"' for name in seq)
        entry = f"    (({names},), {count}),"
        if len(entry) <= 78:
            lines.append(entry)
        else:
            lines.append("    ((")
            for name in seq:
                lines.append(f'        "{name}",')
            lines.append(f"    ), {count}),")
    lines.append(")")
    return "\n".join(lines) + "\n"


def default_output_path() -> Path:
    import repro.core
    return Path(repro.core.__file__).resolve().parent \
        / "superops_table.py"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="table module path (default: the in-tree "
                             "repro/core/superops_table.py)")
    parser.add_argument("--json", default=None,
                        help="also write the profile/selection as a "
                             "JSON artifact (CI upload)")
    parser.add_argument("--check", action="store_true",
                        help="regenerate and compare against the "
                             "committed table instead of writing; "
                             "exit 1 on drift")
    parser.add_argument("--top", type=int, default=DEFAULT_TOP)
    parser.add_argument("--min-count", type=int, default=DEFAULT_MIN_COUNT)
    parser.add_argument("--programs", nargs="*", default=None,
                        help="corpus subset (default: full suite)")
    args = parser.parse_args(argv)

    corpus = args.programs if args.programs else list(SUITE_ORDER)
    profiler = profile_corpus(corpus)
    selected = select_sequences(profiler.counts, top=args.top,
                                min_count=args.min_count)
    text = render_table(selected, corpus, profiler.instructions,
                        args.top, args.min_count)
    output = Path(args.output) if args.output else default_output_path()

    fused_instr = sum(count * len(seq) for seq, count in selected)
    print(f"  profiled {profiler.instructions} instructions, "
          f"{len(profiler.counts)} distinct runs")
    print(f"  selected {len(selected)} sequences covering "
          f"{fused_instr} executed instructions "
          f"({100.0 * fused_instr / max(1, profiler.instructions):.1f}%)")

    if args.json:
        artifact = {
            "corpus": list(corpus),
            "total_instructions": profiler.instructions,
            "distinct_runs": len(profiler.counts),
            "selection": {"top": args.top, "min_count": args.min_count},
            "covered_instructions": fused_instr,
            "sequences": [{"ops": list(seq), "count": count}
                          for seq, count in selected],
        }
        with open(args.json, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  JSON artifact written to {args.json}")

    if args.check:
        try:
            committed = output.read_text()
        except OSError:
            print(f"  MISSING: {output} does not exist; run the "
                  f"generator to create it")
            return 1
        if committed != text:
            print(f"  DRIFT: {output} does not match a fresh "
                  f"regeneration; rerun "
                  f"`python -m repro.bench.superprofile`")
            return 1
        print(f"  ok: {output} matches the regenerated table")
        return 0

    output.write_text(text)
    print(f"  table written to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
