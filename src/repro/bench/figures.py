"""Regeneration of the paper's figures.

Figures 1–7 are architecture diagrams, not data plots; for a software
artefact the faithful reproduction is a rendering **derived from the
live configuration objects** — the word-format figures read the bit
positions from :mod:`repro.core.tags`, the instruction-format figure
reads :mod:`repro.core.opcodes` metadata, the architecture block
diagrams enumerate the actual component objects of a constructed
machine.  If the code changes, the figures change with it.

``cache_collision_experiment`` reproduces the *measured* experiment of
section 3.2.4: hit ratios of a direct-mapped data cache under two
top-of-stack initialisations, with and without KCM's zone-sectioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import tags
from repro.core.machine import Machine
from repro.core.opcodes import OP_INFO, Format
from repro.core.symbols import SymbolTable
from repro.api import compile_and_load


def figure1() -> str:
    """Figure 1: KCM system environment."""
    return "\n".join([
        "Figure 1: KCM System Environment",
        "",
        "  +--------------------+       +---------------------------+",
        "  |  UNIX workstation  | VME   |            KCM            |",
        "  |  (host: I/O, file  |<----->| +-----+  +--------------+ |",
        "  |  system, paging,   | comm. | | CPU |--| comm. memory | |",
        "  |  user interaction) | memory| +-----+  +--------------+ |",
        "  |                    |       |    |     +--------------+ |",
        "  |    diskless desk-  |       |    +-----| main memory  | |",
        "  |    top cabinet     |       |          |  32 MB board | |",
        "  +--------------------+       +---------------------------+",
        "",
        "  Back-end processor with private memory; the host serves I/O",
        "  and paging (paper section 2.1).",
    ])


def _bit_ruler(fields: List[tuple]) -> List[str]:
    """Render a 64-bit word as labelled fields.

    ``fields`` is a list of (high_bit, low_bit, label).
    """
    top = []
    mid = []
    for high, low, label in fields:
        width = max(len(label) + 2, 2 * (high - low + 1) // 3 + 2)
        top.append(f"{high:>3}..{low:<3}".center(width))
        mid.append(label.center(width))
    line = "+" + "+".join("-" * len(c) for c in mid) + "+"
    return [" " + " ".join(top), line,
            "|" + "|".join(mid) + "|", line]


def figure2() -> str:
    """Figure 2: KCM data word format (from the live tag layout)."""
    fields = [
        (63, 62, "GC"),
        (61, 56, "unused"),
        (tags.ZONE_SHIFT + tags.ZONE_BITS - 1, tags.ZONE_SHIFT, "zone"),
        (tags.TYPE_SHIFT + tags.TYPE_BITS - 1, tags.TYPE_SHIFT, "type"),
        (47, 32, "unused"),
        (31, 0, "value (32-bit)"),
    ]
    lines = ["Figure 2: KCM Data Word Format (64 bits)", ""]
    lines += _bit_ruler(fields)
    lines += ["", "types: " + ", ".join(t.name for t in tags.Type),
              "zones: " + ", ".join(z.name for z in tags.Zone)]
    return "\n".join(lines)


def figure3() -> str:
    """Figure 3: the two instruction word formats, with the opcodes
    that use each (from the live opcode metadata)."""
    by_format: Dict[Format, List[str]] = {Format.R4: [], Format.ADDR: []}
    for op, info in OP_INFO.items():
        by_format[info.format].append(op.name.lower())
    lines = ["Figure 3: KCM Instruction Word Formats (64 bits)", ""]
    lines += _bit_ruler([(63, 48, "opcode+modes"), (47, 36, "reg s1"),
                         (35, 24, "reg s2"), (23, 12, "reg d1"),
                         (11, 0, "reg d2")])
    lines += ["  R4 (register) format: "
              + ", ".join(sorted(by_format[Format.R4])), ""]
    lines += _bit_ruler([(63, 48, "opcode+modes"), (47, 42, "reg"),
                         (41, 26, "offset/aux"), (25, 0, "address")])
    lines += ["  ADDR (address) format: "
              + ", ".join(sorted(by_format[Format.ADDR]))]
    lines += ["", "All branch targets are absolute (section 3.1.3); the "
              "switch instructions are the only multi-word instructions."]
    return "\n".join(lines)


def figure4() -> str:
    """Figure 4: top-level architecture, enumerated from a machine."""
    machine = Machine()
    mem = machine.memory
    return "\n".join([
        "Figure 4: KCM Top Level Architecture",
        "",
        "   +----------------+        +-----------------+",
        "   | prefetch unit  |        | execution unit  |",
        "   | (3-stage pipe) |        | (64x64 regfile, |",
        "   +-------+--------+        |  ALUs, FPU,     |",
        "           |                 |  MWAC, trail)   |",
        "           | IBUS            +--------+--------+",
        "   +-------+--------+                 | DBUS",
        f"   |  code cache    |        +--------+--------+",
        f"   |  {mem.code_cache.TOTAL_WORDS // 1024}K x 64 words |"
        f"        |   data cache    |",
        "   |  write-through |        | "
        f"{mem.data_cache.TOTAL_WORDS // 1024}K x 64, copy-back|",
        f"   +-------+--------+        |  {mem.data_cache.SECTIONS}"
        " zone sections |",
        "           |                 +--------+--------+",
        "           +---------+----------------+",
        "                     | (logical caches: MMU below)",
        "           +---------+---------+",
        "           | memory management |",
        "           |  page-table RAM   |",
        "           +---------+---------+",
        "                     |",
        "           +---------+---------+",
        f"           |   main memory     |",
        f"           |   {mem.main_memory.words * 8 // (1 << 20)} MB board  "
        "   |",
        "           +-------------------+",
        "",
        "   control unit: single central microsequencer (synchronous, "
        "4-phase clock, 80 ns)",
    ])


def figure5() -> str:
    """Figure 5: the execution unit's buses and ports."""
    return "\n".join([
        "Figure 5: The Execution Unit",
        "",
        "        ABUS ====================================",
        "        BBUS ====================================",
        "          |         |        |         |        |",
        "      +---+---+ +---+---+ +--+--+ +----+---+ +--+--+",
        "      | 64x64 | | ALU_C | |ALU_D| |  FPU   | | TVM |",
        "      | 4-port| |address| |data | |32b IEEE| | tag |",
        "      |regfile| +---+---+ +--+--+ +----+---+ +--+--+",
        "      | + RAC |     |        |         |        |",
        "      +---+---+  CBUS ===================================",
        "          |      DBUS ===================================",
        "          |                  |",
        "          |             +----+------+   +-------+",
        "          +-------------+ data cache+---+ Trail |",
        "                        +-----------+   +-------+",
        "",
        "  Four-address format: two sources (ABUS/BBUS), two",
        "  destinations (CBUS/DBUS) -> a double register move per cycle.",
        "  The trail comparators watch addresses in parallel with",
        "  dereferencing (section 3.1.5).",
    ])


def figure6() -> str:
    """Figure 6: the instruction prefetch unit."""
    return "\n".join([
        "Figure 6: The Prefetch Unit (3-stage pipeline)",
        "",
        "     +-----+    +------------+     +------------+",
        "  +->|  P  |--->| code cache |---->|  IB  | SP   |",
        "  |  +-----+    +------------+     +---+--------+",
        "  | (+1 each cycle)                    |",
        "  |        branch predecode -----------+",
        "  |                                    v",
        "  |                                +---+--------+",
        "  +--------------------------------|  IR  | TP  |",
        "        (branch target from IB)    +------------+",
        "",
        "  P  : address of instruction n+2     IB/SP: instr n+1 + address",
        "  IR/TP: executing instr n + address",
        "  1 instruction/cycle; immediate jumps and calls 2 cycles;",
        "  conditional branches 1 (not taken) / 4 (taken).",
    ])


def figure7() -> str:
    """Figure 7: address format (from the live layout constants)."""
    fields = [
        (63, 62, "GC"),
        (tags.ZONE_SHIFT + tags.ZONE_BITS - 1, tags.ZONE_SHIFT, "zone"),
        (tags.TYPE_SHIFT + tags.TYPE_BITS - 1, tags.TYPE_SHIFT, "type"),
        (47, 32, "unused"),
        (31, tags.ADDRESS_BITS, "0000"),
        (tags.ADDRESS_BITS - 1, tags.PAGE_OFFSET_BITS, "virtual page"),
        (tags.PAGE_OFFSET_BITS - 1, 0, "page offset"),
    ]
    lines = ["Figure 7: KCM Address Format", ""]
    lines += _bit_ruler(fields)
    lines += [
        "",
        f"word addresses; page size {tags.PAGE_SIZE_WORDS} words (16K); "
        f"{1 << tags.PAGE_NUMBER_BITS} virtual pages per space",
        f"zone check granularity: {tags.ZONE_GRANULE_WORDS} words (4K), "
        "bits 27..12 against the limit RAM",
    ]
    return "\n".join(lines)


def all_figures() -> str:
    """Every figure, concatenated."""
    parts = [figure1(), figure2(), figure3(), figure4(), figure5(),
             figure6(), figure7()]
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# The section 3.2.4 cache experiment
# ---------------------------------------------------------------------------

@dataclass
class CacheExperimentResult:
    """Hit ratios for one configuration of the collision experiment."""

    sectioned: bool
    staggered: bool
    hit_ratio: float
    accesses: int
    misses: int


#: A small stack-busy program (the paper ran "a number of small
#: programs"); nrev exercises global, local, control and trail stacks.
_EXPERIMENT_PROGRAM = """
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
"""
_EXPERIMENT_QUERY = "nrev([1,2,3,4,5,6,7,8,9,10,11,12], R)"


def run_cache_configuration(sectioned: bool, staggered: bool
                            ) -> CacheExperimentResult:
    """Run the experiment program under one cache/stack configuration."""
    from repro.core.costs import Features
    from repro.memory.memory_system import MemorySystem

    features = Features(sectioned_cache=sectioned)
    memory = MemorySystem(sectioned_cache=sectioned)
    machine = Machine(symbols=SymbolTable(), features=features,
                      memory=memory, stagger_stacks=staggered)
    machine = compile_and_load(_EXPERIMENT_PROGRAM, _EXPERIMENT_QUERY,
                               machine=machine)
    # Warm measurement: compulsory misses must not mask the conflict
    # effect the paper describes (their figures come from repeated
    # runs of resident programs).
    machine.run(machine.image.entry,
                answer_names=machine.image.query_variable_names)
    machine.memory.reset_statistics()
    machine.run(machine.image.entry,
                answer_names=machine.image.query_variable_names)
    stats = machine.memory.data_cache.stats
    return CacheExperimentResult(
        sectioned=sectioned, staggered=staggered,
        hit_ratio=stats.hit_ratio, accesses=stats.accesses,
        misses=stats.misses)


def cache_collision_experiment() -> Dict[str, CacheExperimentResult]:
    """The four-way experiment of section 3.2.4.

    Plain direct-mapped cache: "hit ratios were very good in the first
    run [staggered pointers] and dropped quite dramatically in the
    second [colliding pointers]".  KCM's zone-sectioned cache is immune
    to the initialisation because stacks can never evict each other.
    """
    return {
        "plain/staggered": run_cache_configuration(False, True),
        "plain/colliding": run_cache_configuration(False, False),
        "sectioned/staggered": run_cache_configuration(True, True),
        "sectioned/colliding": run_cache_configuration(True, False),
    }


def render_cache_experiment() -> str:
    """Text table of the experiment."""
    results = cache_collision_experiment()
    lines = [
        "Section 3.2.4 experiment: direct-mapped data cache vs",
        "top-of-stack initialisation (warm caches, nrev(12))",
        "",
        f"{'configuration':24s} {'hit ratio':>10s} {'accesses':>9s} "
        f"{'misses':>7s}",
    ]
    for name, r in results.items():
        lines.append(f"{name:24s} {r.hit_ratio:10.4f} {r.accesses:9d} "
                     f"{r.misses:7d}")
    lines += [
        "",
        "paper: plain cache hit ratio 'very good' when staggered,",
        "'dropped quite dramatically' when colliding; the zone-",
        "sectioned cache removes the sensitivity entirely.",
    ]
    return "\n".join(lines)
