"""Regeneration of the paper's Tables 1–4.

Each ``tableN()`` function returns a :class:`TableResult` holding the
measured rows plus formatting; ``render()`` prints the same rows the
paper reports, with the paper's published figure next to each measured
one.  The benchmark harness in ``benchmarks/`` and the CLI
(``python -m repro.bench``) both go through these functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.plm import PLMCodeModel, plm_machine
from repro.baselines.quintus import quintus_machine
from repro.baselines.spur import SPURCodeModel
from repro.bench import paper_data
from repro.bench.programs import SUITE, SUITE_ORDER
from repro.bench.runner import SuiteRunner
from repro.api import compile_and_load
from repro.core.costs import KCM_CYCLE_SECONDS


@dataclass
class TableResult:
    """One regenerated table: header, rows, and any footer lines."""

    title: str
    header: Sequence[str]
    rows: List[Sequence[str]]
    footer: List[str] = field(default_factory=list)
    #: raw per-program measurements for tests to assert on.
    data: Dict[str, dict] = field(default_factory=dict)

    def render(self) -> str:
        """Fixed-width text rendering."""
        widths = [len(h) for h in self.header]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(row):
            return "  ".join(str(c).rjust(w) if i else str(c).ljust(w)
                             for i, (c, w) in enumerate(zip(row, widths)))
        lines = [self.title, "=" * len(self.title), fmt(self.header),
                 "-" * (sum(widths) + 2 * (len(widths) - 1))]
        lines += [fmt(row) for row in self.rows]
        lines += self.footer
        return "\n".join(lines)


def _geo_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


# ---------------------------------------------------------------------------
# Table 1 — static code size
# ---------------------------------------------------------------------------

def table1() -> TableResult:
    """Static code size: PLM vs SPUR vs KCM (paper Table 1)."""
    plm_model = PLMCodeModel()
    spur_model = SPURCodeModel()
    rows = []
    data = {}
    instr_ratios, byte_ratios = [], []
    spur_instr_ratios, spur_byte_ratios = [], []
    for name in SUITE_ORDER:
        benchmark = SUITE[name]
        source, query = benchmark.source_timed, benchmark.query_timed
        image = compile_and_load(source, query).image
        kcm_instr = image.program_instructions
        kcm_words = image.program_words
        kcm_bytes = image.program_bytes
        plm = plm_model.measure(image, source, query)
        spur = spur_model.measure(source, query)
        paper = paper_data.TABLE1[name]
        ratio_instr = kcm_instr / plm.instructions
        ratio_bytes = kcm_bytes / plm.bytes
        spur_ratio_instr = spur.instructions / kcm_instr
        spur_ratio_bytes = spur.bytes / kcm_bytes
        instr_ratios.append(ratio_instr)
        byte_ratios.append(ratio_bytes)
        spur_instr_ratios.append(spur_ratio_instr)
        spur_byte_ratios.append(spur_ratio_bytes)
        rows.append((name,
                     str(plm.instructions), str(plm.bytes),
                     str(spur.instructions), str(spur.bytes),
                     str(kcm_instr), str(kcm_words), str(kcm_bytes),
                     f"{ratio_instr:.2f}", f"{ratio_bytes:.2f}",
                     f"{spur_ratio_instr:.2f}", f"{spur_ratio_bytes:.2f}",
                     str(paper.kcm_instructions), str(paper.kcm_words)))
        data[name] = {
            "kcm_instructions": kcm_instr, "kcm_words": kcm_words,
            "kcm_bytes": kcm_bytes,
            "plm_instructions": plm.instructions, "plm_bytes": plm.bytes,
            "spur_instructions": spur.instructions,
            "spur_bytes": spur.bytes,
            "kcm_plm_instr_ratio": ratio_instr,
            "kcm_plm_byte_ratio": ratio_bytes,
            "spur_kcm_instr_ratio": spur_ratio_instr,
            "spur_kcm_byte_ratio": spur_ratio_bytes,
        }
    avg = (sum(instr_ratios) / len(instr_ratios),
           sum(byte_ratios) / len(byte_ratios),
           sum(spur_instr_ratios) / len(spur_instr_ratios),
           sum(spur_byte_ratios) / len(spur_byte_ratios))
    footer = [
        f"average KCM/PLM instr {avg[0]:.2f} (paper "
        f"{paper_data.TABLE1_AVG_KCM_PLM_INSTR}), bytes {avg[1]:.2f} "
        f"(paper {paper_data.TABLE1_AVG_KCM_PLM_BYTES})",
        f"average SPUR/KCM instr {avg[2]:.2f} (paper "
        f"{paper_data.TABLE1_AVG_SPUR_KCM_INSTR}), bytes {avg[3]:.2f} "
        f"(paper {paper_data.TABLE1_AVG_SPUR_KCM_BYTES})",
    ]
    return TableResult(
        title="Table 1: Static code size comparison (measured)",
        header=("Program", "PLM.i", "PLM.B", "SPUR.i", "SPUR.B",
                "KCM.i", "KCM.w", "KCM.B", "K/P.i", "K/P.B",
                "S/K.i", "S/K.B", "ppr.Ki", "ppr.Kw"),
        rows=rows, footer=footer, data=data)


# ---------------------------------------------------------------------------
# Tables 2 and 3 — execution time comparisons
# ---------------------------------------------------------------------------

def _execution_table(title: str, variant: str,
                     baseline_factory: Callable,
                     paper_rows: Dict[str, object],
                     paper_ratio_key: str,
                     paper_avg: float,
                     programs: Optional[List[str]] = None) -> TableResult:
    kcm_runner = SuiteRunner()
    baseline_runner = SuiteRunner(machine_factory=baseline_factory)
    rows = []
    data = {}
    ratios = []
    for name in (programs if programs is not None else SUITE_ORDER):
        kcm = kcm_runner.run(name, variant)
        baseline = baseline_runner.run(name, variant)
        ratio = baseline.milliseconds / kcm.milliseconds
        ratios.append(ratio)
        paper = paper_rows[name]
        paper_ratio = getattr(paper, paper_ratio_key)
        rows.append((name, str(kcm.inferences),
                     f"{baseline.milliseconds:.3f}",
                     f"{baseline.klips:.0f}",
                     f"{kcm.milliseconds:.3f}", f"{kcm.klips:.0f}",
                     f"{ratio:.2f}",
                     f"{paper_ratio:.2f}" if paper_ratio else "--"))
        data[name] = {
            "inferences": kcm.inferences,
            "baseline_ms": baseline.milliseconds,
            "baseline_klips": baseline.klips,
            "kcm_ms": kcm.milliseconds,
            "kcm_klips": kcm.klips,
            "ratio": ratio,
            "paper_ratio": paper_ratio,
        }
    footer = [f"average ratio {sum(ratios)/len(ratios):.2f} "
              f"(paper {paper_avg})"]
    return TableResult(
        title=title,
        header=("Program", "Inf", "base ms", "base Klips",
                "KCM ms", "KCM Klips", "ratio", "paper"),
        rows=rows, footer=footer, data=data)


def table2(programs: Optional[List[str]] = None) -> TableResult:
    """Execution time vs the PLM (paper Table 2; timed variants)."""
    return _execution_table(
        "Table 2: Comparison with PLM (measured)",
        "timed", lambda s: plm_machine(s), paper_data.TABLE2,
        "ratio", paper_data.TABLE2_AVG_RATIO, programs=programs)


def table3(programs: Optional[List[str]] = None) -> TableResult:
    """Execution time vs Quintus/SUN-3 (paper Table 3; I/O removed)."""
    return _execution_table(
        "Table 3: Comparison with QUINTUS/SUN (measured)",
        "pure", lambda s: quintus_machine(s), paper_data.TABLE3,
        "ratio", paper_data.TABLE3_AVG_RATIO, programs=programs)


# ---------------------------------------------------------------------------
# Table 4 — peak performance of dedicated Prolog machines
# ---------------------------------------------------------------------------

CONCAT_SOURCE = """
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
"""

NREV_SOURCE = CONCAT_SOURCE + """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
"""


def measure_concat_step_cycles(length: int = 120) -> float:
    """Cycles of one concatenation step, the paper's peak metric.

    Section 4.3: "only the basic inferencing step, i.e. the
    concatenation of one more element, is taken into account".  We
    measure it by running one query doing a single concat and one doing
    two concats of the same (pre-built) list and dividing the
    difference — data generation cancels out exactly.
    """
    elements = ",".join(f"a{i}" for i in range(length))
    one = compile_and_load(
        CONCAT_SOURCE, f"concat([{elements}], [end], X)")
    two = compile_and_load(
        CONCAT_SOURCE, f"concat([{elements}], [end], X), "
        f"concat([{elements}], [end], Y)")
    def warm_cycles(machine):
        machine.run(machine.image.entry,
                    answer_names=machine.image.query_variable_names)
        stats = machine.run(machine.image.entry,
                            answer_names=machine.image.query_variable_names)
        return stats.cycles
    c1 = warm_cycles(one)
    c2 = warm_cycles(two)
    # The second concat adds `length+1` inference steps plus one list
    # rebuild; the rebuild is the query's data generation, excluded by
    # construction since both queries build their lists identically...
    # except the second builds the input twice.  Subtract the known
    # 3-cycles-per-element build cost of that second copy.
    build_cycles = 3 * (length + 1) + 2
    return (c2 - c1 - build_cycles) / (length + 1)


def measure_nrev_klips(length: int = 30) -> float:
    """Warm whole-benchmark nrev Klips (the paper's second peak column)."""
    elements = ",".join(str(i) for i in range(length))
    machine = compile_and_load(NREV_SOURCE, f"nrev([{elements}], R)")
    machine.run(machine.image.entry,
                answer_names=machine.image.query_variable_names)
    stats = machine.run(machine.image.entry,
                        answer_names=machine.image.query_variable_names)
    return stats.klips(KCM_CYCLE_SECONDS)


def table4() -> TableResult:
    """Peak Klips of dedicated Prolog machines (paper Table 4).

    The other machines are literature constants (they no longer exist);
    the KCM row is measured from this simulator.
    """
    step = measure_concat_step_cycles()
    con_klips = 1.0 / (step * KCM_CYCLE_SECONDS) / 1e3
    nrev_klips = measure_nrev_klips()
    rows = []
    for machine_name, row in paper_data.TABLE4.items():
        if machine_name == "KCM":
            con = f"{con_klips:.0f}"
            nrev = f"{nrev_klips:.0f}"
            comment = row.comment + " [measured]"
        else:
            con = str(row.con_klips) if row.con_klips else "?"
            nrev = str(row.nrev_klips) if row.nrev_klips else "?"
            comment = row.comment + " [published]"
        rows.append((machine_name, row.by, f"{con} - {nrev}",
                     str(row.word_bits), comment))
    footer = [
        f"measured concatenation step: {step:.1f} cycles "
        f"(paper: {paper_data.KCM_CON1_STEP_CYCLES} cycles -> 833 Klips)"]
    return TableResult(
        title="Table 4: Comparison with other dedicated Prolog machines",
        header=("Machine", "By", "Klips (con-nrev)", "Word", "Comment"),
        rows=rows, footer=footer,
        data={"kcm_con_step_cycles": {"value": step},
              "kcm_con_klips": {"value": con_klips},
              "kcm_nrev_klips": {"value": nrev_klips}})
