"""Query-service throughput: compile-once + warm pool vs the seed path.

Like :mod:`repro.bench.host_throughput`, this module measures the
simulator on the *host*: end-to-end queries per second over a batch of
PLM-suite queries, under four serving configurations:

``naive_sequential``
    The seed ``run_query`` path: every query recompiles its program
    and builds a fresh :class:`~repro.core.machine.Machine`.  This is
    the sequential baseline the acceptance gate compares against — it
    is what every call cost before the serving subsystem existed.
``cached_sequential``
    ``QueryService(workers=0)``: compile-once image cache plus a warm
    engine pool, still one query at a time in-process.  Isolates the
    amortization win from the multiprocessing machinery.
``service_wN``
    ``QueryService(workers=N)``: the full multiprocess pool.

The batch is a short-query-heavy traffic mix (each short suite program
repeated ``short_reps`` times, the longer ones once): the serving
subsystem exists precisely because compile/load overhead and engine
construction dominate end-to-end latency for *short* queries — for a
50 ms query the seed path's fixed ~18 ms overhead is noise, for con1's
60 µs it is a 300x tax.

Every mode's per-slot results are cross-checked against the naive
reference: identical solutions and bit-identical simulated
:class:`~repro.core.statistics.RunStats`, so the speedup never comes
from computing something different.  Worker processes are warmed with
one untimed pass (image shipping and machine construction amortize
across a service's lifetime; the report measures the steady state —
see docs/SERVING.md for the methodology).

The committed ``BENCH_parallel_service.json`` is the CI baseline; the
gate compares the dimensionless speedup-vs-naive ratio at the highest
measured worker count, so runner hardware (and its core count) does
not matter.  On a single-core host the multiprocess ratio measures
amortization plus IPC overhead, not parallelism; multicore hosts add
real parallel scaling on top.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import run_query
from repro.bench.programs import SUITE, SUITE_ORDER
from repro.serve import QueryService

#: suite programs short enough that fixed per-query overhead dominates
#: the seed path; the batch repeats these to model short-query traffic.
SHORT_PROGRAMS = ("con1", "con6", "divide10", "log10", "ops8", "times10")

#: CI smoke configuration: short programs plus one medium, few reps.
QUICK_PROGRAMS = list(SHORT_PROGRAMS) + ["nrev1"]

#: the committed serving-throughput batch: the short programs repeated
#: heavily plus the two medium ones.  Serving traffic is what the
#: subsystem exists for — many short queries whose cost is dominated
#: by fixed overhead — so that is what the committed baseline (and the
#: parallelism-pays gate) measures; one-shot long-query interpretation
#: speed is BENCH_host_throughput's domain, not this benchmark's.
SERVING_PROGRAMS = list(SHORT_PROGRAMS) + ["nrev1", "qs4"]

FULL_REPS = 15
FULL_SHORT_REPS = 8
QUICK_REPS = 2

#: naive passes are ~15x slower than served ones and only anchor the
#: speedup-vs-naive ratio (the beats-cached gate never reads them), so
#: the best-of-N rep count is capped for that mode.
MAX_NAIVE_REPS = 5


def build_batch(programs: Optional[List[str]] = None,
                short_reps: int = 4,
                variant: str = "pure"
                ) -> Tuple[Dict[str, str], List[Tuple[str, str]]]:
    """The benchmark workload: ``(sources, batch)`` where ``batch`` is
    an ordered list of (program_name, query_text) slots."""
    names = list(programs) if programs is not None else list(SUITE_ORDER)
    sources: Dict[str, str] = {}
    batch: List[Tuple[str, str]] = []
    for name in names:
        benchmark = SUITE[name]
        if variant == "pure":
            source, query = benchmark.source_pure, benchmark.query_pure
        elif variant == "timed":
            source, query = benchmark.source_timed, benchmark.query_timed
        else:
            raise ValueError(f"unknown variant {variant!r}")
        sources[name] = source
        repeats = short_reps if name in SHORT_PROGRAMS else 1
        batch.extend([(name, query)] * repeats)
    return sources, batch


def _naive_pass(sources: Dict[str, str],
                batch: List[Tuple[str, str]]) -> Tuple[float, list]:
    """One seed-path pass: compile + fresh machine per query."""
    outcomes = []
    started = time.perf_counter()
    for name, query in batch:
        result = run_query(sources[name], query, use_cache=False)
        outcomes.append((result.solutions, result.stats))
    return time.perf_counter() - started, outcomes


def _service_pass(service: QueryService,
                  batch: List[Tuple[str, str]]) -> Tuple[float, list]:
    """One batched pass through a service (any worker count)."""
    started = time.perf_counter()
    results = service.run_many(batch)
    elapsed = time.perf_counter() - started
    for result in results:
        if not result.ok:
            raise AssertionError(
                f"benchmark query failed: {batch[result.index]}: "
                f"{result.error}")
    return elapsed, [(r.solutions, r.stats) for r in results]


def _check_identity(mode: str, reference: list, outcomes: list,
                    batch: List[Tuple[str, str]]) -> None:
    for slot, ((ref_solutions, ref_stats),
               (solutions, stats)) in enumerate(zip(reference, outcomes)):
        if solutions != ref_solutions or stats != ref_stats:
            raise AssertionError(
                f"{mode}: slot {slot} ({batch[slot]}) diverged from the "
                f"naive reference")


def measure_service(programs: Optional[List[str]] = None,
                    short_reps: int = 4,
                    reps: int = FULL_REPS,
                    workers: Sequence[int] = (1, 2, 4),
                    variant: str = "pure") -> Dict:
    """Measure every serving mode over the same batch; returns the
    report dict.  Raises ``AssertionError`` if any mode's solutions or
    simulated statistics ever diverge from the naive reference."""
    sources, batch = build_batch(programs=programs, short_reps=short_reps,
                                 variant=variant)
    timings: Dict[str, float] = {}

    # The naive reference: best-of-N passes, reference outcomes from
    # the first (cross-checked to be rep-stable).
    best = float("inf")
    reference: Optional[list] = None
    for _ in range(min(reps, MAX_NAIVE_REPS)):
        elapsed, outcomes = _naive_pass(sources, batch)
        if reference is None:
            reference = outcomes
        else:
            _check_identity("naive_sequential", reference, outcomes, batch)
        best = min(best, elapsed)
    timings["naive_sequential"] = best

    # Service modes are measured interleaved: every rep runs one pass
    # of every mode before the next rep starts.  Block-per-mode timing
    # lets a slow system epoch (scheduler churn, page cache pressure)
    # land entirely on one mode and decide the beats-cached verdict;
    # interleaving exposes every mode to the same epochs, so best-of-N
    # compares like with like.
    modes = [("cached_sequential", 0)] + [
        (f"service_w{count}", count) for count in workers]
    services: Dict[str, QueryService] = {}
    try:
        for mode, count in modes:
            service = QueryService(sources, workers=count, io_mode="stub")
            services[mode] = service
            _service_pass(service, batch)      # warm: ship images, build
            timings[mode] = float("inf")       # machines, fill caches
        for _ in range(reps):
            for mode, _count in modes:
                elapsed, outcomes = _service_pass(services[mode], batch)
                _check_identity(mode, reference, outcomes, batch)
                timings[mode] = min(timings[mode], elapsed)
    finally:
        for service in services.values():
            service.close()

    size = len(batch)
    naive = timings["naive_sequential"]
    cached = timings["cached_sequential"]
    gate_mode = f"service_w{max(workers)}"
    report_modes = {
        mode: {
            "seconds": round(seconds, 4),
            "queries_per_second": round(size / seconds, 2),
            "speedup_vs_naive": round(naive / seconds, 3),
            "qps_vs_cached": round(cached / seconds, 3),
            "beats_cached": seconds < cached,
        }
        for mode, seconds in timings.items()
    }
    return {
        "suite": f"kcm-{variant}",
        "reps": reps,
        # The beats-cached verdicts only carry meaning relative to
        # this: on a single-core host the pool cannot overlap work
        # with the parent, so service_wN measures pure data-plane
        # overhead against cached_sequential; with >= 2 cores the
        # same comparison measures overhead minus real parallelism.
        "host": {"cpu_count": os.cpu_count() or 1},
        "batch": {
            "queries": size,
            "programs": sorted(sources),
            "short_reps": short_reps,
            "short_programs": [name for name in SHORT_PROGRAMS
                               if name in sources],
        },
        "modes": report_modes,
        "gate": {
            "mode": gate_mode,
            "workers": max(workers),
            "speedup_vs_naive": report_modes[gate_mode]["speedup_vs_naive"],
            # The parallelism-pays gate: every measured service_wN with
            # N >= 2 must beat the warm single-process baseline.
            "beats_cached": {
                f"service_w{count}":
                    report_modes[f"service_w{count}"]["beats_cached"]
                for count in workers if count >= 2
            },
        },
        "identity_checked": True,
    }


def write_report(report: Dict, path: str) -> None:
    """Write ``report`` as the JSON artifact."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_regression(report: Dict, baseline_path: str,
                     max_regression: float = 0.35) -> str:
    """Compare ``report`` against a committed baseline report.

    Gates the dimensionless speedup-vs-naive ratio at the gate worker
    count, which transfers across runner hardware.  The tolerance is
    wider than the host-throughput gate's because the ratio folds in
    process scheduling and IPC, which are noisier than pure
    interpretation.  Raises ``AssertionError`` when the current ratio
    has lost more than ``max_regression`` of the committed one.

    Speedup-vs-naive depends on the batch composition (a shorter-query
    mix amortizes more), so that dimension only gates when the current
    run measured the same batch the baseline did — a ``--quick`` smoke
    gated against the committed full-batch report skips it and relies
    on the qps-vs-cached dimension, which compares two modes over the
    *same* batch and therefore transfers across batch mixes.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    committed = baseline["gate"]["speedup_vs_naive"]
    current = report["gate"]["speedup_vs_naive"]
    floor = committed * (1.0 - max_regression)
    same_batch = report.get("batch") == baseline.get("batch")
    if same_batch:
        assert current >= floor, (
            f"parallel-service regression: speedup {current:.3f}x at "
            f"{report['gate']['mode']} is below {floor:.3f}x "
            f"({100 * max_regression:.0f}% under the committed "
            f"{committed:.3f}x)")
    # Second dimension: the data-plane overhead ratio.  qps-vs-cached
    # strips the naive path out entirely, so it catches a regression
    # in the worker transport itself (serialization, batching, pipe
    # handling) that speedup-vs-naive would hide behind a slow naive
    # pass.  Also dimensionless: more cores only raise it.
    mode = report["gate"]["mode"]
    committed_ratio = baseline["modes"].get(mode, {}).get("qps_vs_cached")
    if committed_ratio is not None:
        current_ratio = report["modes"][mode]["qps_vs_cached"]
        ratio_floor = committed_ratio * (1.0 - max_regression)
        assert current_ratio >= ratio_floor, (
            f"parallel-service data-plane regression: {mode} at "
            f"{current_ratio:.3f}x cached_sequential is below "
            f"{ratio_floor:.3f}x (committed {committed_ratio:.3f}x)")
    if not same_batch:
        if committed_ratio is None:
            return ("baseline has no qps_vs_cached and a different "
                    "batch — nothing comparable to gate")
        return (f"{mode} qps {report['modes'][mode]['qps_vs_cached']:.3f}x "
                f"cached vs committed {committed_ratio:.3f}x — ok "
                f"(different batch; speedup-vs-naive not compared)")
    return (f"{report['gate']['mode']} speedup {current:.3f}x vs "
            f"committed {committed:.3f}x (floor {floor:.3f}x) — ok")


def check_beats_cached(report: Dict, min_workers: int = 2) -> str:
    """Assert the parallelism-pays invariant: every measured
    ``service_wN`` with ``N >= min_workers`` ran the batch faster than
    ``cached_sequential`` (one warm in-process worker).  This is the
    gate the micro-batched shared-memory data plane exists to hold —
    a pool that loses to a single warm worker is pure overhead.
    """
    losers = []
    checked = []
    for mode, info in sorted(report["modes"].items()):
        if not mode.startswith("service_w"):
            continue
        count = int(mode[len("service_w"):])
        if count < min_workers:
            continue
        checked.append(f"{mode} {info['qps_vs_cached']:.3f}x")
        if not info["beats_cached"]:
            cached_qps = (report["modes"]["cached_sequential"]
                          ["queries_per_second"])
            losers.append(
                f"{mode}: {info['queries_per_second']:.1f} qps <= "
                f"cached_sequential {cached_qps:.1f} qps")
    assert checked, (
        f"no service_wN modes with N >= {min_workers} in the report")
    assert not losers, (
        "parallel service loses to one warm worker: " + "; ".join(losers))
    return ("beats-cached gate: " + ", ".join(checked) + " — ok")
