"""Benchmark suite, runner, paper data and table/figure harness.

``python -m repro.bench all`` regenerates every table and figure of
the paper's evaluation section; see DESIGN.md for the experiment index.
"""

from repro.bench.programs import SUITE, SUITE_ORDER, Benchmark
from repro.bench.runner import BenchResult, SuiteRunner

__all__ = ["SUITE", "SUITE_ORDER", "Benchmark", "BenchResult",
           "SuiteRunner"]
