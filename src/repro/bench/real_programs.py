"""Real-size programs (paper section 5).

The paper's future work: evaluate "the behaviour of the system on
real-size programs" beyond the PLM micro-suite.  Three mid-size
workloads with very different profiles:

- ``send_more_money`` — the classic cryptarithmetic puzzle, a
  permutation search with column-wise arithmetic pruning: deep
  backtracking, heavy trail/choice-point traffic, integer division;
- ``knight`` — a knight's tour on a 5x5 board: structure-heavy
  depth-first search with negation-free visited-list checks and cut;
- ``animals`` — a small identification expert system: the
  database/rule-chaining profile KCM's indexing was built for.

Each entry mirrors :class:`repro.bench.programs.Benchmark` enough for
the harnesses in ``benchmarks/bench_real_programs.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

SELECT = """
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
"""

SEND_MORE_MONEY = SELECT + """
/*   S E N D + M O R E = M O N E Y   (column-wise with pruning) */
smm(S, E, N, D, M, O, R, Y) :-
    Ds = [0,1,2,3,4,5,6,7,8,9],
    sel(D, Ds, D1),
    sel(E, D1, D2),
    Y0 is D + E, Y is Y0 mod 10, C1 is Y0 // 10,
    sel(Y, D2, D3),
    sel(N, D3, D4),
    sel(R, D4, D5),
    E0 is N + R + C1, Em is E0 mod 10, Em =:= E, C2 is E0 // 10,
    sel(O, D5, D6),
    N0 is E + O + C2, Nm is N0 mod 10, Nm =:= N, C3 is N0 // 10,
    sel(M, D6, D7), M =\\= 0,
    sel(S, D7, _), S =\\= 0,
    O0 is S + M + C3, Om is O0 mod 10, Om =:= O, C4 is O0 // 10,
    C4 =:= M.
"""

KNIGHT_TOUR = """
move(X, Y, X2, Y2) :- delta(DX, DY), X2 is X + DX, Y2 is Y + DY,
    X2 >= 1, X2 =< 5, Y2 >= 1, Y2 =< 5.
delta(1, 2). delta(2, 1). delta(2, -1). delta(1, -2).
delta(-1, -2). delta(-2, -1). delta(-2, 1). delta(-1, 2).

absent(_, []).
absent(P, [Q|T]) :- P \\== Q, absent(P, T).

tour(0, _, _, Visited, Visited) :- !.
tour(N, X, Y, Visited, Path) :-
    move(X, Y, X2, Y2),
    absent(p(X2, Y2), Visited),
    M is N - 1,
    tour(M, X2, Y2, [p(X2, Y2)|Visited], Path).

knight(Hops, Path) :- tour(Hops, 1, 1, [p(1, 1)], Path).
"""

ANIMALS = """
/* A classic identification expert system: attribute facts about an
   observed animal plus identification rules over them. */
has(hair). has(claws). has(forward_eyes). eats(meat).
has(tawny_colour). has(dark_spots).

verify(has(X)) :- has(X).
verify(eats(X)) :- eats(X).

mammal :- verify(has(hair)).
mammal :- verify(has(milk)).
bird :- verify(has(feathers)).
bird :- verify(has(eggs)), verify(has(flies)).

carnivore :- verify(eats(meat)).
carnivore :- verify(has(pointed_teeth)), verify(has(claws)),
             verify(has(forward_eyes)).

ungulate :- mammal, verify(has(hooves)).

identify(cheetah) :- mammal, carnivore,
    verify(has(tawny_colour)), verify(has(dark_spots)).
identify(tiger) :- mammal, carnivore,
    verify(has(tawny_colour)), verify(has(black_stripes)).
identify(giraffe) :- ungulate,
    verify(has(long_neck)), verify(has(dark_spots)).
identify(zebra) :- ungulate, verify(has(black_stripes)).
identify(ostrich) :- bird, verify(has(long_neck)).
identify(penguin) :- bird, verify(has(swims)),
    verify(has(black_and_white)).
identify(albatross) :- bird, verify(has(flies_well)).
"""


@dataclass(frozen=True)
class RealProgram:
    """One real-size workload."""

    name: str
    description: str
    source: str
    query: str
    all_solutions: bool = False
    #: sanity bound for the expected answer, asserted by the bench.
    check_binding: str = ""


REAL_PROGRAMS: Dict[str, RealProgram] = {p.name: p for p in [
    RealProgram(
        "send_more_money",
        "cryptarithmetic permutation search with arithmetic pruning",
        SEND_MORE_MONEY, "smm(S, E, N, D, M, O, R, Y)",
        check_binding="S = 9, E = 5, N = 6, D = 7, M = 1, O = 0, "
                      "R = 8, Y = 2"),
    RealProgram(
        "knight_tour",
        "16-hop knight path on a 5x5 board (DFS with visited list)",
        KNIGHT_TOUR, "knight(16, Path)"),
    RealProgram(
        "animals",
        "identification expert system (rule chaining over facts)",
        ANIMALS, "identify(Animal)",
        check_binding="Animal = cheetah"),
]}
