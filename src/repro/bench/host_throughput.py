"""Host throughput of the simulator itself: fast path vs ablation.

Unlike every other file in this package, which reports *simulated*
figures (cycles at 80 ns, Klips as the paper defines them), this module
measures how fast the simulator runs on the *host*: wall-clock per
suite program and host KLIPS (simulated logical inferences per host
second), under the predecoded threaded-dispatch fast path
(``Machine(fast_path=True)``, the default) and under the ablation
(``fast_path=False``, the seed per-instruction interpreter).  See
docs/PERF.md for the design of the fast path and the methodology notes
behind the numbers.

Methodology (shared with ``repro.bench.parallel_service``): both
configurations are loaded and warmed first, then measured interleaved
per rep — every rep runs one full-suite pass of each mode before the
next rep starts, with the mode order flipped every rep — taking the
per-program best-of-N.  Interleaving matters: block-per-mode timing
lets a slow system epoch (scheduler churn, page-cache pressure,
frequency steps) land entirely on one mode and decide the speedup
verdict; alternating passes expose both modes to the same epochs, so
best-of-N compares like with like.

Every measurement round also cross-checks that the two configurations
produced bit-identical simulated results (cycles, instructions,
inferences, data accesses, solutions) — a throughput number for a fast
path that diverges from the reference semantics would be meaningless.

The report is emitted as ``BENCH_host_throughput.json``; the committed
copy at the repository root is the regression baseline CI gates on
(dimensionless speedup ratio, not absolute wall-clock, so runner
hardware does not matter).
"""

from __future__ import annotations

import json
import math
import time
from typing import Dict, List, Optional

from repro.bench.programs import SUITE_ORDER
from repro.bench.runner import SuiteRunner
from repro.core.machine import Machine


#: Subset used by the CI smoke run: two short and two medium programs.
QUICK_PROGRAMS = ["con6", "nrev1", "qs4", "times10"]


def _identity_key(runner: SuiteRunner, name: str, variant: str):
    """The simulated observables one measured run must reproduce:
    the cycle/instruction/inference/memory counters plus the rendered
    solution bindings themselves — a fast path that returned the right
    counts with the wrong answers must still fail the check."""
    machine = runner.load(name, variant)
    stats = machine.stats
    return (stats.cycles, stats.instructions, stats.inferences,
            stats.data_reads, stats.data_writes,
            len(machine.solutions), str(machine.solutions))


def measure_suite(programs: Optional[List[str]] = None,
                  variant: str = "pure",
                  reps: int = 5) -> Dict:
    """Measure host wall-clock for ``programs`` (default: full suite).

    Returns the report dict (see module docstring for the shape).
    Raises ``AssertionError`` if the fast path's simulated statistics
    ever diverge from the ablation's.
    """
    names = list(programs) if programs is not None else list(SUITE_ORDER)
    fast = SuiteRunner(machine_factory=lambda s: Machine(symbols=s,
                                                         fast_path=True))
    ablation = SuiteRunner(machine_factory=lambda s: Machine(
        symbols=s, fast_path=False))

    # Load, warm and identity-check every program up front.
    for name in names:
        fast.run(name, variant, warm=True)
        ablation.run(name, variant, warm=True)
        assert _identity_key(fast, name, variant) \
            == _identity_key(ablation, name, variant), \
            f"{name}: fast path diverged from the ablation"

    best_fast = {name: float("inf") for name in names}
    best_ablation = {name: float("inf") for name in names}
    for rep in range(reps):
        pair = ((fast, best_fast), (ablation, best_ablation))
        if rep % 2:
            pair = tuple(reversed(pair))
        for runner, best in pair:
            for name in names:
                t0 = time.perf_counter()
                runner.run(name, variant, warm=False)
                best[name] = min(best[name], time.perf_counter() - t0)
        for name in names:
            assert _identity_key(fast, name, variant) \
                == _identity_key(ablation, name, variant), \
                f"{name}: fast path diverged from the ablation"

    rows = {}
    ratios = []
    for name in names:
        f_s, a_s = best_fast[name], best_ablation[name]
        inferences = fast.load(name, variant).stats.inferences
        speedup = a_s / f_s
        ratios.append(speedup)
        rows[name] = {
            "fast_ms": round(f_s * 1e3, 4),
            "ablation_ms": round(a_s * 1e3, 4),
            "speedup": round(speedup, 3),
            "inferences": inferences,
            "host_klips_fast": round(inferences / f_s / 1e3, 2),
            "host_klips_ablation": round(inferences / a_s / 1e3, 2),
        }
    total_fast = sum(best_fast.values())
    total_ablation = sum(best_ablation.values())
    return {
        "suite": f"kcm-{variant}",
        "reps": reps,
        "programs": rows,
        "aggregate": {
            "fast_ms_total": round(total_fast * 1e3, 3),
            "ablation_ms_total": round(total_ablation * 1e3, 3),
            "speedup": round(total_ablation / total_fast, 3),
            "geomean_speedup": round(
                math.exp(sum(math.log(r) for r in ratios) / len(ratios)),
                3),
        },
        "identity_checked": True,
    }


def write_report(report: Dict, path: str) -> None:
    """Write ``report`` as the JSON artifact."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_regression(report: Dict, baseline_path: str,
                     max_regression: float = 0.25) -> str:
    """Compare ``report`` against a committed baseline report.

    The gated quantity is the *aggregate speedup ratio* — dimensionless,
    so it transfers across runner hardware, unlike absolute wall-clock.
    Raises ``AssertionError`` when the current ratio has lost more than
    ``max_regression`` of the committed one; returns a one-line summary
    otherwise.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    committed = baseline["aggregate"]["speedup"]
    current = report["aggregate"]["speedup"]
    floor = committed * (1.0 - max_regression)
    assert current >= floor, (
        f"host-throughput regression: aggregate speedup {current:.3f}x "
        f"is below {floor:.3f}x ({100 * max_regression:.0f}% under the "
        f"committed {committed:.3f}x)")
    return (f"aggregate speedup {current:.3f}x vs committed "
            f"{committed:.3f}x (floor {floor:.3f}x) — ok")
