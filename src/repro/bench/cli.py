"""Command-line harness: regenerate any table or figure of the paper.

Usage::

    python -m repro.bench table1|table2|table3|table4
    python -m repro.bench figures
    python -m repro.bench cache-experiment
    python -m repro.bench suite [--variant pure|timed] [--cold]
    python -m repro.bench all

(Also installed as the ``kcm-bench`` console script.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _suite(variant: str, warm: bool) -> str:
    from repro.bench.programs import SUITE_ORDER
    from repro.bench.runner import SuiteRunner
    runner = SuiteRunner()
    lines = [f"PLM suite on KCM ({variant} variants, "
             f"{'warm' if warm else 'cold'} caches)",
             f"{'program':10s} {'inferences':>10s} {'cycles':>10s} "
             f"{'ms':>9s} {'Klips':>8s}"]
    for name in SUITE_ORDER:
        result = runner.run(name, variant, warm=warm)
        lines.append(f"{name:10s} {result.inferences:10d} "
                     f"{result.stats.cycles:10d} "
                     f"{result.milliseconds:9.3f} {result.klips:8.1f}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="kcm-bench",
        description="Regenerate the tables and figures of 'KCM: A "
                    "Knowledge Crunching Machine' (ISCA 1989).")
    parser.add_argument("target",
                        choices=["table1", "table2", "table3", "table4",
                                 "figures", "cache-experiment", "suite",
                                 "all"],
                        help="what to regenerate")
    parser.add_argument("--variant", choices=["pure", "timed"],
                        default="pure",
                        help="suite variant (pure = I/O removed)")
    parser.add_argument("--cold", action="store_true",
                        help="measure cold-cache first runs")
    args = parser.parse_args(argv)

    out: List[str] = []
    if args.target in ("table1", "all"):
        from repro.bench.tables import table1
        out.append(table1().render())
    if args.target in ("table2", "all"):
        from repro.bench.tables import table2
        out.append(table2().render())
    if args.target in ("table3", "all"):
        from repro.bench.tables import table3
        out.append(table3().render())
    if args.target in ("table4", "all"):
        from repro.bench.tables import table4
        out.append(table4().render())
    if args.target in ("figures", "all"):
        from repro.bench.figures import all_figures
        out.append(all_figures())
    if args.target in ("cache-experiment", "all"):
        from repro.bench.figures import render_cache_experiment
        out.append(render_cache_experiment())
    if args.target == "suite":
        out.append(_suite(args.variant, warm=not args.cold))

    print("\n\n".join(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
