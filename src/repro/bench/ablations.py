"""Ablations: "the influence of each specialized unit".

The paper's future-work section promises evaluation studies "to get
proper figures on the influence of each specialized unit (trail,
dereferencing, RAC, double port register file ...) on the overall
performance".  These harnesses deliver that study on the simulator:
each ablation switches one KCM mechanism off (with the honest serial-
hardware cost in its place) and reruns the suite.

- ``shallow``  — A1: delayed choice-point creation off (eager WAM CPs);
- ``trail``    — A2: parallel trail comparators off (2 serial-compare
  cycles per conditional binding);
- ``mwac``     — the MWAC multi-way dispatch off (serial type tests on
  switches and unification instructions);
- ``cache``    — A3: zone-sectioned data cache replaced by a plain
  direct-mapped cache of the same total size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.programs import SUITE_ORDER
from repro.bench.runner import SuiteRunner
from repro.core.costs import Features
from repro.core.machine import Machine
from repro.core.symbols import SymbolTable

#: ablation name -> Features overrides.
ABLATIONS: Dict[str, dict] = {
    "shallow": {"shallow_backtracking": False},
    "trail": {"parallel_trail": False},
    "mwac": {"mwac": False},
    "cache": {"sectioned_cache": False},
}


@dataclass
class AblationRow:
    """One program's baseline-vs-ablated cycles."""

    program: str
    baseline_cycles: int
    ablated_cycles: int

    @property
    def slowdown(self) -> float:
        """Ablated / baseline cycles (>= 1 means the unit helps)."""
        if not self.baseline_cycles:
            return 1.0
        return self.ablated_cycles / self.baseline_cycles


def _ablated_factory(name: str):
    overrides = ABLATIONS[name]
    def factory(symbols: SymbolTable) -> Machine:
        return Machine(symbols=symbols, features=Features(**overrides))
    return factory


def run_ablation(name: str, programs: Optional[List[str]] = None,
                 variant: str = "pure") -> List[AblationRow]:
    """Run the suite with one unit disabled; returns per-program rows."""
    if name not in ABLATIONS:
        raise ValueError(f"unknown ablation {name!r}; "
                         f"one of {sorted(ABLATIONS)}")
    programs = programs if programs is not None else SUITE_ORDER
    baseline = SuiteRunner()
    ablated = SuiteRunner(machine_factory=_ablated_factory(name))
    rows = []
    for program in programs:
        base = baseline.run(program, variant)
        abl = ablated.run(program, variant)
        rows.append(AblationRow(program=program,
                                baseline_cycles=base.stats.cycles,
                                ablated_cycles=abl.stats.cycles))
    return rows


def render_ablation(name: str,
                    programs: Optional[List[str]] = None) -> str:
    """Text table for one ablation."""
    rows = run_ablation(name, programs)
    lines = [f"Ablation '{name}': KCM vs KCM-without-{name}",
             f"{'program':10s} {'KCM cycles':>11s} {'ablated':>11s} "
             f"{'slowdown':>9s}"]
    for row in rows:
        lines.append(f"{row.program:10s} {row.baseline_cycles:11d} "
                     f"{row.ablated_cycles:11d} {row.slowdown:9.3f}")
    mean = sum(r.slowdown for r in rows) / len(rows)
    lines.append(f"{'mean':10s} {'':11s} {'':11s} {mean:9.3f}")
    return "\n".join(lines)
