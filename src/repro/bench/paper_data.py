"""Published numbers from the paper's evaluation section.

Typed transcriptions of Tables 1–4 so every harness can print
paper-vs-measured side by side and the regression tests can assert the
reproduced *shape*.  Two OCR notes on the copy we work from:

- Table 1/2/3 row names "conl"/"nrevl" are con1/nrev1 (l vs 1);
- Table 1 rows "dnecus" and "dnesh" are garbled; by elimination
  against the Table 2/3 row sets they are ``queens`` and ``query``
  and are mapped so here.
- Table 4 prints "8007- ?" for DLM-1 (800 Klips) and "7 - 620" for AIP
  (? - 620); transcribed accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

# ---------------------------------------------------------------------------
# Table 1: static code size
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One program's published static sizes."""

    plm_instructions: int
    plm_bytes: int
    spur_instructions: int
    spur_bytes: int
    kcm_instructions: int
    kcm_words: int
    kcm_bytes: int


TABLE1: Dict[str, Table1Row] = {
    "con1": Table1Row(28, 87, 414, 1656, 33, 31, 248),
    "con6": Table1Row(32, 106, 430, 1720, 39, 41, 328),
    "divide10": Table1Row(213, 661, 3988, 15952, 214, 234, 1872),
    "hanoi": Table1Row(52, 183, 385, 1540, 56, 59, 472),
    "log10": Table1Row(207, 625, 4040, 16160, 198, 208, 1664),
    "mutest": Table1Row(141, 468, 1703, 6812, 162, 172, 1376),
    "nrev1": Table1Row(71, 260, 761, 3044, 64, 70, 560),
    "ops8": Table1Row(205, 633, 3804, 15216, 206, 216, 1728),
    "palin25": Table1Row(178, 565, 2556, 10224, 230, 240, 1920),
    "pri2": Table1Row(132, 383, 1933, 7732, 141, 151, 1208),
    "qs4": Table1Row(121, 456, 1230, 4920, 184, 192, 1536),
    "queens": Table1Row(242, 723, 3636, 14544, 212, 224, 1792),
    "query": Table1Row(273, 1138, 3942, 15768, 305, 357, 2856),
    "times10": Table1Row(213, 661, 3988, 15952, 214, 224, 1792),
}

#: Paper's Table 1 averages.
TABLE1_AVG_KCM_PLM_INSTR = 1.10
TABLE1_AVG_KCM_PLM_BYTES = 2.96
TABLE1_AVG_SPUR_KCM_INSTR = 13.61
TABLE1_AVG_SPUR_KCM_BYTES = 6.43

# ---------------------------------------------------------------------------
# Table 2: PLM vs KCM execution (timed variants, I/O as unit clauses)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """One program's published PLM/KCM timings."""

    inferences: int
    plm_ms: float
    plm_klips: int
    kcm_ms: float
    kcm_klips: int
    ratio: float


TABLE2: Dict[str, Table2Row] = {
    "con1": Table2Row(6, 0.023, 261, 0.007, 857, 3.29),
    "con6": Table2Row(42, 0.137, 307, 0.059, 712, 2.32),
    "divide10": Table2Row(22, 0.380, 58, 0.091, 242, 4.18),
    "hanoi": Table2Row(1787, 7.323, 244, 2.795, 639, 2.62),
    "log10": Table2Row(14, 0.109, 128, 0.039, 359, 2.79),
    "mutest": Table2Row(1365, 12.407, 110, 4.644, 294, 2.67),
    "nrev1": Table2Row(499, 2.660, 188, 0.650, 768, 4.09),
    "ops8": Table2Row(20, 0.214, 93, 0.059, 339, 3.63),
    "palin25": Table2Row(325, 3.152, 103, 1.221, 266, 2.58),
    "pri2": Table2Row(1235, 10.000, 124, 5.240, 236, 1.91),
    "qs4": Table2Row(612, 4.854, 126, 1.316, 465, 3.69),
    "queens": Table2Row(687, 4.222, 163, 1.205, 570, 3.50),
    "query": Table2Row(2893, 17.342, 167, 12.610, 229, 1.38),
    "times10": Table2Row(22, 0.330, 67, 0.082, 268, 4.02),
}

TABLE2_AVG_RATIO = 3.05

# ---------------------------------------------------------------------------
# Table 3: Quintus/SUN-3 vs KCM (pure variants, I/O removed)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Row:
    """One program's published Quintus/KCM timings; Quintus columns are
    None where the paper left holes ("too small to get significant
    results")."""

    inferences: int
    quintus_ms: Optional[float]
    quintus_klips: Optional[int]
    kcm_ms: float
    kcm_klips: int
    ratio: Optional[float]


TABLE3: Dict[str, Table3Row] = {
    "con1": Table3Row(4, None, None, 0.006, 666, None),
    "con6": Table3Row(12, None, None, 0.046, 261, None),
    "divide10": Table3Row(20, None, None, 0.090, 222, None),
    "hanoi": Table3Row(767, 11.600, 66, 1.264, 607, 9.18),
    "log10": Table3Row(12, None, None, 0.039, 308, None),
    "mutest": Table3Row(1365, 41.500, 33, 4.644, 294, 8.94),
    "nrev1": Table3Row(497, 3.300, 151, 0.649, 766, 5.08),
    "ops8": Table3Row(18, None, None, 0.058, 310, None),
    "palin25": Table3Row(323, 9.330, 35, 1.220, 265, 7.65),
    "pri2": Table3Row(1233, 30.500, 40, 5.239, 235, 5.82),
    "qs4": Table3Row(610, 11.000, 55, 1.315, 464, 8.37),
    "queens": Table3Row(657, 9.010, 73, 1.182, 556, 7.62),
    "query": Table3Row(2888, 128.170, 23, 12.605, 229, 10.17),
    "times10": Table3Row(20, None, None, 0.081, 247, None),
}

TABLE3_AVG_RATIO = 7.85

# ---------------------------------------------------------------------------
# Table 4: dedicated Prolog machines, peak Klips
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table4Row:
    """One machine's published peak figures."""

    by: str
    con_klips: Optional[int]      # con1-like (one concatenation step)
    nrev_klips: Optional[int]     # nrev1-like
    word_bits: int
    comment: str


TABLE4: Dict[str, Table4Row] = {
    "CHI-II": Table4Row("NEC C&C", 490, None, 40,
                        "Back-end - multi-processing"),
    "DLM-1": Table4Row("BAe", 800, None, 38,
                       "Back-end - physical memory"),
    "IPP": Table4Row("Hitachi", 1360, 1197, 32,
                     "Integrated in super-mini (ECL)"),
    "AIP": Table4Row("Toshiba", None, 620, 32, "Back-end"),
    "KCM": Table4Row("ECRC", 833, 760, 64, "Back-end"),
    "PSI-II": Table4Row("ICOT", 400, 320, 40,
                        "Stand-alone - multi-processing"),
    "X-1": Table4Row("Xenologic", 400, None, 32, "SUN co-processor"),
}

#: The con1-step cost behind KCM's 833 Klips: 15 cycles at 80 ns.
KCM_CON1_STEP_CYCLES = 15
