"""Built-in predicates reached through the escape mechanism.

On the real KCM, built-ins either run in microcode or escape to
runtime-system routines; the benchmark methodology of section 4.2
additionally compiles ``write/1`` and ``nl/0`` as unit clauses costing
a minimal 5-cycle call/return.  This module implements the runtime
routines in Python with explicit cycle charges, so escape-heavy
programs remain cycle-accounted.

A built-in is a callable ``f(machine, arity) -> bool``; arguments are
in A1..An.  Returning False triggers backtracking.  Built-ins that
transfer control (``call/1``) or stop the machine (``halt/0``,
``'$answer'``) manipulate the machine directly.

The linker assigns each (name, arity) used by a program a small
integer id carried in the ESCAPE instruction (see
:meth:`repro.compiler.linker.Linker.link`).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.decode import decode_word
from repro.core.opcodes import ArithOp
from repro.core.tags import Type
from repro.core.word import (
    Word, make_float, make_functor, make_int, make_struct,
    to_single_precision, wrap_int32,
)
from repro.errors import ArithmeticError_, ExistenceError, MachineError
from repro.prolog.writer import term_to_text

BuiltinFn = Callable[["object", int], bool]


# ---------------------------------------------------------------------------
# term ordering (==/2, compare/3 and friends)
# ---------------------------------------------------------------------------

#: Standard order of terms: variables < numbers < atoms < compounds.
_ORDER_CLASS = {
    Type.REF: 0, Type.INT: 1, Type.FLOAT: 1, Type.NIL: 2, Type.ATOM: 2,
    Type.LIST: 3, Type.STRUCT: 3,
}


def compare_words(machine, left: Word, right: Word) -> int:
    """Three-way standard-order comparison of two heap terms.

    Charges one cycle per visited pair, approximating the microcode
    loop.  Returns -1, 0 or 1.
    """
    worklist = [(left, right)]
    symbols = machine.symbols
    while worklist:
        a, b = worklist.pop()
        a = machine.deref(a)
        b = machine.deref(b)
        machine.cycles += 1
        ca, cb = _ORDER_CLASS[a.type], _ORDER_CLASS[b.type]
        if ca != cb:
            return -1 if ca < cb else 1
        if ca == 0:                       # both variables: by address
            if a.value != b.value:
                return -1 if a.value < b.value else 1
            continue
        if ca == 1:                       # numbers
            if a.value != b.value:
                return -1 if a.value < b.value else 1
            continue
        if ca == 2:                       # atoms: alphabetical
            na = "[]" if a.type is Type.NIL else symbols.atom_name(a.value)
            nb = "[]" if b.type is Type.NIL else symbols.atom_name(b.value)
            if na != nb:
                return -1 if na < nb else 1
            continue
        # Compounds: arity, then name, then args left to right.
        na, aa = _functor_of(machine, a)
        nb, ab = _functor_of(machine, b)
        if aa != ab:
            return -1 if aa < ab else 1
        if na != nb:
            return -1 if na < nb else 1
        pairs = [(_arg_of(machine, a, i), _arg_of(machine, b, i))
                 for i in range(aa)]
        worklist.extend(reversed(pairs))
    return 0


def _functor_of(machine, word: Word) -> Tuple[str, int]:
    if word.type is Type.LIST:
        return ".", 2
    functor = machine.memory.store.read(word.value)
    return machine.symbols.functor_key(int(functor.value))


def _arg_of(machine, word: Word, index: int) -> Word:
    base = word.value if word.type is Type.LIST else word.value + 1
    return machine.memory.store.read(base + index)


# ---------------------------------------------------------------------------
# arithmetic evaluation over heap terms (generic 'is' fallback)
# ---------------------------------------------------------------------------

_EVAL_BINARY = {
    "+": ArithOp.ADD, "-": ArithOp.SUB, "*": ArithOp.MUL, "/": ArithOp.DIV,
    "//": ArithOp.IDIV, "mod": ArithOp.MOD, "min": ArithOp.MIN,
    "max": ArithOp.MAX, "/\\": ArithOp.AND, "\\/": ArithOp.OR,
    "xor": ArithOp.XOR, "<<": ArithOp.SHL, ">>": ArithOp.SHR,
}


def eval_arith(machine, word: Word) -> Word:
    """Evaluate an arithmetic expression term on the heap.

    Used when the compiler could not flatten the expression statically
    (the expression arrives in a variable).  Costs mirror the ARITH
    instruction costs per operator node.
    """
    word = machine.deref(word)
    t = word.type
    if t is Type.INT or t is Type.FLOAT:
        return word
    if t is Type.REF:
        raise ArithmeticError_("unbound variable in arithmetic")
    if t is Type.STRUCT:
        name, arity = _functor_of(machine, word)
        if arity == 2 and name in _EVAL_BINARY:
            left = eval_arith(machine, _arg_of(machine, word, 0))
            right = eval_arith(machine, _arg_of(machine, word, 1))
            return _apply_binary(machine, _EVAL_BINARY[name], left, right)
        if arity == 1 and name == "-":
            operand = eval_arith(machine, _arg_of(machine, word, 0))
            return _apply_binary(machine, ArithOp.NEG, operand, operand)
        if arity == 1 and name == "abs":
            operand = eval_arith(machine, _arg_of(machine, word, 0))
            return _apply_binary(machine, ArithOp.ABS, operand, operand)
    raise ArithmeticError_(
        f"not an arithmetic expression: "
        f"{machine.symbols.describe_constant(word)}")


def _apply_binary(machine, op: ArithOp, left: Word, right: Word) -> Word:
    is_float = left.type is Type.FLOAT or right.type is Type.FLOAT
    table = machine.costs.arith_float if is_float \
        else machine.costs.arith_int
    machine.cycles += table[op]
    lv, rv = left.value, right.value
    try:
        if op is ArithOp.ADD:
            result = lv + rv
        elif op is ArithOp.SUB:
            result = lv - rv
        elif op is ArithOp.MUL:
            result = lv * rv
        elif op is ArithOp.DIV:
            result = lv / rv if is_float else int(lv / rv)
        elif op is ArithOp.IDIV:
            result = lv // rv
        elif op is ArithOp.MOD:
            result = lv % rv
        elif op is ArithOp.NEG:
            result = -lv
        elif op is ArithOp.ABS:
            result = abs(lv)
        elif op is ArithOp.MIN:
            result = min(lv, rv)
        elif op is ArithOp.MAX:
            result = max(lv, rv)
        elif op is ArithOp.AND:
            result = int(lv) & int(rv)
        elif op is ArithOp.OR:
            result = int(lv) | int(rv)
        elif op is ArithOp.XOR:
            result = int(lv) ^ int(rv)
        elif op is ArithOp.SHL:
            result = int(lv) << int(rv)
        else:
            result = int(lv) >> int(rv)
    except ZeroDivisionError:
        raise ArithmeticError_("division by zero")
    if is_float:
        return make_float(to_single_precision(float(result)))
    return make_int(wrap_int32(int(result)))


# ---------------------------------------------------------------------------
# the built-ins
# ---------------------------------------------------------------------------

def _bi_true(machine, arity: int) -> bool:
    return True


def _bi_fail(machine, arity: int) -> bool:
    return False


def _bi_halt(machine, arity: int) -> bool:
    machine.running = False
    machine.halted = True
    return True


def _bi_write(machine, arity: int) -> bool:
    term = decode_word(machine, machine.regs.x(0))
    machine.output.append(term_to_text(term))
    machine.cycles += machine.costs.write_builtin
    return True


def _bi_writeq(machine, arity: int) -> bool:
    term = decode_word(machine, machine.regs.x(0))
    machine.output.append(term_to_text(term, quoted=True))
    machine.cycles += machine.costs.write_builtin
    return True


def _bi_nl(machine, arity: int) -> bool:
    machine.output.append("\n")
    machine.cycles += machine.costs.write_builtin
    return True


def _bi_tab(machine, arity: int) -> bool:
    count = machine.deref(machine.regs.x(0))
    machine.output.append(" " * max(0, int(count.value)))
    machine.cycles += machine.costs.write_builtin
    return True


# The type tests are module-level ``def`` statements (not closures
# from a factory) so every handler in BUILTIN_TABLE pickles by
# reference — linked images and machines cross process boundaries in
# the query service (repro.serve), and a closure cannot.

def _type_of_first(machine) -> Type:
    return machine.deref(machine.regs.x(0)).type


def _bi_var(machine, arity: int) -> bool:
    return _type_of_first(machine) is Type.REF


def _bi_nonvar(machine, arity: int) -> bool:
    return _type_of_first(machine) is not Type.REF


def _bi_atom(machine, arity: int) -> bool:
    return _type_of_first(machine) in (Type.ATOM, Type.NIL)


def _bi_number(machine, arity: int) -> bool:
    return _type_of_first(machine) in (Type.INT, Type.FLOAT)


def _bi_integer(machine, arity: int) -> bool:
    return _type_of_first(machine) is Type.INT


def _bi_float(machine, arity: int) -> bool:
    return _type_of_first(machine) is Type.FLOAT


def _bi_atomic(machine, arity: int) -> bool:
    return _type_of_first(machine) in (Type.ATOM, Type.NIL,
                                       Type.INT, Type.FLOAT)


def _bi_compound(machine, arity: int) -> bool:
    return _type_of_first(machine) in (Type.LIST, Type.STRUCT)


def _bi_struct_eq(machine, arity: int) -> bool:
    return compare_words(machine, machine.regs.x(0),
                         machine.regs.x(1)) == 0


def _bi_struct_ne(machine, arity: int) -> bool:
    return compare_words(machine, machine.regs.x(0),
                         machine.regs.x(1)) != 0


def _bi_term_lt(machine, arity: int) -> bool:
    return compare_words(machine, machine.regs.x(0),
                         machine.regs.x(1)) < 0


def _bi_term_gt(machine, arity: int) -> bool:
    return compare_words(machine, machine.regs.x(0),
                         machine.regs.x(1)) > 0


def _bi_term_le(machine, arity: int) -> bool:
    return compare_words(machine, machine.regs.x(0),
                         machine.regs.x(1)) <= 0


def _bi_term_ge(machine, arity: int) -> bool:
    return compare_words(machine, machine.regs.x(0),
                         machine.regs.x(1)) >= 0


def _bi_compare(machine, arity: int) -> bool:
    order = compare_words(machine, machine.regs.x(1), machine.regs.x(2))
    name = "<" if order < 0 else (">" if order > 0 else "=")
    return machine.unify(machine.regs.x(0),
                         machine.symbols.atom_word(name))


def _bi_functor(machine, arity: int) -> bool:
    term = machine.deref(machine.regs.x(0))
    symbols = machine.symbols
    if term.type is not Type.REF:
        if term.type in (Type.LIST, Type.STRUCT):
            name, n = _functor_of(machine, term)
            name_word = symbols.atom_word(name)
        else:
            name_word, n = term, 0
        return (machine.unify(machine.regs.x(1), name_word)
                and machine.unify(machine.regs.x(2), make_int(n)))
    # Construction direction.
    name = machine.deref(machine.regs.x(1))
    count = machine.deref(machine.regs.x(2))
    if count.type is not Type.INT:
        raise MachineError("functor/3: arity must be an integer")
    n = int(count.value)
    if n == 0:
        return machine.unify(machine.regs.x(0), name)
    if name.type not in (Type.ATOM, Type.NIL):
        raise MachineError("functor/3: name must be an atom")
    name_text = "[]" if name.type is Type.NIL \
        else symbols.atom_name(int(name.value))
    findex = symbols.functor_index(name_text, n)
    address = machine.heap_push(make_functor(findex))
    for _ in range(n):
        machine.new_heap_var()
    machine.cycles += n
    return machine.unify(machine.regs.x(0), make_struct(address))


def _bi_arg(machine, arity: int) -> bool:
    index = machine.deref(machine.regs.x(0))
    term = machine.deref(machine.regs.x(1))
    if index.type is not Type.INT or term.type not in (Type.STRUCT,
                                                       Type.LIST):
        return False
    _, n = _functor_of(machine, term)
    i = int(index.value)
    if not 1 <= i <= n:
        return False
    return machine.unify(machine.regs.x(2), _arg_of(machine, term, i - 1))


def _bi_univ(machine, arity: int) -> bool:
    """=../2 in both directions."""
    from repro.core.word import make_list
    term = machine.deref(machine.regs.x(0))
    symbols = machine.symbols
    if term.type is not Type.REF:
        if term.type in (Type.LIST, Type.STRUCT):
            name, n = _functor_of(machine, term)
            items = [symbols.atom_word(name)] + [
                _arg_of(machine, term, i) for i in range(n)]
        else:
            items = [term]
        # Build the list back to front on the heap.
        tail = symbols.atom_word("[]")
        for item in reversed(items):
            address = machine.h
            machine.heap_push(item)
            machine.heap_push(tail)
            tail = make_list(address)
        machine.cycles += 2 * len(items)
        return machine.unify(machine.regs.x(1), tail)
    # Construction direction: walk the provided list.
    items = []
    current = machine.deref(machine.regs.x(1))
    while current.type is Type.LIST:
        items.append(machine.deref(
            machine.memory.store.read(current.value)))
        current = machine.deref(
            machine.memory.store.read(current.value + 1))
        machine.cycles += 1
    if current.type is not Type.NIL or not items:
        return False
    head, args = items[0], items[1:]
    if not args:
        return machine.unify(machine.regs.x(0), head)
    if head.type not in (Type.ATOM, Type.NIL):
        return False
    name = "[]" if head.type is Type.NIL \
        else symbols.atom_name(int(head.value))
    findex = symbols.functor_index(name, len(args))
    address = machine.heap_push(make_functor(findex))
    for arg in args:
        machine.heap_push(arg)
    return machine.unify(machine.regs.x(0), make_struct(address))


def _bi_length(machine, arity: int) -> bool:
    """length/2 in both determinate modes (list->N and N->fresh list).

    The generate mode with both arguments unbound would need a
    nondeterministic escape, which the mechanism does not support —
    the machine traps instead of silently failing.
    """
    from repro.core.word import make_list
    term = machine.deref(machine.regs.x(0))
    if term.type in (Type.LIST, Type.NIL):
        count = 0
        while term.type is Type.LIST:
            count += 1
            term = machine.deref(
                machine.memory.store.read(term.value + 1))
            machine.cycles += 1
        if term.type is not Type.NIL:
            raise MachineError("length/2: improper list")
        return machine.unify(machine.regs.x(1), make_int(count))
    if term.type is Type.REF:
        count = machine.deref(machine.regs.x(1))
        if count.type is not Type.INT or int(count.value) < 0:
            raise MachineError("length/2: open list needs a "
                               "non-negative integer length")
        tail = machine.symbols.atom_word("[]")
        for _ in range(int(count.value)):
            head = machine.new_heap_var()
            address = machine.h
            machine.heap_push(head)
            machine.heap_push(tail)
            tail = make_list(address)
            machine.cycles += 2
        return machine.unify(machine.regs.x(0), tail)
    return False


def _bi_call(machine, arity: int) -> bool:
    """call/1: the fast indirect call of section 4.2 (4 cycles)."""
    goal = machine.deref(machine.regs.x(0))
    if goal.type in (Type.ATOM, Type.NIL):
        name = "[]" if goal.type is Type.NIL \
            else machine.symbols.atom_name(int(goal.value))
        key = (name, 0)
    elif goal.type in (Type.STRUCT, Type.LIST):
        name, n = _functor_of(machine, goal)
        key = (name, n)
        for i in range(n):
            machine.regs.set_x(i, _arg_of(machine, goal, i))
        machine.cycles += n
    else:
        raise MachineError("call/1: goal must be callable")
    target = machine.predicates.get(key)
    if target is None:
        raise ExistenceError(f"call/1: unknown predicate "
                             f"{key[0]}/{key[1]}")
    machine.cycles += machine.costs.indirect_call
    machine.b0 = machine.b
    machine.p = target
    return True


def _bi_eval_is(machine, arity: int) -> bool:
    """Generic is/2 for expressions only known at run time."""
    result = eval_arith(machine, machine.regs.x(1))
    return machine.unify(machine.regs.x(0), result)


def _bi_answer(machine, arity: int) -> bool:
    """'$answer'/N: record one solution; fail to enumerate more when
    the query runs in collect-all mode, otherwise stop the machine."""
    solution = {}
    for i, name in enumerate(machine.answer_names[:arity]):
        solution[name] = decode_word(machine, machine.regs.x(i))
    machine.solutions.append(solution)
    if machine.collect_all:
        if machine.stop_on_solution:
            # Pause at the next instruction boundary: returning False
            # still runs fail() first, so the backtrack (or exhaustion)
            # lands exactly as in an unpaused run — fail() only touches
            # ``running`` on exhaustion, so the pause survives it and
            # resume() continues the search bit-identically.
            machine.running = False
            machine.solution_paused = True
        return False
    machine.running = False
    machine.halted = True
    return True


#: The full registry: (name, arity) -> implementation.  '$answer' is
#: registered for every arity the linker encounters.
BUILTIN_TABLE: Dict[Tuple[str, int], BuiltinFn] = {
    ("true", 0): _bi_true,
    ("fail", 0): _bi_fail,
    ("false", 0): _bi_fail,
    ("halt", 0): _bi_halt,
    ("write", 1): _bi_write,
    ("writeq", 1): _bi_writeq,
    ("print", 1): _bi_write,
    ("nl", 0): _bi_nl,
    ("tab", 1): _bi_tab,
    ("var", 1): _bi_var,
    ("nonvar", 1): _bi_nonvar,
    ("atom", 1): _bi_atom,
    ("number", 1): _bi_number,
    ("integer", 1): _bi_integer,
    ("float", 1): _bi_float,
    ("atomic", 1): _bi_atomic,
    ("compound", 1): _bi_compound,
    ("==", 2): _bi_struct_eq,
    ("\\==", 2): _bi_struct_ne,
    ("@<", 2): _bi_term_lt,
    ("@>", 2): _bi_term_gt,
    ("@=<", 2): _bi_term_le,
    ("@>=", 2): _bi_term_ge,
    ("compare", 3): _bi_compare,
    ("functor", 3): _bi_functor,
    ("arg", 3): _bi_arg,
    ("=..", 2): _bi_univ,
    ("call", 1): _bi_call,
    ("length", 2): _bi_length,
    ("$eval_is", 2): _bi_eval_is,
}


def builtin_for(name: str, arity: int) -> "BuiltinFn | None":
    """Look up a built-in implementation; '$answer' matches any arity."""
    if name == "$answer":
        return _bi_answer
    return BUILTIN_TABLE.get((name, arity))


def is_builtin(name: str, arity: int) -> bool:
    """Whether (name, arity) is implemented as an escape."""
    return builtin_for(name, arity) is not None
