"""The KCM abstract instruction set.

KCM executes WAM-family instructions (section 2.3: "The model of
computation for KCM is derived from the WAM"), encoded in 64-bit fixed
words with two basic formats (figure 3):

- **R4** — the four-address register format: opcode + up to two source
  and two destination register fields (this is what lets a single
  ``move2`` shift two 64-bit registers per cycle),
- **ADDR** — opcode + register fields + a 26-bit absolute address or a
  16-bit signed offset (all branch targets are absolute, section 3.1.3).

The switch instructions are the only multi-word instructions (section
4.1 notes they push the average instruction length slightly above one
word); their hash tables occupy the following words.

The enum below is the complete executable repertoire; per-opcode
metadata (format, word size, operand kinds) drives the assembler, the
disassembler, the static-size accounting of Table 1 and the figure-3
renderer.
"""

from __future__ import annotations

import enum
from typing import Dict, NamedTuple


class Format(enum.Enum):
    """The two basic instruction word formats of figure 3."""

    R4 = "register"      # opcode + 4 register fields (+ short immediate)
    ADDR = "address"     # opcode + register fields + absolute address


class Op(enum.IntEnum):
    """Executable opcodes."""

    # -- control -------------------------------------------------------------
    CALL = enum.auto()            # call Pred, NLivePerms
    EXECUTE = enum.auto()         # last-call jump to Pred
    PROCEED = enum.auto()         # return through CP
    ALLOCATE = enum.auto()        # push environment frame of N perms
    DEALLOCATE = enum.auto()      # pop environment frame
    HALT = enum.auto()            # stop the machine (bootstrap epilogue)
    JUMP = enum.auto()            # unconditional absolute jump
    FAIL = enum.auto()            # force backtracking

    # -- clause selection / backtracking --------------------------------------
    TRY_ME_ELSE = enum.auto()     # first clause, alternative is operand
    RETRY_ME_ELSE = enum.auto()   # middle clause
    TRUST_ME = enum.auto()        # last clause
    TRY = enum.auto()             # indexed variants: target is operand,
    RETRY = enum.auto()           #   alternative is the next instruction
    TRUST = enum.auto()
    NECK = enum.auto()            # commit point: materialise the delayed
                                  #   choice point if still needed
    NECK_CUT = enum.auto()        # cut in neck position (discard shadow)
    GET_LEVEL = enum.auto()       # Yn := B0 (cut barrier)
    CUT = enum.auto()             # cut to B0 (before any body call)
    CUT_Y = enum.auto()           # cut to barrier saved in Yn

    SWITCH_ON_TERM = enum.auto()       # 4-way dispatch on A1's type (MWAC)
    SWITCH_ON_CONSTANT = enum.auto()   # hash dispatch on constant value
    SWITCH_ON_STRUCTURE = enum.auto()  # hash dispatch on functor

    # -- head unification (get) ------------------------------------------------
    GET_X_VARIABLE = enum.auto()
    GET_Y_VARIABLE = enum.auto()
    GET_X_VALUE = enum.auto()
    GET_Y_VALUE = enum.auto()
    GET_CONSTANT = enum.auto()
    GET_NIL = enum.auto()
    GET_LIST = enum.auto()
    GET_STRUCTURE = enum.auto()

    # -- argument loading (put) --------------------------------------------------
    PUT_X_VARIABLE = enum.auto()
    PUT_Y_VARIABLE = enum.auto()
    PUT_X_VALUE = enum.auto()
    PUT_Y_VALUE = enum.auto()
    PUT_UNSAFE_VALUE = enum.auto()
    PUT_CONSTANT = enum.auto()
    PUT_NIL = enum.auto()
    PUT_LIST = enum.auto()
    PUT_STRUCTURE = enum.auto()

    # -- structure-argument unification ------------------------------------------
    UNIFY_X_VARIABLE = enum.auto()
    UNIFY_Y_VARIABLE = enum.auto()
    UNIFY_X_VALUE = enum.auto()
    UNIFY_Y_VALUE = enum.auto()
    UNIFY_X_LOCAL_VALUE = enum.auto()
    UNIFY_Y_LOCAL_VALUE = enum.auto()
    UNIFY_CONSTANT = enum.auto()
    UNIFY_NIL = enum.auto()
    UNIFY_VOID = enum.auto()

    # -- data movement -------------------------------------------------------------
    MOVE2 = enum.auto()           # two register-to-register moves in one
                                  #   cycle (the four-address format payoff)

    # -- arithmetic (generic, tag-dispatched through the MWAC) ------------------------
    ARITH = enum.auto()           # dst := src1 <op> src2
    TEST = enum.auto()            # fail unless src1 <rel> src2
    GEN_UNIFY = enum.auto()       # full unification of two registers (=/2,
                                  #   is/2 result binding)

    # -- escapes ----------------------------------------------------------------------
    ESCAPE = enum.auto()          # built-in predicate via escape mechanism


class ArithOp(enum.IntEnum):
    """Binary/unary operations for :data:`Op.ARITH`."""

    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()       # '/' : float division (or exact int)
    IDIV = enum.auto()      # '//': integer division
    MOD = enum.auto()
    NEG = enum.auto()       # unary minus (src2 ignored)
    ABS = enum.auto()
    MIN = enum.auto()
    MAX = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()


class TestOp(enum.IntEnum):
    """Numeric relations for :data:`Op.TEST`."""

    LT = enum.auto()
    GT = enum.auto()
    LE = enum.auto()
    GE = enum.auto()
    EQ = enum.auto()        # =:=
    NE = enum.auto()        # =\=


class OpInfo(NamedTuple):
    """Static metadata for one opcode."""

    format: Format
    #: Words occupied in code space ('1+table' handled dynamically for
    #: the switch instructions via Instruction.size).
    base_words: int
    #: Pretty operand signature for the disassembler.
    operands: str


OP_INFO: Dict[Op, OpInfo] = {
    Op.CALL: OpInfo(Format.ADDR, 1, "pred,nperms"),
    Op.EXECUTE: OpInfo(Format.ADDR, 1, "pred"),
    Op.PROCEED: OpInfo(Format.R4, 1, ""),
    Op.ALLOCATE: OpInfo(Format.R4, 1, "n"),
    Op.DEALLOCATE: OpInfo(Format.R4, 1, ""),
    Op.HALT: OpInfo(Format.R4, 1, ""),
    Op.JUMP: OpInfo(Format.ADDR, 1, "label"),
    Op.FAIL: OpInfo(Format.R4, 1, ""),
    Op.TRY_ME_ELSE: OpInfo(Format.ADDR, 1, "label"),
    Op.RETRY_ME_ELSE: OpInfo(Format.ADDR, 1, "label"),
    Op.TRUST_ME: OpInfo(Format.R4, 1, ""),
    Op.TRY: OpInfo(Format.ADDR, 1, "label"),
    Op.RETRY: OpInfo(Format.ADDR, 1, "label"),
    Op.TRUST: OpInfo(Format.ADDR, 1, "label"),
    Op.NECK: OpInfo(Format.R4, 1, "arity"),
    Op.NECK_CUT: OpInfo(Format.R4, 1, ""),
    Op.GET_LEVEL: OpInfo(Format.R4, 1, "y"),
    Op.CUT: OpInfo(Format.R4, 1, ""),
    Op.CUT_Y: OpInfo(Format.R4, 1, "y"),
    Op.SWITCH_ON_TERM: OpInfo(Format.ADDR, 2, "lv,lc,ll,ls"),
    Op.SWITCH_ON_CONSTANT: OpInfo(Format.ADDR, 1, "table"),
    Op.SWITCH_ON_STRUCTURE: OpInfo(Format.ADDR, 1, "table"),
    Op.GET_X_VARIABLE: OpInfo(Format.R4, 1, "x,a"),
    Op.GET_Y_VARIABLE: OpInfo(Format.R4, 1, "y,a"),
    Op.GET_X_VALUE: OpInfo(Format.R4, 1, "x,a"),
    Op.GET_Y_VALUE: OpInfo(Format.R4, 1, "y,a"),
    Op.GET_CONSTANT: OpInfo(Format.R4, 1, "const,a"),
    Op.GET_NIL: OpInfo(Format.R4, 1, "a"),
    Op.GET_LIST: OpInfo(Format.R4, 1, "a"),
    Op.GET_STRUCTURE: OpInfo(Format.R4, 1, "f,a"),
    Op.PUT_X_VARIABLE: OpInfo(Format.R4, 1, "x,a"),
    Op.PUT_Y_VARIABLE: OpInfo(Format.R4, 1, "y,a"),
    Op.PUT_X_VALUE: OpInfo(Format.R4, 1, "x,a"),
    Op.PUT_Y_VALUE: OpInfo(Format.R4, 1, "y,a"),
    Op.PUT_UNSAFE_VALUE: OpInfo(Format.R4, 1, "y,a"),
    Op.PUT_CONSTANT: OpInfo(Format.R4, 1, "const,a"),
    Op.PUT_NIL: OpInfo(Format.R4, 1, "a"),
    Op.PUT_LIST: OpInfo(Format.R4, 1, "a"),
    Op.PUT_STRUCTURE: OpInfo(Format.R4, 1, "f,a"),
    Op.UNIFY_X_VARIABLE: OpInfo(Format.R4, 1, "x"),
    Op.UNIFY_Y_VARIABLE: OpInfo(Format.R4, 1, "y"),
    Op.UNIFY_X_VALUE: OpInfo(Format.R4, 1, "x"),
    Op.UNIFY_Y_VALUE: OpInfo(Format.R4, 1, "y"),
    Op.UNIFY_X_LOCAL_VALUE: OpInfo(Format.R4, 1, "x"),
    Op.UNIFY_Y_LOCAL_VALUE: OpInfo(Format.R4, 1, "y"),
    Op.UNIFY_CONSTANT: OpInfo(Format.R4, 1, "const"),
    Op.UNIFY_NIL: OpInfo(Format.R4, 1, ""),
    Op.UNIFY_VOID: OpInfo(Format.R4, 1, "n"),
    Op.MOVE2: OpInfo(Format.R4, 1, "s1,d1,s2,d2"),
    Op.ARITH: OpInfo(Format.R4, 1, "op,s1,s2,d"),
    Op.TEST: OpInfo(Format.R4, 1, "op,s1,s2"),
    Op.GEN_UNIFY: OpInfo(Format.R4, 1, "r1,r2"),
    Op.ESCAPE: OpInfo(Format.ADDR, 1, "builtin,arity"),
}

#: Instructions whose first-word operand is a code address the linker
#: must relocate.
BRANCHING_OPS = frozenset({
    Op.CALL, Op.EXECUTE, Op.JUMP,
    Op.TRY_ME_ELSE, Op.RETRY_ME_ELSE, Op.TRY, Op.RETRY, Op.TRUST,
})
