"""Atom and functor tables.

KCM keeps symbol tables in its private memory because Prolog "needs
random access to all symbol tables and to the entire run-time
environment" (section 2.1).  In the simulator the tables are Python
dictionaries owned by a :class:`SymbolTable` that the compiler, linker
and machine share; atom and functor *indices* are what ends up in the
value parts of tagged words.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.tags import Type
from repro.core.word import Word, make_atom, make_nil


class SymbolTable:
    """Bidirectional atom and functor (name/arity) tables."""

    def __init__(self):
        self._atom_by_name: Dict[str, int] = {}
        self._atom_names: List[str] = []
        self._functor_by_key: Dict[Tuple[str, int], int] = {}
        self._functor_keys: List[Tuple[str, int]] = []
        # Index 0 is reserved for '[]' so a zero atom word is harmless.
        self.atom_index("[]")

    # -- atoms ------------------------------------------------------------------

    def atom_index(self, name: str) -> int:
        """Intern an atom; returns its stable index."""
        index = self._atom_by_name.get(name)
        if index is None:
            index = len(self._atom_names)
            self._atom_by_name[name] = index
            self._atom_names.append(name)
        return index

    def atom_name(self, index: int) -> str:
        """Name of the atom at ``index``."""
        return self._atom_names[index]

    def atom_word(self, name: str) -> Word:
        """The tagged constant word for an atom (NIL for ``[]``)."""
        if name == "[]":
            return make_nil()
        return make_atom(self.atom_index(name))

    @property
    def atom_count(self) -> int:
        """Number of interned atoms."""
        return len(self._atom_names)

    # -- functors ----------------------------------------------------------------

    def functor_index(self, name: str, arity: int) -> int:
        """Intern a name/arity pair; returns its stable index."""
        key = (name, arity)
        index = self._functor_by_key.get(key)
        if index is None:
            index = len(self._functor_keys)
            self._functor_by_key[key] = index
            self._functor_keys.append(key)
        return index

    def functor_key(self, index: int) -> Tuple[str, int]:
        """The (name, arity) of the functor at ``index``."""
        return self._functor_keys[index]

    def functor_name(self, index: int) -> str:
        """Readable ``name/arity`` for diagnostics."""
        name, arity = self._functor_keys[index]
        return f"{name}/{arity}"

    @property
    def functor_count(self) -> int:
        """Number of interned functors."""
        return len(self._functor_keys)

    # -- helpers -------------------------------------------------------------------

    def describe_constant(self, word: Word) -> str:
        """Readable form of a constant word (for traces and errors)."""
        if word.type is Type.ATOM:
            return self.atom_name(int(word.value))
        if word.type is Type.NIL:
            return "[]"
        if word.type is Type.FUNCTOR:
            return self.functor_name(int(word.value))
        return str(word.value)
