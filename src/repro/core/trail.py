"""The trail and its comparator hardware (section 3.1.5).

"When unification binds a variable that is older than the last choice
point, it has to push an item onto the trail stack in order to unbind
the variable upon the next fail.  Up to three comparisons of the
address of the variable with the contents of special registers are
required ...  The Trail hardware ... performs these comparisons in
parallel with dereferencing."

The three comparisons decide (1) which stack the bound cell lives on
(zone boundary), (2) global cells against the heap barrier HB, and
(3) local cells against the local barrier LB.  With the trail unit
enabled the decision is free; the ablation configuration charges the
serial-comparison cycles instead.

Trail entries are data-pointer words naming the bound cell; unwinding
restores each cell to an unbound self-reference.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.tags import Zone
from repro.core.word import Word, make_data_ptr, make_unbound


class Trail:
    """The trail stack plus the conditional-trailing decision.

    The stack itself lives in the TRAIL zone of simulated memory; this
    class owns the top-of-stack register and the comparator logic, and
    reads/writes entries through the machine's memory callbacks so
    cache behaviour is modelled like any other stack.
    """

    def __init__(self, base: int,
                 read_word: Callable[[int, Zone], Word],
                 write_word: Callable[[int, Word, Zone], None]):
        self.base = base
        self.top = base                      # TR register
        self._read = read_word
        self._write = write_word
        self.pushes = 0
        self.checks = 0

    def needs_trailing(self, address: int, zone: Zone,
                       hb: int, lb: int) -> bool:
        """The three-comparator decision: must this binding be trailed?

        Bindings to cells *younger* than the barriers vanish anyway
        when backtracking resets H, so only older cells are recorded.
        """
        self.checks += 1
        if zone is Zone.GLOBAL:
            return address < hb
        if zone is Zone.LOCAL:
            return address < lb
        # Static or system cells: always trail (rare; safe).
        return True

    def push(self, address: int, zone: Zone) -> None:
        """Record one binding."""
        self._write(self.top, make_data_ptr(address, zone), Zone.TRAIL)
        self.top += 1
        self.pushes += 1

    def unwind_to(self, mark: int) -> int:
        """Undo all bindings above ``mark``; returns entries undone.

        Each recorded cell is reset to an unbound self-reference.
        """
        undone = 0
        while self.top > mark:
            self.top -= 1
            entry = self._read(self.top, Zone.TRAIL)
            address = int(entry.value)
            self._write(address, make_unbound(address, entry.zone),
                        entry.zone)
            undone += 1
        return undone

    def entries(self) -> List[Word]:
        """Snapshot of live entries, bottom first (test inspection)."""
        return [self._read(a, Zone.TRAIL) for a in range(self.base, self.top)]
