"""Garbage-collection support: the mark phase over the global stack.

The KCM data word reserves two GC bits that the Tag-Value-Multiplexer
can manipulate (section 3.1.1), and the zone check's stack monitoring
exists partly "to trigger garbage collection" (section 3.2.3).  The
full SEPIA collector was host software; this module implements its
core — a pointer-reversal-free marking pass over the global stack —
plus the trigger policy, giving the simulator real heap-liveness
diagnostics:

- :class:`HeapMarker` marks every reachable global-stack cell via the
  ``gc_mark`` bit, reports live/dead statistics, and restores the heap
  to its exact pre-mark state (the bits are cleared by a sweep),
- :func:`should_collect` is the zone-monitoring trigger: collect when
  the heap top crosses a configurable fraction of its zone, and
- :class:`HeapCompactor` is a *reclaiming* collector: an
  order-preserving sliding compaction that moves live cells to the
  bottom of the global stack and relocates every referent, used by the
  heap-overflow recovery handler (see :mod:`repro.recovery`).

Root set: the argument/temporary registers, the environment chain
(Y slots sized by the WAM trimming convention), every choice point's
saved arguments and environment, and the trail.  Stale registers can
over-approximate liveness — exactly the conservatism a real collector
on this architecture needed, since the machine cannot know which X
registers are dead without compiler liveness maps.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List

from repro.core.machine import (
    CP_ARGS, CP_ARITY, CP_PREV_B, ENV_CE, ENV_CP, ENV_Y0,
)
from repro.core.opcodes import Op
from repro.core.registers import X_REGISTERS
from repro.core.tags import Type, Zone
from repro.core.word import Word, make_unbound


@dataclass
class MarkStats:
    """Result of one marking pass."""

    heap_cells: int           # words between heap base and H
    live_cells: int           # cells reachable from the root set
    roots_scanned: int

    @property
    def dead_cells(self) -> int:
        """Unreachable cells the sweep/compaction would reclaim."""
        return self.heap_cells - self.live_cells

    @property
    def live_fraction(self) -> float:
        """live / total (1.0 on an empty heap)."""
        if not self.heap_cells:
            return 1.0
        return self.live_cells / self.heap_cells


class HeapMarker:
    """Mark reachable global-stack cells through the GC bits."""

    def __init__(self, machine):
        self.machine = machine

    # -- root enumeration ---------------------------------------------------

    def _roots(self) -> List[Word]:
        machine = self.machine
        store = machine.memory.store
        roots: List[Word] = []

        # Argument / temporary registers.
        roots.extend(machine.regs.cells[:X_REGISTERS])

        # The environment chain: frame sizes via the nperms convention.
        e = machine.e
        cp = machine.cp
        local_base = machine._stack_base[Zone.LOCAL]
        seen = set()
        while e and e not in seen and e >= local_base:
            seen.add(e)
            call_instr = machine.code[cp - 1] if cp >= 1 else None
            nperms = call_instr.b if (call_instr is not None
                                      and call_instr.op is Op.CALL
                                      and call_instr.b is not None) else 0
            for i in range(nperms):
                roots.append(store.read(e + ENV_Y0 + i))
            cp = int(store.read(e + ENV_CP).value)
            e = int(store.read(e + ENV_CE).value)

        # Choice points: saved arguments and saved environments are
        # roots too (their continuations may still run).
        b = machine.b
        while b:
            arity = int(store.read(b + CP_ARITY).value)
            for i in range(arity):
                roots.append(store.read(b + CP_ARGS + i))
            b = int(store.read(b + CP_PREV_B).value)

        # Trail entries point at bound cells that must survive.
        for address in range(machine.trail.base, machine.trail.top):
            roots.append(store.read(address))
        return roots

    # -- mark / sweep ----------------------------------------------------------

    def mark(self) -> MarkStats:
        """Run one marking pass; leaves the mark bits SET (call
        :meth:`clear` or use :meth:`collect_statistics`)."""
        machine = self.machine
        store = machine.memory.store
        heap_base = machine._stack_base[Zone.GLOBAL]
        heap_top = machine.h

        roots = self._roots()
        stack: List[Word] = list(roots)
        live = 0
        while stack:
            word = stack.pop()
            t = word.type
            if t is Type.REF or t is Type.DATA_PTR:
                if word.zone is Zone.GLOBAL \
                        and heap_base <= word.value < heap_top:
                    cell = store.read(word.value)
                    if not cell.gc_mark:
                        store.write(word.value, cell.with_gc_mark(True))
                        live += 1
                        if cell.value != word.value or not cell.is_ref():
                            stack.append(cell)
                elif word.zone is Zone.LOCAL:
                    cell = store.read(word.value)
                    if cell.value != word.value or not cell.is_ref():
                        stack.append(cell)
            elif t is Type.LIST:
                for offset in (0, 1):
                    address = word.value + offset
                    if not heap_base <= address < heap_top:
                        continue
                    cell = store.read(address)
                    if not cell.gc_mark:
                        store.write(address, cell.with_gc_mark(True))
                        live += 1
                        stack.append(cell)
            elif t is Type.STRUCT:
                functor = store.read(word.value)
                if not functor.gc_mark \
                        and heap_base <= word.value < heap_top:
                    store.write(word.value, functor.with_gc_mark(True))
                    live += 1
                    # A structure pointer whose target is not a functor
                    # cell is garbage from an interrupted heap write
                    # (e.g. a trap between the STRUCT bind and the
                    # functor push); mark the target conservatively but
                    # do not walk arguments that were never written.
                    if functor.type is not Type.FUNCTOR:
                        continue
                    _, arity = machine.symbols.functor_key(
                        int(functor.value))
                    for i in range(1, arity + 1):
                        cell = store.read(word.value + i)
                        if not cell.gc_mark:
                            store.write(word.value + i,
                                        cell.with_gc_mark(True))
                            live += 1
                            stack.append(cell)
        return MarkStats(heap_cells=heap_top - heap_base,
                         live_cells=live, roots_scanned=len(roots))

    def clear(self) -> int:
        """Sweep the mark bits; returns how many were cleared.  After
        this the heap is bit-for-bit what it was before :meth:`mark`."""
        machine = self.machine
        store = machine.memory.store
        cleared = 0
        for address in range(machine._stack_base[Zone.GLOBAL], machine.h):
            cell = store.read(address)
            if cell.gc_mark:
                store.write(address, cell.with_gc_mark(False))
                cleared += 1
        return cleared

    def collect_statistics(self) -> MarkStats:
        """Mark, record, clear: a side-effect-free liveness snapshot."""
        stats = self.mark()
        cleared = self.clear()
        assert cleared == stats.live_cells
        return stats


def should_collect(machine, threshold: float = 0.9) -> bool:
    """The zone-monitoring GC trigger (section 3.2.3): true when the
    heap top has crossed ``threshold`` of the GLOBAL zone."""
    region = machine.memory.layout[Zone.GLOBAL]
    used = machine.h - region.base
    return used >= threshold * region.size


# ---------------------------------------------------------------------------
# compaction (the reclaiming collector behind heap-overflow recovery)
# ---------------------------------------------------------------------------

@dataclass
class CollectStats:
    """Result of one compacting collection."""

    heap_cells: int            # words between heap base and old H
    live_cells: int            # cells that survived (new heap size)
    roots_scanned: int

    @property
    def freed_cells(self) -> int:
        """Words returned to the top of the global stack."""
        return self.heap_cells - self.live_cells

    @property
    def freed_fraction(self) -> float:
        """freed / total (0.0 on an empty heap)."""
        if not self.heap_cells:
            return 0.0
        return self.freed_cells / self.heap_cells


class HeapCompactor:
    """Order-preserving sliding compaction of the global stack.

    Marks via :class:`HeapMarker`, then slides every live cell down
    toward the heap base *preserving address order* — the property that
    keeps the WAM invariants alive: saved-H values in choice points
    still delimit exactly the cells allocated after that choice point,
    so backtracking's "reset H" reclamation stays correct (this is the
    standard approach of SICStus-family collectors).

    All referents are relocated: pointers inside surviving heap cells,
    the register file (including the shadow H register), every
    initialised cell outside the heap that carries a GLOBAL-zone
    pointer (environments, choice-point saved fields, trail entries,
    bound static cells), and the machine's H, HB, S and shadow-H
    registers.  Boundary pointers at dead addresses (saved H marks)
    forward to the new address of the first surviving cell at or above
    them, which preserves segment boundaries.

    Runs on the functional store directly: a real collection was host
    software on KCM (section 2.2), so its cost is charged by the
    recovery handler as a lump sum, not per simulated access.
    """

    #: cycles charged per heap cell examined by the collector (a
    #: host-software mark-slide pass; deliberately coarse).
    CYCLES_PER_CELL = 2

    def __init__(self, machine):
        self.machine = machine

    def collect(self) -> CollectStats:
        """Mark, slide, relocate; returns what was reclaimed."""
        machine = self.machine
        store = machine.memory.store
        heap_base = machine._stack_base[Zone.GLOBAL]
        old_top = machine.h

        mark_stats = HeapMarker(machine).mark()
        marked = [address for address in range(heap_base, old_top)
                  if store.read(address).gc_mark]

        def forward(address: int) -> int:
            """New address for ``address``: its slide target when live,
            else the slide target of the next live cell above it
            (monotone, so segment boundaries survive)."""
            return heap_base + bisect_left(marked, address)

        def relocate(word: Word) -> Word:
            # Inclusive of old_top: a GET_LIST/GET_STRUCTURE in write
            # mode binds LIST(H)/STRUCT(H) *before* pushing the cells,
            # so mid-clause a live pointer to the next allocation site
            # is legal WAM state; forward(old_top) is exactly new_top.
            if word.zone is Zone.GLOBAL \
                    and word.type in _RELOCATABLE_TYPES \
                    and heap_base <= word.value <= old_top:
                return Word(word.tag, forward(word.value))
            return word

        # Slide the survivors (clearing mark bits as they move), then
        # erase the reclaimed tail so stale words cannot leak back in.
        compacted = []
        for address in marked:
            cell = store.read(address).with_gc_mark(False)
            compacted.append(relocate(cell))
        for offset, cell in enumerate(compacted):
            store.write(heap_base + offset, cell)
        new_top = heap_base + len(compacted)
        for address in range(new_top, old_top):
            store.write(address, make_unbound(address, Zone.GLOBAL))

        # Relocate every referent outside the heap.
        regs = machine.regs.cells
        for index, word in enumerate(regs):
            regs[index] = relocate(word)
        self._relocate_store_outside_heap(relocate, heap_base, old_top)

        machine.h = new_top
        machine.hb = forward(machine.hb)
        if heap_base <= machine.s <= old_top:
            machine.s = forward(machine.s)
        machine.shadow.h = forward(machine.shadow.h)

        return CollectStats(heap_cells=old_top - heap_base,
                            live_cells=len(compacted),
                            roots_scanned=mark_stats.roots_scanned)

    def _relocate_store_outside_heap(self, relocate, heap_base: int,
                                     old_top: int) -> None:
        """Rewrite GLOBAL-zone pointers in every initialised cell that
        is not itself a heap cell (local stack, control stack, trail,
        static/system areas)."""
        store = self.machine.memory.store
        chunk_words = store.CHUNK_WORDS
        for key, chunk in store._chunks.items():
            chunk_base = key * chunk_words
            for offset, cell in enumerate(chunk):
                if cell is None:
                    continue
                address = chunk_base + offset
                if heap_base <= address < old_top:
                    continue
                moved = relocate(cell)
                if moved is not cell:
                    chunk[offset] = moved


#: pointer types a compaction must forward when they target the heap.
_RELOCATABLE_TYPES = frozenset(
    {Type.REF, Type.STRUCT, Type.LIST, Type.DATA_PTR}
)
