"""Execution monitors (paper section 4: "monitors (at microcode,
macrocode, and Prolog levels)").

The paper's first software environment shipped three monitors; this
module provides their simulator equivalents:

- :class:`MacrocodeTracer` — the macrocode monitor: one record per
  executed instruction (address, disassembly, cycle count), with an
  optional address window and a record cap;
- :class:`PortTracer` — the Prolog-level monitor: Byrd-box events
  (``call``, ``exit``, ``redo``, ``fail``) with predicate names and a
  depth counter, reconstructed from the instruction stream;
- :class:`CycleProfiler` — per-predicate cycle attribution, the raw
  material for "the influence of each specialized unit ... on the
  behaviour of the system on real-size programs" (section 5).

Attach any of them with :func:`attach`; the machine calls the hook
once per instruction only when a tracer is installed, so the untraced
hot path stays unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.instruction import Instruction
from repro.core.opcodes import Op


@dataclass
class TraceRecord:
    """One macrocode monitor line."""

    address: int
    text: str
    cycles_before: int

    def __str__(self) -> str:
        return f"{self.cycles_before:8d}  {self.address:6d}  {self.text}"


class MacrocodeTracer:
    """Records executed instructions, optionally inside a window."""

    def __init__(self, window: Optional[Tuple[int, int]] = None,
                 limit: int = 100_000):
        self.window = window
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def on_instruction(self, machine, address: int,
                       instr: Instruction, replay: bool = False) -> None:
        """Machine hook: called before each instruction executes.

        ``replay=True`` marks the re-execution of an instruction whose
        previous attempt trapped and was rolled back; the aborted
        attempt's record is replaced so each architecturally executed
        instruction appears exactly once in the trace.
        """
        if self.window is not None:
            low, high = self.window
            if not low <= address < high:
                return
        if replay and self.records \
                and self.records[-1].address == address:
            self.records.pop()
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(address, instr.disassemble(),
                                        machine.cycles))

    def render(self, last: Optional[int] = None) -> str:
        """The trace as text (optionally only the last N records)."""
        records = self.records if last is None else self.records[-last:]
        return "\n".join(str(r) for r in records)


@dataclass
class PortEvent:
    """One Byrd-box event."""

    port: str              # call | exit | redo | fail
    predicate: str         # name/arity
    depth: int
    cycles: int

    def __str__(self) -> str:
        return f"{'  ' * self.depth}{self.port:5s} {self.predicate}"


class PortTracer:
    """The Prolog-level monitor: call/exit/redo/fail ports.

    Reconstructed from the instruction stream: CALL/EXECUTE open a
    call port, PROCEED closes the innermost frame with an exit port,
    and arrivals at retry/trust instructions after a failure are redo
    ports.  Depth follows calls and exits (EXECUTE keeps the depth of
    the frame it replaces — last-call optimisation is visible in the
    trace, exactly as on the real machine).
    """

    def __init__(self, limit: int = 100_000):
        self.limit = limit
        self.events: List[PortEvent] = []
        self._depth = 0
        self._failing = False
        self._pred_by_address: Dict[int, str] = {}

    def _predicate_names(self, machine) -> Dict[int, str]:
        if not self._pred_by_address:
            self._pred_by_address = {
                address: f"{name}/{arity}"
                for (name, arity), address in machine.predicates.items()}
        return self._pred_by_address

    def _emit(self, port: str, predicate: str, machine) -> None:
        if len(self.events) < self.limit:
            self.events.append(PortEvent(port, predicate, self._depth,
                                         machine.cycles))

    def on_instruction(self, machine, address: int,
                       instr: Instruction, replay: bool = False) -> None:
        """Machine hook.

        A replayed instruction already emitted its port event (and any
        depth change) during the aborted attempt — which the rollback
        machinery undid architecturally but this monitor, a pure event
        consumer, cannot — so the retry is ignored to keep one event
        per architectural execution.
        """
        if replay:
            return
        op = instr.op
        names = self._predicate_names(machine)
        if op in (Op.CALL, Op.EXECUTE):
            target = names.get(instr.a, f"@{instr.a}")
            if target.startswith("$"):
                return
            if op is Op.CALL:
                self._depth += 1
            self._emit("call", target, machine)
            self._failing = False
        elif op is Op.PROCEED:
            self._emit("exit", "", machine)
            self._depth = max(0, self._depth - 1)
            self._failing = False
        elif op in (Op.RETRY_ME_ELSE, Op.TRUST_ME, Op.RETRY, Op.TRUST):
            if self._failing:
                self._emit("redo", "", machine)
                self._failing = False
        elif op is Op.FAIL:
            self._emit("fail", "", machine)
            self._failing = True

    def note_failure(self) -> None:
        """Machine hook: a unification/test failure happened."""
        self._failing = True

    def ports(self) -> List[str]:
        """The port sequence, e.g. ['call', 'call', 'exit', ...]."""
        return [e.port for e in self.events]

    def render(self) -> str:
        """Indented Byrd-box trace."""
        return "\n".join(str(e) for e in self.events)


class CycleProfiler:
    """Attributes cycles to the predicate whose code is executing."""

    def __init__(self):
        self.cycles_by_predicate: Dict[str, int] = {}
        self._ranges: List[Tuple[int, str]] = []
        self._last_cycles = 0
        self._current = "?"

    def _owner(self, machine, address: int) -> str:
        if not self._ranges:
            self._ranges = sorted(
                (addr, f"{name}/{arity}")
                for (name, arity), addr in machine.predicates.items())
        owner = "?"
        for start, name in self._ranges:
            if address < start:
                break
            owner = name
        return owner

    def on_instruction(self, machine, address: int,
                       instr: Instruction, replay: bool = False) -> None:
        """Machine hook.  Attribution is delta-based, so a replayed
        instruction cannot double-count cycles; the delta covering the
        aborted attempt and its recovery lands on the predicate that
        faulted, which is where the overhead belongs."""
        elapsed = machine.cycles - self._last_cycles
        if elapsed > 0:
            self.cycles_by_predicate[self._current] = \
                self.cycles_by_predicate.get(self._current, 0) + elapsed
        self._last_cycles = machine.cycles
        self._current = self._owner(machine, address)

    def report(self, top: int = 10) -> str:
        """The hottest predicates by attributed cycles."""
        rows = sorted(self.cycles_by_predicate.items(),
                      key=lambda kv: -kv[1])[:top]
        total = sum(self.cycles_by_predicate.values()) or 1
        return "\n".join(f"{name:24s} {cycles:10d} "
                         f"({100 * cycles / total:5.1f}%)"
                         for name, cycles in rows)


def attach(machine, tracer) -> None:
    """Install a tracer on a machine (replaces any existing one)."""
    machine.tracer = tracer
