"""The KCM processor model.

Executes linked KCM code (see :mod:`repro.compiler`) over the simulated
memory system, with cycle accounting per :mod:`repro.core.costs` and
the architectural features of section 3 of the paper:

- WAM-derived instruction set over 64-bit tagged words,
- split-stack model: separate local (environment) and control (choice
  point) stacks (section 2.4), plus global stack (heap) and trail,
- MWAC-style type dispatch in unification instructions (section 3.1.4),
- **shallow backtracking** (section 3.1.5): entering a clause that has
  alternatives saves only three state registers (alternative address,
  H, TR) into shadow registers; the choice point is materialised at the
  clause *neck*, and a failure in the head or guard restores the shadow
  registers instead of a full choice-point reload,
- trail comparators running in parallel with dereferencing,
- zone-checked memory accesses through the logical data cache.

Everything dynamic is counted in :class:`repro.core.statistics.RunStats`.

Choice-point frame layout (CONTROL zone, grows upward)::

    B+0  arity          B+5  saved TR
    B+1  previous B     B+6  saved B0
    B+2  saved CP       B+7  saved LB (local barrier)
    B+3  saved E        B+8  alternative clause address
    B+4  saved H        B+9.. saved A1..An

making the typical frame about 10 words, as section 3.1.5 says.

Environment frame layout (LOCAL zone, grows upward)::

    E+0  CE (continuation environment)
    E+1  CP (continuation code address)
    E+2.. Y1..Yn

The live size of the topmost frame is not stored: as in the WAM, it is
read from the ``nperms`` field of the call instruction just before the
current return address — which is also how environment trimming works.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.costs import CostModel, Features, kcm_cost_model, kcm_features
from repro.core.instruction import Instruction
from repro.core.opcodes import ArithOp, Op, TestOp
from repro.core.registers import RegisterFile, ShadowState
from repro.core.statistics import RunStats
from repro.core.symbols import SymbolTable
from repro.core.tags import ADDRESS_MASK, Type, Zone, tag_zone
from repro.core.trail import Trail
from repro.core.word import (
    Word, make_code_ptr, make_data_ptr, make_float, make_functor, make_int,
    make_list, make_struct, make_unbound, to_single_precision, wrap_int32,
)
from repro.core.predecode import PredecodedCode, predecode
from repro.core.superops import SuperopFuser
from repro.core.traps import (
    MachineCheckpoint, TrapLogRing, TrapReport, TrapVector,
)
from repro.errors import (
    ArithmeticError_, CycleLimitExceeded, ExistenceError, InstructionError,
    MachineError, MachineTrap,
)
from repro.memory.layout import initial_stack_pointer
from repro.memory.memory_system import MemorySystem

#: size of the recently-executed-addresses ring buffer kept by the run
#: loop (power of two; the index mask below depends on it).
RECENT_RING = 16
_RECENT_MASK = RECENT_RING - 1

#: consecutive recoveries of the same trap kind at the same PC before
#: the trap vector declares a recovery livelock and aborts.
MAX_TRAP_RETRIES = 8

# Choice-point frame field offsets.
CP_ARITY = 0
CP_PREV_B = 1
CP_SAVED_CP = 2
CP_SAVED_E = 3
CP_SAVED_H = 4
CP_SAVED_TR = 5
CP_SAVED_B0 = 6
CP_SAVED_LB = 7
CP_ALT = 8
CP_ARGS = 9

# Environment frame field offsets.
ENV_CE = 0
ENV_CP = 1
ENV_Y0 = 2


class Machine:
    """One KCM (or baseline-configured) processor instance."""

    def __init__(self,
                 symbols: Optional[SymbolTable] = None,
                 costs: Optional[CostModel] = None,
                 features: Optional[Features] = None,
                 memory: Optional[MemorySystem] = None,
                 stagger_stacks: bool = True,
                 max_cycles: int = 500_000_000,
                 fast_path: bool = True):
        self.symbols = symbols if symbols is not None else SymbolTable()
        self.costs = costs if costs is not None else kcm_cost_model()
        self.features = features if features is not None else kcm_features()
        if memory is None:
            memory = MemorySystem(
                sectioned_cache=self.features.sectioned_cache,
                zone_check=self.features.zone_check)
        self.memory = memory
        self.stagger_stacks = stagger_stacks
        self.max_cycles = max_cycles
        #: use the predecoded threaded-dispatch loop (docs/PERF.md).
        #: ``False`` is the ablation: the seed per-instruction
        #: interpreter, bit-identical in every simulated statistic.
        self.fast_path = fast_path

        # Code space: word-addressed list of Instruction (None for the
        # continuation words of multi-word instructions).
        self.code: List[Optional[Instruction]] = []
        #: (name, arity) -> code entry address, filled by the linker.
        self.predicates: Dict[tuple, int] = {}
        #: builtin id -> callable(machine, arity) -> bool.
        self.builtins: Dict[int, Callable[["Machine", int], bool]] = {}

        self.regs = RegisterFile()
        self.shadow = ShadowState()
        self.stats = RunStats()

        self._stack_base: Dict[Zone, int] = {}
        for zone in (Zone.GLOBAL, Zone.LOCAL, Zone.CONTROL, Zone.TRAIL):
            region = self.memory.layout[zone]
            self._stack_base[zone] = initial_stack_pointer(
                region, staggered=stagger_stacks)

        self.trail = Trail(self._stack_base[Zone.TRAIL],
                           self._trail_read, self._trail_write)

        # Answer collection (the '$answer' escape).
        self.solutions: List[dict] = []
        self.answer_names: List[str] = []
        self.collect_all = False
        #: session hook: with collect_all set, pause (running = False at
        #: the next instruction boundary, after the answer's fail/
        #: backtrack) each time '$answer' records a solution, instead of
        #: driving on to exhaustion.  resume() continues the search for
        #: the next solution bit-identically (docs/SESSIONS.md).
        self.stop_on_solution = False
        #: set by the '$answer' escape when stop_on_solution pauses the
        #: run; cleared on the next run/resume entry.  Distinguishes
        #: "paused with a fresh solution" from cycle-budget pauses.
        self.solution_paused = False

        # Output from write/1 and friends when real I/O is linked in.
        self.output: List[str] = []

        #: optional execution monitor (see repro.core.monitor).
        self.tracer = None

        #: trap-handler table (empty = every trap aborts, the seed
        #: behaviour; see repro.recovery for ready-made handlers).
        self.trap_vector = TrapVector()
        #: optional deterministic fault injector (repro.recovery.inject).
        self.injector = None
        #: TrapReports of delivered traps, recovered or fatal (a
        #: bounded ring: long-lived session engines keep the newest
        #: TRAP_LOG_RING reports plus a dropped-count).
        self.trap_log = TrapLogRing()

        self._dispatch = self._build_dispatch()
        #: predecoded block table (repro.core.predecode), built lazily
        #: per code image and dropped whenever the code zone changes.
        self._predecoded: Optional[PredecodedCode] = None
        #: code-zone generation: bumped by every code writer (including
        #: same-length in-place rewrites via patch_code, which a code-
        #: length staleness check alone would miss).
        self._code_generation = 0
        self._stubs: Dict[int, int] = {}
        self._recent_pcs: List[int] = [-1] * RECENT_RING
        self._recent_index = 0
        self._entry_name: Optional[str] = None
        self._retry_pc = -1
        self._retry_kind = ""
        self._retry_count = 0
        #: per-instruction write-undo log, active only inside
        #: _loop_recovering (None ⇒ _write does no extra work).
        self._undo_log: Optional[List[tuple]] = None
        self._reset_state()

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------

    def _reset_state(self) -> None:
        self.p = 0                  # program counter
        self.cp = 0                 # continuation code address
        self.e = 0                  # current environment
        self.b = 0                  # current choice point (0 = none)
        self.b0 = 0                 # cut barrier
        self.h = self._stack_base[Zone.GLOBAL]
        self.hb = self.h            # heap barrier
        self.s = 0                  # structure pointer
        self.lb = self._stack_base[Zone.LOCAL]   # local barrier
        self.mode_write = False
        self.shallow_flag = False
        self.cp_flag = False
        self.trail.top = self.trail.base
        self.cycles = 0
        self.running = False
        self.halted = False
        self.exhausted = False
        self.solution_paused = False
        self.trap_log = TrapLogRing()
        self._recent_pcs = [-1] * RECENT_RING
        self._recent_index = 0
        self._retry_pc = -1
        self._retry_kind = ""
        self._retry_count = 0
        self._undo_log = None

    def reset(self) -> None:
        """Full reset of machine state and statistics (keeps code)."""
        self._reset_state()
        self.stats = RunStats()
        self.solutions = []
        self.output = []
        self.trail.pushes = 0
        self.trail.checks = 0

    def reset_for_reuse(self) -> None:
        """:meth:`reset` hardened into a true engine-reuse path.

        ``reset`` clears run state and statistics but leaves behind
        everything else a run dirtied: warm cache lines, mapped pages,
        zone limits moved by growth handlers or the fault injector, the
        register file, an attached injector.  Any of those makes the
        next run's simulated statistics diverge from a fresh machine's.
        This restores the full power-on state while keeping the
        host-side assets that are expensive to rebuild and purely
        deterministic: the linked code image, the bootstrap stubs, the
        dispatch table and the predecoded block table (a pure function
        of the unchanged code zone).  The warm machine pool
        (:mod:`repro.serve`) relies on the resulting guarantee, pinned
        by ``tests/test_warm_reuse.py``: run-after-reuse is
        bit-identical to run-on-fresh, including under injected faults.

        Host-side instrumentation that the caller attached explicitly
        (``tracer``, ``trap_vector`` handlers) is left in place; the
        injector is detached because its schedule is consumed by a run
        and its attach side effects (working-set premap, demand-paging
        switch) are undone here — re-attach a rewound injector for a
        faulted replay.
        """
        self.memory.reset_for_reuse()
        self.regs.clear()
        self.shadow.set(0, 0, 0)
        self.injector = None
        self.reset()

    # ------------------------------------------------------------------
    # pickling (spawn-safe worker shipping, see repro.serve)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the unpicklable/derived host-side state.

        The fused memory closures (installed as instance attributes
        ``_read``/``_write``/``deref`` for the duration of one run),
        the dispatch table of bound methods and lambdas, and the
        predecoded block table are all excluded; every one is rebuilt
        deterministically — the dispatch table eagerly on unpickle,
        the closures on the next run, the predecode table lazily by
        :meth:`_ensure_predecoded`.
        """
        state = self.__dict__.copy()
        for derived in ("_read", "_write", "deref"):
            state.pop(derived, None)
        state["_dispatch"] = None
        state["_predecoded"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._dispatch = self._build_dispatch()

    # ------------------------------------------------------------------
    # memory access helpers (all cycle-accounted)
    # ------------------------------------------------------------------

    # NOTE: under fast_path, _execute shadows _read/_write for the
    # duration of one run with the memory system's fused single-frame
    # closures (MemorySystem.fused_data_path); same observables.

    def _read(self, address: int, zone: Zone,
              word_type: Type = Type.DATA_PTR) -> Word:
        word, cycles = self.memory.data_read(address, zone, word_type)
        self.cycles += cycles - 1   # base cycle is in the instruction cost
        self.stats.data_reads += 1
        return word

    def _write(self, address: int, word: Word, zone: Zone,
               word_type: Type = Type.DATA_PTR) -> None:
        if self._undo_log is not None:
            # A trap mid-instruction must be able to undo writes that
            # succeeded functionally before the fault — including
            # *untrailed* young bindings the trail cannot rewind.
            self._undo_log.append((address, self.memory.store.peek(address)))
        cycles = self.memory.data_write(address, word, zone, word_type)
        self.cycles += cycles - 1
        self.stats.data_writes += 1

    def _trail_read(self, address: int, zone: Zone) -> Word:
        return self._read(address, zone)

    def _trail_write(self, address: int, word: Word, zone: Zone) -> None:
        self._write(address, word, zone)

    # ------------------------------------------------------------------
    # dereferencing, binding, trailing
    # ------------------------------------------------------------------

    def deref(self, word: Word) -> Word:
        """Follow the reference chain at one reference per cycle.

        Returns either a non-REF word or an unbound REF (a cell whose
        contents point to itself).
        """
        while word.type is Type.REF:
            address = word.value
            zone = word.zone
            if zone is None:
                zone = tag_zone(word.tag)   # raises, invalid encoding
            cell = self._read(address, zone, Type.REF)
            self.cycles += self.costs.deref_per_link
            self.stats.dereference_links += 1
            if cell.type is Type.REF and cell.value == address:
                return cell         # unbound variable
            word = cell
        return word

    def bind(self, address: int, zone: Zone, value: Word) -> None:
        """Bind the (unbound) cell at ``address`` to ``value``,
        trailing when the cell is older than the relevant barrier."""
        self.stats.trail_checks += 1
        if not self.features.parallel_trail:
            # The three address comparisons run serially before the
            # decision (the hardware does them alongside dereferencing
            # for free, section 3.1.5).
            self.cycles += max(self.costs.trail_check,
                               self.features.serial_trail_cycles)
        if self.trail.needs_trailing(address, zone, self.hb, self.lb):
            self.trail.push(address, zone)
            self.cycles += self.costs.trail_push
            self.stats.trail_pushes += 1
        self._write(address, value, zone)
        self.cycles += self.costs.bind - 1

    def _bind_or_compare(self, target: Word, value: Word) -> bool:
        """Unify a dereferenced ``target`` with a *constant* ``value``."""
        if target.type is Type.REF:
            self.bind(target.value, target.zone, value)
            return True
        return target.tag == value.tag and target.value == value.value

    # ------------------------------------------------------------------
    # heap construction
    # ------------------------------------------------------------------

    def heap_push(self, word: Word) -> int:
        """Append one word to the global stack; returns its address."""
        address = self.h
        self._write(address, word, Zone.GLOBAL)
        self.h = address + 1
        return address

    def new_heap_var(self) -> Word:
        """A fresh unbound variable on the global stack."""
        address = self.h
        self._write(address, make_unbound(address, Zone.GLOBAL), Zone.GLOBAL)
        self.h = address + 1
        return make_unbound(address, Zone.GLOBAL)

    # ------------------------------------------------------------------
    # general unification (the microcoded unifier behind the MWAC)
    # ------------------------------------------------------------------

    def unify(self, left: Word, right: Word) -> bool:
        """Full unification of two words; returns success.

        Iterative with an explicit work list (the hardware uses a push
        -down list in the system zone).  Cost: ``unify_per_cell`` per
        visited pair beyond the dereferences and binds it performs.
        """
        self.stats.general_unifications += 1
        worklist = [(left, right)]
        while worklist:
            a, b = worklist.pop()
            a = self.deref(a)
            b = self.deref(b)
            self.cycles += self.costs.unify_per_cell
            if a.type is Type.REF and b.type is Type.REF:
                if a.value == b.value:
                    continue
                # Bind the younger to the older: locals bind to heap
                # cells; within one zone higher addresses are younger.
                if a.zone == b.zone:
                    young, old = (a, b) if a.value > b.value else (b, a)
                elif a.zone is Zone.LOCAL:
                    young, old = a, b
                else:
                    young, old = b, a
                self.bind(young.value, young.zone, old)
            elif a.type is Type.REF:
                self.bind(a.value, a.zone, b)
            elif b.type is Type.REF:
                self.bind(b.value, b.zone, a)
            elif a.type is Type.LIST and b.type is Type.LIST:
                ah, bh = a.value, b.value
                worklist.append((self._read(ah + 1, a.zone),
                                 self._read(bh + 1, b.zone)))
                worklist.append((self._read(ah, a.zone),
                                 self._read(bh, b.zone)))
            elif a.type is Type.STRUCT and b.type is Type.STRUCT:
                fa = self._read(a.value, a.zone)
                fb = self._read(b.value, b.zone)
                if fa.value != fb.value:
                    return False
                _, arity = self.symbols.functor_key(int(fa.value))
                for i in range(arity, 0, -1):
                    worklist.append((self._read(a.value + i, a.zone),
                                     self._read(b.value + i, b.zone)))
            elif a.type is Type.FLOAT and b.type is Type.FLOAT:
                if a.value != b.value:
                    return False
            else:
                if a.tag != b.tag or a.value != b.value:
                    return False
        return True

    def _fused_control_path(self):
        """Single-frame replacements for the hot control-path methods
        (``bind``, ``unify``, ``fail``, choice-point create/pop/
        refresh) used during fast-path runs, mirroring
        :meth:`MemorySystem.fused_data_path`.

        Both replicate the class methods above statement for statement
        — same counters, same cycle charges, same raise points — with
        the per-call attribute traffic (costs, stats, trail, symbol
        table) hoisted into the closure, and the trail check/push of
        :meth:`bind` inlined.  Built by :meth:`_execute` after the
        fused data accessors are installed so they capture those;
        uninstalled with them, so the ablation and inter-run accesses
        always take the class methods.
        """
        machine = self
        stats = self.stats
        trail = self.trail
        costs = self.costs
        read = self._read
        write = self._write
        deref = self.deref
        serial_penalty = 0 if self.features.parallel_trail else \
            max(costs.trail_check, self.features.serial_trail_cycles)
        trail_push_cost = costs.trail_push
        bind_extra = costs.bind - 1
        unify_per_cell = costs.unify_per_cell
        functor_key = self.symbols.functor_key
        mdp = make_data_ptr
        GLOBAL = Zone.GLOBAL
        LOCAL = Zone.LOCAL
        TRAIL = Zone.TRAIL
        REF = Type.REF
        LIST = Type.LIST
        STRUCT = Type.STRUCT
        FLOAT = Type.FLOAT

        def bind(address, zone, value):
            stats.trail_checks += 1
            if serial_penalty:
                machine.cycles += serial_penalty
            trail.checks += 1
            if (address < machine.hb if zone is GLOBAL
                    else address < machine.lb if zone is LOCAL else True):
                top = trail.top
                w = mdp(address, zone)
                # wr_trail's hit path expanded in place: one push per
                # trailed binding makes this the densest write site on
                # the fast path, worth saving the call frame.
                hit = False
                if (te_ok and machine._undo_log is None
                        and not store.track_dirty
                        and not te.write_protected):
                    c = chunks.get(top >> 16)
                    if c is not None:
                        if sectioned:
                            j = te_base | (top & 1023)
                            t = top >> 10
                        else:
                            j = top & 8191
                            t = top >> 13
                        if (dtags[j] == t
                                and te.low_bound <= top < te.high_bound
                                and 0 <= top <= amask):
                            te.checks += 1
                            c[top & 0xFFFF] = w
                            ds.writes += 1
                            ds.write_hits += 1
                            ddirty[j] = True
                            stats.data_writes += 1
                            hit = True
                if not hit:
                    write(top, w, TRAIL)
                trail.top = top + 1
                trail.pushes += 1
                machine.cycles += trail_push_cost
                stats.trail_pushes += 1
            if zone is GLOBAL:
                wr_global(address, value)
            elif zone is LOCAL:
                wr_local(address, value)
            else:
                write(address, value, zone)
            machine.cycles += bind_extra

        def unify(left, right):
            stats.general_unifications += 1
            worklist = [(left, right)]
            while worklist:
                a, b = worklist.pop()
                if a.type is REF:
                    a = deref(a)
                if b.type is REF:
                    b = deref(b)
                machine.cycles += unify_per_cell
                ta = a.type
                tb = b.type
                if ta is REF and tb is REF:
                    if a.value == b.value:
                        continue
                    if a.zone == b.zone:
                        young, old = (a, b) if a.value > b.value else (b, a)
                    elif a.zone is LOCAL:
                        young, old = a, b
                    else:
                        young, old = b, a
                    bind(young.value, young.zone, old)
                elif ta is REF:
                    bind(a.value, a.zone, b)
                elif tb is REF:
                    bind(b.value, b.zone, a)
                elif ta is LIST and tb is LIST:
                    ah, bh = a.value, b.value
                    az, bz = a.zone, b.zone
                    worklist.append((read(ah + 1, az), read(bh + 1, bz)))
                    worklist.append((read(ah, az), read(bh, bz)))
                elif ta is STRUCT and tb is STRUCT:
                    av, bv, az, bz = a.value, b.value, a.zone, b.zone
                    fa = read(av, az)
                    fb = read(bv, bz)
                    if fa.value != fb.value:
                        return False
                    _, arity = functor_key(int(fa.value))
                    for i in range(arity, 0, -1):
                        worklist.append((read(av + i, az),
                                         read(bv + i, bz)))
                elif ta is FLOAT and tb is FLOAT:
                    if a.value != b.value:
                        return False
                else:
                    if a.tag != b.tag or a.value != b.value:
                        return False
            return True

        shadow = self.shadow
        set_x = self.regs.set_x
        reg_x = self.regs.x
        memory = self.memory
        store = memory.store
        chunks = store._chunks
        dcache = memory.data_cache
        dtags = dcache.tags
        ddirty = dcache.dirty
        ds = dcache.stats
        sectioned = dcache.sectioned
        timing = memory.timing_enabled
        zone_checking = memory.zones.enabled
        DPT = Type.DATA_PTR
        amask = ADDRESS_MASK

        def specialise(zone):
            """Constant-zone read/write with the cache/zone hit path
            inlined, the same shape the superinstruction emitter
            (repro.core.superops) generates for build-time-constant
            zones: every counter commits only after all conditions
            passed, and any edge — timing or zone checking off, armed
            undo log, dirty-chunk tracking, write protection, missing
            chunk, uninitialised cell, bounds, cache miss — falls back
            to the generic fused accessor, which owns those cases.
            ``allowed_types`` is never reassigned after construction,
            so the membership test is baked; limits and protection are
            read per access (growth handlers move them mid-run)."""
            entry = memory.zones.entries.get(zone)
            ok = (entry is not None and DPT in entry.allowed_types
                  and timing and zone_checking)
            base = (int(zone) & 7) << 10

            def rd(a):
                if ok:
                    c = chunks.get(a >> 16)
                    if c is not None:
                        if sectioned:
                            j = base | (a & 1023)
                            t = a >> 10
                        else:
                            j = a & 8191
                            t = a >> 13
                        if dtags[j] == t:
                            w = c[a & 0xFFFF]
                            if (w is not None
                                    and entry.low_bound <= a
                                    < entry.high_bound
                                    and 0 <= a <= amask):
                                entry.checks += 1
                                ds.reads += 1
                                ds.read_hits += 1
                                stats.data_reads += 1
                                return w
                return read(a, zone)

            def wr(a, w):
                if (ok and machine._undo_log is None
                        and not store.track_dirty
                        and not entry.write_protected):
                    c = chunks.get(a >> 16)
                    if c is not None:
                        if sectioned:
                            j = base | (a & 1023)
                            t = a >> 10
                        else:
                            j = a & 8191
                            t = a >> 13
                        if (dtags[j] == t
                                and entry.low_bound <= a
                                < entry.high_bound
                                and 0 <= a <= amask):
                            entry.checks += 1
                            c[a & 0xFFFF] = w
                            ds.writes += 1
                            ds.write_hits += 1
                            ddirty[j] = True
                            stats.data_writes += 1
                            return
                write(a, w, zone)

            return rd, wr, entry, ok
        shallow_enabled = self.features.shallow_backtracking
        fail_shallow = costs.fail_shallow
        unwind_cost = costs.trail_unwind_per_entry
        cp_restore_base = costs.cp_restore_base
        cp_restore_per_reg = costs.cp_restore_per_reg
        fail_deep_branch = costs.fail_deep_branch
        cp_create_base = costs.cp_create_base
        cp_save_per_reg = costs.cp_save_per_reg
        global_base = self._stack_base[GLOBAL]
        local_base = self._stack_base[LOCAL]
        control_base = self._stack_base[Zone.CONTROL]
        CONTROL = Zone.CONTROL
        mcp = make_code_ptr
        mki = make_int
        rd_control, wr_control, ce, ce_ok = specialise(CONTROL)
        ce_base = (int(CONTROL) & 7) << 10
        rd_trail, wr_trail, te, te_ok = specialise(TRAIL)
        wr_global = specialise(GLOBAL)[1]
        wr_local = specialise(LOCAL)[1]
        te_base = (int(TRAIL) & 7) << 10

        mku = make_unbound

        def unwind(mark):
            # Trail.unwind_to with the specialised accessors; trail.top
            # moves before each entry's restore, like the class method,
            # so a trap mid-unwind leaves identical partial state.
            undone = 0
            while trail.top > mark:
                t = trail.top - 1
                trail.top = t
                entry = rd_trail(t)
                address = int(entry.value)
                z = entry.zone
                if z is GLOBAL:
                    wr_global(address, mku(address, z))
                elif z is LOCAL:
                    wr_local(address, mku(address, z))
                else:
                    write(address, mku(address, z), z)
                undone += 1
            return undone

        def fail():
            tracer = machine.tracer
            if tracer is not None:
                note = getattr(tracer, "note_failure", None)
                if note is not None:
                    note()
            if shallow_enabled and machine.shallow_flag:
                stats.shallow_fails += 1
                machine.cycles += fail_shallow
                if not machine.cp_flag:
                    undone = unwind(shadow.tr)
                    machine.cycles += undone * unwind_cost
                    machine.h = shadow.h
                    machine.p = shadow.alt
                else:
                    b = machine.b
                    tr = int(rd_control(b + CP_SAVED_TR).value)
                    undone = unwind(tr)
                    machine.cycles += undone * unwind_cost
                    machine.h = int(rd_control(b + CP_SAVED_H).value)
                    machine.p = int(rd_control(b + CP_ALT).value)
                return

            stats.deep_fails += 1
            b = machine.b
            if not b:
                machine.running = False
                machine.exhausted = True
                return
            arity = int(rd_control(b + CP_ARITY).value)
            for i in range(arity):
                set_x(i, rd_control(b + CP_ARGS + i))
            machine.cp = int(rd_control(b + CP_SAVED_CP).value)
            machine.e = int(rd_control(b + CP_SAVED_E).value)
            machine.b0 = int(rd_control(b + CP_SAVED_B0).value)
            tr = int(rd_control(b + CP_SAVED_TR).value)
            undone = unwind(tr)
            h = int(rd_control(b + CP_SAVED_H).value)
            machine.h = h
            machine.hb = h
            machine.lb = int(rd_control(b + CP_SAVED_LB).value)
            machine.p = int(rd_control(b + CP_ALT).value)
            machine.cp_flag = True
            machine.shallow_flag = False
            machine.cycles += (cp_restore_base
                               + arity * cp_restore_per_reg
                               + fail_deep_branch
                               + undone * unwind_cost)

        def create_choice_point(alt, arity, h, tr, lb):
            b = machine.b
            base = (b + CP_ARGS
                    + int(rd_control(b + CP_ARITY).value)) if b \
                else control_base
            # The frame's 9 + arity words go to consecutive ascending
            # addresses, so wr_control's hit path is expanded once as a
            # loop (per-word fallback keeps access order and counters
            # exact).  The undo-log/dirty-tracking/protection guards
            # hoist out of the loop: no handler can run between the
            # writes of one instruction on the fast loop, and the
            # recovering loop always has the undo log armed, which
            # routes every word through the generic accessor.
            words = [mki(arity), mdp(b, CONTROL), mcp(machine.cp),
                     mdp(machine.e, LOCAL), mdp(h, GLOBAL),
                     mdp(tr, TRAIL), mdp(machine.b0, CONTROL),
                     mdp(lb, LOCAL), mcp(alt)]
            for i in range(arity):
                words.append(reg_x(i))
            a = base
            if (ce_ok and machine._undo_log is None
                    and not store.track_dirty
                    and not ce.write_protected):
                for w in words:
                    c = chunks.get(a >> 16)
                    hit = False
                    if c is not None:
                        if sectioned:
                            j = ce_base | (a & 1023)
                            t = a >> 10
                        else:
                            j = a & 8191
                            t = a >> 13
                        if (dtags[j] == t
                                and ce.low_bound <= a < ce.high_bound
                                and 0 <= a <= amask):
                            ce.checks += 1
                            c[a & 0xFFFF] = w
                            ds.writes += 1
                            ds.write_hits += 1
                            ddirty[j] = True
                            stats.data_writes += 1
                            hit = True
                    if not hit:
                        write(a, w, CONTROL)
                    a += 1
            else:
                for w in words:
                    write(a, w, CONTROL)
                    a += 1
            machine.b = base
            machine.hb = h
            machine.lb = lb
            machine.cycles += cp_create_base + arity * cp_save_per_reg
            stats.choice_points_created += 1

        def refresh_barriers():
            b = machine.b
            if b:
                machine.hb = int(rd_control(b + CP_SAVED_H).value)
                machine.lb = int(rd_control(b + CP_SAVED_LB).value)
            else:
                machine.hb = global_base
                machine.lb = local_base

        def pop_choice_point():
            machine.b = int(rd_control(machine.b + CP_PREV_B).value)
            refresh_barriers()

        return (bind, unify, fail, create_choice_point,
                refresh_barriers, pop_choice_point)

    # ------------------------------------------------------------------
    # stack geometry
    # ------------------------------------------------------------------

    def _caller_frame_size(self) -> int:
        """Live size of the current environment frame, read from the
        nperms field of the call instruction before the return address
        (the WAM environment-trimming convention)."""
        call_instr = self.code[self.cp - 1] if self.cp >= 1 else None
        if call_instr is not None and call_instr.op is Op.CALL:
            return ENV_Y0 + call_instr.b
        return ENV_Y0

    def local_top(self) -> int:
        """First free word of the local stack."""
        e_top = self.e + self._caller_frame_size() if self.e else \
            self._stack_base[Zone.LOCAL]
        return max(e_top, self.lb)

    def control_top(self) -> int:
        """First free word of the control stack."""
        if not self.b:
            return self._stack_base[Zone.CONTROL]
        arity = int(self._read(self.b + CP_ARITY, Zone.CONTROL).value)
        return self.b + CP_ARGS + arity

    # ------------------------------------------------------------------
    # choice points
    # ------------------------------------------------------------------

    def _create_choice_point(self, alt: int, arity: int,
                             h: int, tr: int, lb: int) -> None:
        base = self.control_top()
        write = self._write
        write(base + CP_ARITY, make_int(arity), Zone.CONTROL)
        write(base + CP_PREV_B, make_data_ptr(self.b, Zone.CONTROL),
              Zone.CONTROL)
        write(base + CP_SAVED_CP, make_code_ptr(self.cp), Zone.CONTROL)
        write(base + CP_SAVED_E, make_data_ptr(self.e, Zone.LOCAL),
              Zone.CONTROL)
        write(base + CP_SAVED_H, make_data_ptr(h, Zone.GLOBAL), Zone.CONTROL)
        write(base + CP_SAVED_TR, make_data_ptr(tr, Zone.TRAIL),
              Zone.CONTROL)
        write(base + CP_SAVED_B0, make_data_ptr(self.b0, Zone.CONTROL),
              Zone.CONTROL)
        write(base + CP_SAVED_LB, make_data_ptr(lb, Zone.LOCAL),
              Zone.CONTROL)
        write(base + CP_ALT, make_code_ptr(alt), Zone.CONTROL)
        for i in range(arity):
            write(base + CP_ARGS + i, self.regs.x(i), Zone.CONTROL)
        self.b = base
        self.hb = h
        self.lb = lb
        self.cycles += self.costs.cp_create_base \
            + arity * self.costs.cp_save_per_reg
        self.stats.choice_points_created += 1

    def _cp_field(self, index: int) -> Word:
        return self._read(self.b + index, Zone.CONTROL)

    def _refresh_barriers(self) -> None:
        """Reload HB and LB from the current choice point (or bases)."""
        if self.b:
            self.hb = int(self._cp_field(CP_SAVED_H).value)
            self.lb = int(self._cp_field(CP_SAVED_LB).value)
        else:
            self.hb = self._stack_base[Zone.GLOBAL]
            self.lb = self._stack_base[Zone.LOCAL]

    def _pop_choice_point(self) -> None:
        self.b = int(self._cp_field(CP_PREV_B).value)
        self._refresh_barriers()

    # ------------------------------------------------------------------
    # failure
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Backtrack: shallow when the shadow registers suffice,
        otherwise a full choice-point restore."""
        if self.tracer is not None:
            note = getattr(self.tracer, "note_failure", None)
            if note is not None:
                note()
        costs = self.costs
        if self.features.shallow_backtracking and self.shallow_flag:
            self.stats.shallow_fails += 1
            self.cycles += costs.fail_shallow
            if not self.cp_flag:
                undone = self.trail.unwind_to(self.shadow.tr)
                self.cycles += undone * costs.trail_unwind_per_entry
                self.h = self.shadow.h
                self.p = self.shadow.alt
            else:
                tr = int(self._cp_field(CP_SAVED_TR).value)
                undone = self.trail.unwind_to(tr)
                self.cycles += undone * costs.trail_unwind_per_entry
                self.h = int(self._cp_field(CP_SAVED_H).value)
                self.p = int(self._cp_field(CP_ALT).value)
            return

        self.stats.deep_fails += 1
        if not self.b:
            self.running = False
            self.exhausted = True
            return
        arity = int(self._cp_field(CP_ARITY).value)
        for i in range(arity):
            self.regs.set_x(i, self._read(self.b + CP_ARGS + i,
                                          Zone.CONTROL))
        self.cp = int(self._cp_field(CP_SAVED_CP).value)
        self.e = int(self._cp_field(CP_SAVED_E).value)
        self.b0 = int(self._cp_field(CP_SAVED_B0).value)
        tr = int(self._cp_field(CP_SAVED_TR).value)
        undone = self.trail.unwind_to(tr)
        self.h = int(self._cp_field(CP_SAVED_H).value)
        self.hb = self.h
        self.lb = int(self._cp_field(CP_SAVED_LB).value)
        self.p = int(self._cp_field(CP_ALT).value)
        self.cp_flag = True
        self.shallow_flag = False
        self.cycles += (costs.cp_restore_base
                        + arity * costs.cp_restore_per_reg
                        + costs.fail_deep_branch
                        + undone * costs.trail_unwind_per_entry)

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self, entry: int, collect_all: bool = False,
            answer_names: Optional[List[str]] = None) -> RunStats:
        """Execute from the bootstrap stub calling ``entry``.

        The linker places a two-instruction stub (``call entry, 0`` then
        ``halt``) at the end of the code space; running starts there so
        CP conventions hold from the first instruction.

        Every :class:`MachineError` escaping this method carries the
        partial ``RunStats`` of the interrupted run and the program
        counter at the fault (``err.stats`` / ``err.pc``); the stats
        object is finalized (cycles, solutions, trail pushes) whether
        the run completes or not.
        """
        self.collect_all = collect_all
        self.answer_names = answer_names or []
        self._reset_state()
        self.stats = RunStats()
        self.solutions = []
        self.output = []

        stub = self._bootstrap_stub(entry)
        self.p = stub
        # Initial environment frame: CE = self, CP = the halt address.
        e0 = self._stack_base[Zone.LOCAL]
        self._write(e0 + ENV_CE, make_data_ptr(e0, Zone.LOCAL), Zone.LOCAL)
        self._write(e0 + ENV_CP, make_code_ptr(stub + 1), Zone.LOCAL)
        self.e = e0
        self.lb = e0 + ENV_Y0
        self.cp = stub + 1
        self._entry_name = self._describe_entry(entry)

        self.running = True
        return self._execute()

    def resume(self, extra_cycles: Optional[int] = None) -> RunStats:
        """Continue the run loop from the machine's current state.

        Used after a :class:`CycleLimitExceeded` watchdog stop (state is
        intact at an instruction boundary; pass ``extra_cycles`` to
        extend the budget) or after :meth:`restore` of a checkpoint.
        Statistics keep accumulating into the same ``RunStats``.
        """
        if self.halted or self.exhausted:
            return self.stats
        if extra_cycles is not None:
            self.max_cycles = self.cycles + extra_cycles
        self.running = True
        return self._execute()

    def run_sliced(self, entry: int,
                   next_stop: Callable[[int], Optional[int]],
                   on_stop: Callable[["Machine"], None],
                   collect_all: bool = False,
                   answer_names: Optional[List[str]] = None) -> RunStats:
        """:meth:`run`, pre-emptible at chosen cycle counts.

        ``next_stop(cycles)`` names the next absolute cycle count at
        which to pause (strictly greater than ``cycles``, or ``None``
        for no further stops); ``on_stop(machine)`` runs at each pause
        with the machine at an instruction boundary — the serving
        layer's checkpoint and chaos hooks.  Implemented purely by
        narrowing ``max_cycles`` per slice and resuming, so the run
        loops are untouched: a run with no stops is byte-for-byte the
        plain :meth:`run`, and simulated state/statistics are identical
        regardless of slicing (the watchdog stop is resume-exact).  The
        real budget in ``self.max_cycles`` still aborts the run with
        :class:`~repro.errors.CycleLimitExceeded`, with the same
        message an unsliced run would produce.
        """
        budget = self.max_cycles
        target = next_stop(0)
        self.max_cycles = budget if target is None else min(budget, target)
        return self._drive_slices(
            budget, next_stop, on_stop,
            lambda: self.run(entry, collect_all=collect_all,
                             answer_names=answer_names))

    def resume_sliced(self, next_stop: Callable[[int], Optional[int]],
                      on_stop: Callable[["Machine"], None]) -> RunStats:
        """:meth:`resume`, pre-emptible like :meth:`run_sliced` (used
        to continue a restored checkpoint under the same slicing).
        ``self.max_cycles`` must already hold the true budget."""
        budget = self.max_cycles
        target = next_stop(self.cycles)
        self.max_cycles = budget if target is None else min(budget, target)
        return self._drive_slices(budget, next_stop, on_stop, self.resume)

    def _drive_slices(self, budget: int,
                      next_stop: Callable[[int], Optional[int]],
                      on_stop: Callable[["Machine"], None],
                      first: Callable[[], RunStats]) -> RunStats:
        """Run/resume until completion, pausing at ``next_stop`` cycle
        targets.  A watchdog stop below the budget is a slice boundary;
        at (or beyond) the budget it is the genuine limit and the error
        propagates untouched."""
        try:
            try:
                return first()
            except CycleLimitExceeded:
                if self.max_cycles >= budget:
                    raise
            while True:
                on_stop(self)
                target = next_stop(self.cycles)
                self.max_cycles = budget if target is None \
                    else min(budget, target)
                try:
                    return self.resume()
                except CycleLimitExceeded:
                    if self.max_cycles >= budget:
                        raise
        finally:
            self.max_cycles = budget

    def _execute(self) -> RunStats:
        """Run the main loop until halt/exhaustion, finalizing stats and
        annotating escaping errors no matter how the loop exits."""
        stats = self.stats
        # A fresh (re)entry consumes any pending stop-at-solution pause;
        # the '$answer' escape re-raises it at the next solution.
        self.solution_paused = False
        # Under fast_path, shadow _read/_write with the memory system's
        # fused single-frame closures for the duration of this run —
        # same observables (docs/PERF.md), so the ablation keeps the
        # seed layered path.  Installed here rather than in __init__
        # because the closures capture this run's RunStats; the finally
        # below uninstalls them so accesses between runs (bootstrap
        # frame setup, tests poking _read directly) take the layered
        # class methods again.
        trail = self.trail
        if self.fast_path:
            self._read, self._write, self.deref = \
                self.memory.fused_data_path(self)
            (self.bind, self.unify, self.fail,
             self._create_choice_point, self._refresh_barriers,
             self._pop_choice_point) = self._fused_control_path()
            # The trail's accessors forward through _trail_read/_write
            # to self._read/_write; pointing them at the fused closures
            # for the run saves the forwarding frame on every push and
            # unwind entry.  Restored below with the fused accessors.
            trail._read = self._read
            trail._write = self._write
        try:
            if self.trap_vector.armed or self.injector is not None:
                self._loop_recovering()
            elif self.fast_path and self.tracer is None:
                self._loop_predecoded()
            else:
                self._loop_fast()
        except MachineError as err:
            err.stats = stats
            err.pc = self.p
            if isinstance(err, MachineTrap) and err.report is None:
                # Fast-loop (unarmed) traps skip _service_trap; give
                # them the same audit trail on the way out.  The ring
                # buffer holds the faulting instruction's address (self.p
                # has already advanced past it).
                pc = self._recent_pcs[(self._recent_index - 1)
                                      & _RECENT_MASK] \
                    if self._recent_index else self.p
                report = self._build_report(err, pc)
                err.report = report
                self.trap_log.append(report)
                stats.traps_raised += 1
                stats.count_trap(report.kind)
            raise
        finally:
            self.running = False
            self._undo_log = None
            self.__dict__.pop("_read", None)
            self.__dict__.pop("_write", None)
            self.__dict__.pop("deref", None)
            self.__dict__.pop("bind", None)
            self.__dict__.pop("unify", None)
            self.__dict__.pop("fail", None)
            self.__dict__.pop("_create_choice_point", None)
            self.__dict__.pop("_refresh_barriers", None)
            self.__dict__.pop("_pop_choice_point", None)
            trail._read = self._trail_read
            trail._write = self._trail_write
            stats.cycles = self.cycles
            stats.solutions = len(self.solutions)
            stats.trail_pushes = self.trail.pushes
        return stats

    # -- predecode cache management ------------------------------------

    def invalidate_predecode(self) -> None:
        """Drop the predecoded block table; every code-zone writer
        (linker install, incremental loader, bootstrap-stub allocator)
        calls this, and :meth:`_ensure_predecoded` re-checks the code
        length and generation defensively."""
        self._predecoded = None
        self._code_generation += 1

    def patch_code(self, address: int, instr: "Instruction") -> None:
        """Rewrite one already-decoded instruction in place.

        The blessed API for same-length code-word rewrites (runtime
        specialisation, debugger breakpoints): validates that an
        instruction of the same encoded size starts at ``address``,
        writes it, and bumps the code-zone generation *without*
        dropping the predecoded table — :meth:`_ensure_predecoded`
        notices the stale generation on the next run and retranslates.
        A raw ``machine.code[address] = ...`` store would leave the
        fast path executing the old predecoded instruction.
        """
        old = self.code[address] if 0 <= address < len(self.code) else None
        if old is None:
            raise InstructionError(
                f"no instruction starts at code address {address}")
        if instr.size != old.size:
            raise InstructionError(
                f"patch at {address} changes instruction size "
                f"({old.size} -> {instr.size} words); only same-size "
                f"rewrites keep the code layout valid")
        self.code[address] = instr
        self._code_generation += 1

    def _ensure_predecoded(self) -> PredecodedCode:
        """The predecoded table for the current code zone, rebuilt only
        when the code changed since the last build.  With
        ``features.superops`` on, profile-selected hot blocks are fused
        into single closures (repro.core.superops) during translation."""
        table = self._predecoded
        if table is None or not table.valid_for(self.code,
                                                self._code_generation):
            fuser = SuperopFuser(self) if self.features.superops else None
            table = predecode(self.code, self._dispatch,
                              self.costs.static_cost_table(),
                              fuser=fuser,
                              generation=self._code_generation)
            self._predecoded = table
        return table

    def _loop_predecoded(self) -> None:
        """The predecoded threaded-dispatch hot loop (docs/PERF.md).

        Executes basic blocks of bound step tuples: the block's static
        cycles / instruction count / inference count are charged once
        at block entry and the unexecuted suffix is uncharged when a
        step transfers control early (failure, builtin redirect, trap),
        so every simulated statistic is bit-identical to
        :meth:`_loop_fast`.  The watchdog check runs once per block:
        :class:`CycleLimitExceeded` may therefore surface up to one
        block later than under the seed loop, but always at an
        instruction boundary with exact accounting (``resume`` works
        unchanged).  Code-fetch timing still runs per instruction —
        the code cache is stateful — with the hit path inlined and its
        two counters batched locally, flushed on every exit path.

        Blocks the profile marked hot carry a superinstruction closure
        (``entry[4]``, built by repro.core.superops): the whole run
        executes as one call with identical observables — the closure
        performs the same per-instruction ring writes, code-fetch
        probes and deviation uncharges this loop would.
        """
        entries = self._ensure_predecoded().entries
        memory = self.memory
        stats = self.stats
        recent = self._recent_pcs
        max_cycles = self.max_cycles
        timing = memory.timing_enabled
        code_fetch = memory.code_fetch
        line_tags, index_mask, tag_shift = memory.code_probe_state()
        cache_stats = memory.code_cache.stats
        hits = 0
        try:
            while self.running:
                p = self.p
                entry = entries[p]
                if entry is None:
                    raise InstructionError(
                        f"execution fell into the middle of "
                        f"a multi-word instruction at {p}")
                steps, block_cost, block_instr, block_infer, fused = entry
                self.cycles += block_cost
                stats.instructions += block_instr
                stats.inferences += block_infer
                if fused is not None:
                    # Superinstruction: the whole run executes inside
                    # one generated closure (repro.core.superops) that
                    # maintains P, the recent-PC ring, code-fetch
                    # timing and the deviation uncharges itself.
                    fused()
                    if self.cycles > max_cycles:
                        raise self._cycle_limit_error(max_cycles)
                    continue
                i = 0
                n = len(steps)
                idx = self._recent_index
                try:
                    while True:
                        step = steps[i]
                        handler, _, _, next_p, instr = step
                        recent[idx & _RECENT_MASK] = p
                        idx += 1
                        if timing:
                            if line_tags[p & index_mask] \
                                    == p >> tag_shift:
                                hits += 1
                            else:
                                try:
                                    self.cycles += code_fetch(p)
                                except MachineError:
                                    # Seed ordering: a code-fetch trap
                                    # happens before the instruction is
                                    # charged or counted, so take back
                                    # this step's share too (the outer
                                    # handler takes back the suffix).
                                    self.cycles -= step[1]
                                    stats.instructions -= 1
                                    stats.inferences -= step[2]
                                    raise
                        self.p = next_p
                        handler(instr)
                        i += 1
                        if i == n:
                            break
                        if self.p != next_p or not self.running:
                            # Early transfer out of the block: the
                            # suffix sums are the table entry at the
                            # fall-through address.
                            _, cost, n_instr, n_infer, _ = entries[next_p]
                            self.cycles -= cost
                            stats.instructions -= n_instr
                            stats.inferences -= n_infer
                            break
                        p = next_p
                except MachineError:
                    # The faulting step at index ``i`` was charged and
                    # counted before dispatch, exactly as in the seed
                    # loop; uncharge only the unexecuted suffix.
                    self._recent_index = idx  # error reads the ring
                    if i + 1 < n:
                        _, cost, n_instr, n_infer, _ = entries[next_p]
                        self.cycles -= cost
                        stats.instructions -= n_instr
                        stats.inferences -= n_infer
                    raise
                self._recent_index = idx
                if self.cycles > max_cycles:
                    raise self._cycle_limit_error(max_cycles)
        finally:
            if hits:
                cache_stats.reads += hits
                cache_stats.read_hits += hits

    def _loop_fast(self) -> None:
        """The seed hot loop: any trap aborts the run."""
        dispatch = self._dispatch
        code = self.code
        costs = self.costs
        memory = self.memory
        stats = self.stats
        max_cycles = self.max_cycles
        recent = self._recent_pcs
        while self.running:
            p = self.p
            instr = code[p]
            if instr is None:
                raise InstructionError(f"execution fell into the middle of "
                                       f"a multi-word instruction at {p}")
            op = instr.op
            recent[self._recent_index & _RECENT_MASK] = p
            self._recent_index += 1
            self.p = p + instr.size
            self.cycles += costs.instruction_cost(op) \
                + memory.code_fetch(p)
            stats.instructions += 1
            if instr.infer:
                stats.inferences += 1
            if self.tracer is not None:
                self.tracer.on_instruction(self, p, instr)
            dispatch[op](instr)
            if self.cycles > max_cycles:
                raise self._cycle_limit_error(max_cycles)

    def _loop_recovering(self) -> None:
        """The trap-vector loop: traps at instruction boundaries are
        delivered to registered handlers, and the faulting instruction
        is restarted after a successful recovery.

        Identical simulated-cycle accounting to :meth:`_loop_fast` on
        the fault-free path; the extra per-instruction work (a register
        snapshot for precise restart) is host-side only.  When
        ``fast_path`` is on, dispatch and static costs come from the
        predecoded step table — the per-instruction snapshot, injector
        and tracer hooks are kept, so only host work changes.

        Trapped instructions are re-executed after recovery: the retry
        runs with ``replay=True`` on the tracer hook so monitors can
        collapse the aborted attempt and its replay into one event.
        """
        dispatch = self._dispatch
        code = self.code
        costs = self.costs
        memory = self.memory
        stats = self.stats
        recent = self._recent_pcs
        injector = self.injector
        singles = self._ensure_predecoded().singles if self.fast_path \
            else None
        undo: list = []
        replay = False
        while self.running:
            p = self.p
            if singles is not None:
                step = singles[p]
                if step is None:
                    raise InstructionError(
                        f"execution fell into the middle of "
                        f"a multi-word instruction at {p}")
                handler, cost, infer, next_p, instr = step
            else:
                instr = code[p]
                if instr is None:
                    raise InstructionError(
                        f"execution fell into the middle of "
                        f"a multi-word instruction at {p}")
                op = instr.op
                handler = dispatch[op]
                cost = costs.instruction_cost(op)
                infer = 1 if instr.infer else 0
                next_p = p + instr.size
            snapshot = self._replay_snapshot(p)
            del undo[:]
            self._undo_log = undo
            try:
                if injector is not None:
                    injector.before_instruction(self)
                recent[self._recent_index & _RECENT_MASK] = p
                self._recent_index += 1
                self.p = next_p
                self.cycles += cost + memory.code_fetch(p)
                stats.instructions += 1
                if infer:
                    stats.inferences += 1
                if self.tracer is not None:
                    self.tracer.on_instruction(self, p, instr,
                                               replay=replay)
                handler(instr)
            except MachineTrap as trap:
                if not self._service_trap(trap, p, snapshot):
                    raise
                replay = True
                continue
            replay = False
            if self.cycles > self.max_cycles:
                raise self._cycle_limit_error(self.max_cycles)

    # ------------------------------------------------------------------
    # trap delivery and recovery
    # ------------------------------------------------------------------

    def _replay_snapshot(self, p: int) -> tuple:
        """The pre-instruction register state needed to restart the
        instruction at ``p`` precisely after a trap.

        ``stats.instructions`` / ``stats.inferences`` are part of the
        snapshot: the loop counts an instruction *before* dispatching
        it, so an aborted attempt must be un-counted on replay or every
        trapped instruction inflates the LIPS-bearing counters by one.
        ``cycles`` is snapshotted (last element, read by
        :meth:`_service_trap`) but deliberately **not** restored: the
        wasted attempt took real machine time, which stays on the clock
        and is attributed to ``stats.recovery_cycles`` — so fault-free
        and faulted runs of the same program agree on *functional*
        counters (instructions, inferences, solutions) while cycles
        honestly include the recovery overhead."""
        shadow = self.shadow
        stats = self.stats
        return (p, self.cp, self.e, self.b, self.b0, self.h, self.hb,
                self.s, self.lb, self.mode_write, self.shallow_flag,
                self.cp_flag, shadow.alt, shadow.h, shadow.tr,
                self.trail.top, self.trail.pushes,
                len(self.solutions), len(self.output),
                list(self.regs.cells),
                stats.instructions, stats.inferences, self.cycles)

    def _restore_replay(self, snapshot: tuple) -> None:
        """Rewind to the snapshot: every memory write of the partially
        executed instruction undone exactly (the write-undo log covers
        *untrailed* young bindings the trail cannot rewind — without
        it, a replayed GET_STRUCTURE would deref its own half-finished
        binding and take READ mode over a half-built structure),
        registers back, partial answers dropped, instruction/inference
        counters rewound (cycles intentionally kept — see
        :meth:`_replay_snapshot`)."""
        (p, cp, e, b, b0, h, hb, s, lb, mode_write, shallow_flag,
         cp_flag, sh_alt, sh_h, sh_tr, tr_top, tr_pushes, n_solutions,
         n_output, regs, n_instructions, n_inferences,
         _cycles_at_entry) = snapshot
        undo = self._undo_log
        if undo is not None:
            # Disarm before replaying so the trap handler's own writes
            # (GC compaction, limit moves) are never treated as part of
            # the faulted instruction; the loop re-arms per iteration.
            self._undo_log = None
            store = self.memory.store
            for address, old in reversed(undo):
                store.poke(address, old)
        self.trail.top = tr_top
        self.trail.pushes = tr_pushes
        self.p = p
        self.cp = cp
        self.e = e
        self.b = b
        self.b0 = b0
        self.h = h
        self.hb = hb
        self.s = s
        self.lb = lb
        self.mode_write = mode_write
        self.shallow_flag = shallow_flag
        self.cp_flag = cp_flag
        self.shadow.set(sh_alt, sh_h, sh_tr)
        del self.solutions[n_solutions:]
        del self.output[n_output:]
        self.regs.cells[:] = regs
        self.stats.instructions = n_instructions
        self.stats.inferences = n_inferences

    def _service_trap(self, trap: MachineTrap, p: int,
                      snapshot: tuple) -> bool:
        """Deliver one trap: rewind, report, dispatch to handlers.

        Returns True when a handler recovered the fault (the loop then
        restarts the instruction at ``p``); False aborts the run with
        the original trap, now carrying its TrapReport.
        """
        stats = self.stats
        report = self._build_report(trap, p)
        trap.report = report
        self.trap_log.append(report)
        stats.traps_raised += 1
        stats.count_trap(report.kind)

        # Livelock guard: the same trap kind at the same PC recovering
        # over and over means the handler is not actually fixing it.
        if p == self._retry_pc and report.kind == self._retry_kind:
            self._retry_count += 1
        else:
            self._retry_pc = p
            self._retry_kind = report.kind
            self._retry_count = 1
        report.retry = self._retry_count
        if self._retry_count > MAX_TRAP_RETRIES:
            return False

        vector = self.trap_vector
        if not vector.armed:
            return False

        # The handler runs in system mode: zone checking is suspended
        # (handlers legitimately touch memory the squeezed/overflowed
        # zone would reject) and everything it costs — the faulted
        # instruction's wasted partial attempt (re-paid on replay), the
        # rewind, its own memory traffic, explicit cycle charges — is
        # recovery overhead.  The window opens at the instruction's
        # start, which the snapshot recorded.
        cycles_before = snapshot[-1]
        zones = self.memory.zones
        zones_enabled = zones.enabled
        zones.enabled = False
        try:
            self._restore_replay(snapshot)
            recovered = vector.dispatch(self, trap, report)
        finally:
            zones.enabled = zones_enabled
        self.cycles += vector.service_cycles
        stats.recovery_cycles += self.cycles - cycles_before
        if recovered:
            report.recovered = True
            stats.traps_recovered += 1
        return recovered

    def _build_report(self, trap: MachineTrap, p: int) -> TrapReport:
        """Snapshot the machine state at a trap into a TrapReport."""
        address = getattr(trap, "address", None)
        zone = getattr(trap, "zone", None)
        vpage = getattr(trap, "virtual_page", None)
        return TrapReport(
            kind=type(trap).__name__,
            message=str(trap),
            pc=p,
            cycles=self.cycles,
            instructions=self.stats.instructions,
            faulting_address=address,
            zone=zone,
            virtual_page=vpage,
            registers={
                "p": p, "cp": self.cp, "e": self.e, "b": self.b,
                "b0": self.b0, "h": self.h, "hb": self.hb,
                "s": self.s, "lb": self.lb, "tr": self.trail.top,
            },
            injected=getattr(trap, "injected", False),
        )

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, label: str = "",
                   since: Optional[MachineCheckpoint] = None) \
            -> MachineCheckpoint:
        """Snapshot all dynamic state (registers, stacks, trail, zone
        limits, dirty store pages, statistics, answers, timing state)
        so the run can be rolled back after a fatal trap or watchdog
        stop, or resumed in another process.  Pass the previous
        checkpoint as ``since`` (with the store's ``track_dirty`` flag
        armed) for incremental capture."""
        return MachineCheckpoint.capture(self, label=label, since=since)

    def restore(self, checkpoint: MachineCheckpoint) -> None:
        """Roll the machine back to ``checkpoint``; :meth:`resume`
        continues execution from the captured program counter."""
        checkpoint.restore(self)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def recent_addresses(self) -> List[int]:
        """The last executed code addresses, oldest first (the run
        loop's ring buffer; at most RECENT_RING entries)."""
        count = min(self._recent_index, RECENT_RING)
        if not count:
            return []
        ring = self._recent_pcs
        start = self._recent_index - count
        return [ring[(start + i) & _RECENT_MASK] for i in range(count)]

    def _describe_entry(self, entry: int) -> str:
        """``name/arity`` of the predicate linked at ``entry``."""
        for (name, arity), address in self.predicates.items():
            if address == entry:
                return f"{name}/{arity}"
        return f"@{entry}"

    def _cycle_limit_error(self, max_cycles: int) -> CycleLimitExceeded:
        """Build the watchdog error with enough context to locate the
        runaway loop without re-running under a tracer."""
        recent = self.recent_addresses()
        entry = self._entry_name or "?"
        tail = ", ".join(str(a) for a in recent)
        return CycleLimitExceeded(
            f"exceeded {max_cycles} cycles at P={self.p} running {entry} "
            f"(last {len(recent)} addresses: {tail})",
            entry=entry, recent_addresses=recent)

    def _bootstrap_stub(self, entry: int) -> int:
        """Build (or reuse) the bootstrap call/halt stub for ``entry``
        at the end of code space; returns its address."""
        cached = self._stubs.get(entry)
        if cached is not None:
            return cached
        stub = len(self.code)
        self.code.append(Instruction(Op.CALL, entry, 0, None))
        self.code.append(Instruction(Op.HALT))
        self._stubs[entry] = stub
        self.invalidate_predecode()
        return stub

    # ------------------------------------------------------------------
    # dispatch table
    # ------------------------------------------------------------------

    def _build_dispatch(self) -> Dict[Op, Callable[[Instruction], None]]:
        return {
            Op.CALL: self._op_call,
            Op.EXECUTE: self._op_execute,
            Op.PROCEED: self._op_proceed,
            Op.ALLOCATE: self._op_allocate,
            Op.DEALLOCATE: self._op_deallocate,
            Op.HALT: self._op_halt,
            Op.JUMP: self._op_jump,
            Op.FAIL: lambda instr: self.fail(),
            Op.TRY_ME_ELSE: self._op_try_me_else,
            Op.RETRY_ME_ELSE: self._op_retry_me_else,
            Op.TRUST_ME: self._op_trust_me,
            Op.TRY: self._op_try,
            Op.RETRY: self._op_retry,
            Op.TRUST: self._op_trust,
            Op.NECK: self._op_neck,
            Op.NECK_CUT: self._op_neck_cut,
            Op.GET_LEVEL: self._op_get_level,
            Op.CUT: self._op_cut,
            Op.CUT_Y: self._op_cut_y,
            Op.SWITCH_ON_TERM: self._op_switch_on_term,
            Op.SWITCH_ON_CONSTANT: self._op_switch_on_constant,
            Op.SWITCH_ON_STRUCTURE: self._op_switch_on_structure,
            Op.GET_X_VARIABLE: self._op_get_x_variable,
            Op.GET_Y_VARIABLE: self._op_get_y_variable,
            Op.GET_X_VALUE: self._op_get_x_value,
            Op.GET_Y_VALUE: self._op_get_y_value,
            Op.GET_CONSTANT: self._op_get_constant,
            Op.GET_NIL: self._op_get_nil,
            Op.GET_LIST: self._op_get_list,
            Op.GET_STRUCTURE: self._op_get_structure,
            Op.PUT_X_VARIABLE: self._op_put_x_variable,
            Op.PUT_Y_VARIABLE: self._op_put_y_variable,
            Op.PUT_X_VALUE: self._op_put_x_value,
            Op.PUT_Y_VALUE: self._op_put_y_value,
            Op.PUT_UNSAFE_VALUE: self._op_put_unsafe_value,
            Op.PUT_CONSTANT: self._op_put_constant,
            Op.PUT_NIL: self._op_put_nil,
            Op.PUT_LIST: self._op_put_list,
            Op.PUT_STRUCTURE: self._op_put_structure,
            Op.UNIFY_X_VARIABLE: self._op_unify_x_variable,
            Op.UNIFY_Y_VARIABLE: self._op_unify_y_variable,
            Op.UNIFY_X_VALUE: self._op_unify_x_value,
            Op.UNIFY_Y_VALUE: self._op_unify_y_value,
            Op.UNIFY_X_LOCAL_VALUE: self._op_unify_x_local_value,
            Op.UNIFY_Y_LOCAL_VALUE: self._op_unify_y_local_value,
            Op.UNIFY_CONSTANT: self._op_unify_constant,
            Op.UNIFY_NIL: self._op_unify_nil,
            Op.UNIFY_VOID: self._op_unify_void,
            Op.MOVE2: self._op_move2,
            Op.ARITH: self._op_arith,
            Op.TEST: self._op_test,
            Op.GEN_UNIFY: self._op_gen_unify,
            Op.ESCAPE: self._op_escape,
        }

    # ------------------------------------------------------------------
    # control instructions
    # ------------------------------------------------------------------

    def _op_call(self, instr: Instruction) -> None:
        self.cp = self.p
        self.b0 = self.b
        self.p = instr.a

    def _op_execute(self, instr: Instruction) -> None:
        self.b0 = self.b
        self.p = instr.a

    def _op_proceed(self, instr: Instruction) -> None:
        self.p = self.cp

    def _op_allocate(self, instr: Instruction) -> None:
        new_e = self.local_top()
        self._write(new_e + ENV_CE, make_data_ptr(self.e, Zone.LOCAL),
                    Zone.LOCAL)
        self._write(new_e + ENV_CP, make_code_ptr(self.cp), Zone.LOCAL)
        self.e = new_e

    def _op_deallocate(self, instr: Instruction) -> None:
        self.cp = int(self._read(self.e + ENV_CP, Zone.LOCAL).value)
        self.e = int(self._read(self.e + ENV_CE, Zone.LOCAL).value)

    def _op_halt(self, instr: Instruction) -> None:
        self.running = False
        self.halted = True

    def _op_jump(self, instr: Instruction) -> None:
        self.p = instr.a

    # -- clause selection -------------------------------------------------------

    def _enter_with_alternatives(self, alt: int, arity: int) -> None:
        """Common body of try_me_else / try."""
        if self.features.shallow_backtracking:
            self.shallow_flag = True
            self.cp_flag = False
            self.shadow.set(alt, self.h, self.trail.top)
            self.regs.save_shadow(make_code_ptr(alt),
                                  make_data_ptr(self.h, Zone.GLOBAL),
                                  make_data_ptr(self.trail.top, Zone.TRAIL))
            self.hb = self.h
            self.lb = self.local_top()
        else:
            self._create_choice_point(alt, arity, self.h, self.trail.top,
                                      self.local_top())

    def _op_try_me_else(self, instr: Instruction) -> None:
        self._enter_with_alternatives(instr.a, instr.b)

    def _op_retry_me_else(self, instr: Instruction) -> None:
        if not self.features.shallow_backtracking:
            self._write(self.b + CP_ALT, make_code_ptr(instr.a),
                        Zone.CONTROL)
            return
        if self.cp_flag:
            self._write(self.b + CP_ALT, make_code_ptr(instr.a),
                        Zone.CONTROL)
        else:
            self.shadow.alt = instr.a
            self.regs.save_shadow(
                make_code_ptr(instr.a),
                make_data_ptr(self.shadow.h, Zone.GLOBAL),
                make_data_ptr(self.shadow.tr, Zone.TRAIL))
        self.shallow_flag = True

    def _op_trust_me(self, instr: Instruction) -> None:
        if not self.features.shallow_backtracking:
            self._pop_choice_point()
            return
        if self.cp_flag:
            self._pop_choice_point()
        else:
            # The shadow is simply discarded; no choice point was ever
            # materialised for this call.
            self._refresh_barriers()
        self.shallow_flag = False

    def _op_try(self, instr: Instruction) -> None:
        self._enter_with_alternatives(self.p, instr.b)
        self.p = instr.a

    def _op_retry(self, instr: Instruction) -> None:
        alt = self.p
        if not self.features.shallow_backtracking:
            self._write(self.b + CP_ALT, make_code_ptr(alt), Zone.CONTROL)
        elif self.cp_flag:
            self._write(self.b + CP_ALT, make_code_ptr(alt), Zone.CONTROL)
            self.shallow_flag = True
        else:
            self.shadow.alt = alt
            self.regs.save_shadow(
                make_code_ptr(alt),
                make_data_ptr(self.shadow.h, Zone.GLOBAL),
                make_data_ptr(self.shadow.tr, Zone.TRAIL))
            self.shallow_flag = True
        self.p = instr.a

    def _op_trust(self, instr: Instruction) -> None:
        self._op_trust_me(instr)
        self.p = instr.a

    def _op_neck(self, instr: Instruction) -> None:
        if not self.features.shallow_backtracking:
            return
        if self.shallow_flag and not self.cp_flag:
            self._create_choice_point(self.shadow.alt, instr.a,
                                      self.shadow.h, self.shadow.tr,
                                      self.lb)
            self.cp_flag = True
        self.shallow_flag = False

    def _op_neck_cut(self, instr: Instruction) -> None:
        if (self.features.shallow_backtracking and self.shallow_flag
                and not self.cp_flag):
            # The shadow evaporates: the paper's headline case — the
            # head and guard selected a unique clause, no choice point
            # was ever created, and the cut costs one cycle.
            self.stats.choice_points_avoided += 1
            self.shallow_flag = False
            self._refresh_barriers()
            return
        self.shallow_flag = False
        if self.b != self.b0:
            self.b = self.b0
            self._refresh_barriers()

    def _op_get_level(self, instr: Instruction) -> None:
        self._write(self.e + ENV_Y0 + instr.a,
                    make_data_ptr(self.b0, Zone.CONTROL), Zone.LOCAL)

    def _op_cut(self, instr: Instruction) -> None:
        if self.b != self.b0:
            self.b = self.b0
            self._refresh_barriers()

    def _op_cut_y(self, instr: Instruction) -> None:
        level = int(self._read(self.e + ENV_Y0 + instr.a,
                               Zone.LOCAL).value)
        if self.b != level:
            self.b = level
            self._refresh_barriers()

    # -- switches ------------------------------------------------------------------

    def _op_switch_on_term(self, instr: Instruction) -> None:
        if not self.features.mwac:
            self.cycles += self.features.mwac_off_switch_penalty
        word = self.deref(self.regs.x(0))
        self.regs.set_x(0, word)
        t = word.type
        if t is Type.REF:
            target = instr.a
        elif t is Type.LIST:
            target = instr.c
        elif t is Type.STRUCT:
            target = instr.d
        else:
            target = instr.b
        if target is None:
            self.fail()
        else:
            self.p = target

    def _op_switch_on_constant(self, instr: Instruction) -> None:
        if not self.features.mwac:
            self.cycles += self.features.mwac_off_switch_penalty
        word = self.deref(self.regs.x(0))
        target = instr.a.get((word.tag, word.value), instr.b)
        if target is None:
            self.fail()
        else:
            self.p = target

    def _op_switch_on_structure(self, instr: Instruction) -> None:
        if not self.features.mwac:
            self.cycles += self.features.mwac_off_switch_penalty
        word = self.deref(self.regs.x(0))
        functor = self._read(word.value, word.zone)
        target = instr.a.get(int(functor.value), instr.b)
        if target is None:
            self.fail()
        else:
            self.p = target

    # ------------------------------------------------------------------
    # get instructions (head unification)
    # ------------------------------------------------------------------

    def _unify_penalty(self) -> None:
        if not self.features.mwac:
            self.cycles += self.features.mwac_off_unify_penalty

    def _op_get_x_variable(self, instr: Instruction) -> None:
        self.regs.set_x(instr.a, self.regs.x(instr.b))

    def _op_get_y_variable(self, instr: Instruction) -> None:
        self._write(self.e + ENV_Y0 + instr.a, self.regs.x(instr.b),
                    Zone.LOCAL)

    def _op_get_x_value(self, instr: Instruction) -> None:
        self._unify_penalty()
        if not self.unify(self.regs.x(instr.a), self.regs.x(instr.b)):
            self.fail()

    def _op_get_y_value(self, instr: Instruction) -> None:
        self._unify_penalty()
        y = self._read(self.e + ENV_Y0 + instr.a, Zone.LOCAL)
        if not self.unify(y, self.regs.x(instr.b)):
            self.fail()

    def _op_get_constant(self, instr: Instruction) -> None:
        self._unify_penalty()
        word = self.deref(self.regs.x(instr.b))
        if not self._bind_or_compare(word, instr.a):
            self.fail()

    def _op_get_nil(self, instr: Instruction) -> None:
        self._unify_penalty()
        word = self.deref(self.regs.x(instr.a))
        if word.type is Type.NIL:
            return
        if word.type is Type.REF:
            self.bind(word.value, word.zone, self.symbols.atom_word("[]"))
            return
        self.fail()

    def _op_get_list(self, instr: Instruction) -> None:
        self._unify_penalty()
        word = self.deref(self.regs.x(instr.a))
        if word.type is Type.LIST:
            self.s = word.value
            self.mode_write = False
        elif word.type is Type.REF:
            self.bind(word.value, word.zone, make_list(self.h))
            self.mode_write = True
        else:
            self.fail()

    def _op_get_structure(self, instr: Instruction) -> None:
        self._unify_penalty()
        word = self.deref(self.regs.x(instr.b))
        if word.type is Type.STRUCT:
            functor = self._read(word.value, word.zone)
            if int(functor.value) != instr.a:
                self.fail()
                return
            self.s = word.value + 1
            self.mode_write = False
        elif word.type is Type.REF:
            self.bind(word.value, word.zone, make_struct(self.h))
            self.heap_push(make_functor(instr.a))
            self.mode_write = True
        else:
            self.fail()

    # ------------------------------------------------------------------
    # put instructions (argument loading)
    # ------------------------------------------------------------------

    def _op_put_x_variable(self, instr: Instruction) -> None:
        var = self.new_heap_var()
        self.regs.set_x(instr.a, var)
        self.regs.set_x(instr.b, var)

    def _op_put_y_variable(self, instr: Instruction) -> None:
        address = self.e + ENV_Y0 + instr.a
        var = make_unbound(address, Zone.LOCAL)
        self._write(address, var, Zone.LOCAL)
        self.regs.set_x(instr.b, var)

    def _op_put_x_value(self, instr: Instruction) -> None:
        self.regs.set_x(instr.b, self.regs.x(instr.a))

    def _op_put_y_value(self, instr: Instruction) -> None:
        self.regs.set_x(instr.b,
                        self._read(self.e + ENV_Y0 + instr.a, Zone.LOCAL))

    def _op_put_unsafe_value(self, instr: Instruction) -> None:
        word = self.deref(self._read(self.e + ENV_Y0 + instr.a, Zone.LOCAL))
        if word.type is Type.REF and word.zone is Zone.LOCAL \
                and word.value >= self.e:
            # A variable of the environment being discarded: globalise.
            var = self.new_heap_var()
            self.bind(word.value, word.zone, var)
            word = var
        self.regs.set_x(instr.b, word)

    def _op_put_constant(self, instr: Instruction) -> None:
        self.regs.set_x(instr.b, instr.a)

    def _op_put_nil(self, instr: Instruction) -> None:
        self.regs.set_x(instr.a, self.symbols.atom_word("[]"))

    def _op_put_list(self, instr: Instruction) -> None:
        self.regs.set_x(instr.a, make_list(self.h))
        self.mode_write = True

    def _op_put_structure(self, instr: Instruction) -> None:
        address = self.heap_push(make_functor(instr.a))
        self.regs.set_x(instr.b, make_struct(address))
        self.mode_write = True

    # ------------------------------------------------------------------
    # unify instructions (structure arguments)
    # ------------------------------------------------------------------

    def _op_unify_x_variable(self, instr: Instruction) -> None:
        if self.mode_write:
            self.regs.set_x(instr.a, self.new_heap_var())
        else:
            self.regs.set_x(instr.a, self._read(self.s, Zone.GLOBAL))
            self.s += 1

    def _op_unify_y_variable(self, instr: Instruction) -> None:
        if self.mode_write:
            var = self.new_heap_var()
        else:
            var = self._read(self.s, Zone.GLOBAL)
            self.s += 1
        self._write(self.e + ENV_Y0 + instr.a, var, Zone.LOCAL)

    def _op_unify_x_value(self, instr: Instruction) -> None:
        self._unify_penalty()
        if self.mode_write:
            self.heap_push(self.regs.x(instr.a))
        else:
            if not self.unify(self.regs.x(instr.a),
                              self._read(self.s, Zone.GLOBAL)):
                self.fail()
                return
            self.s += 1

    def _op_unify_y_value(self, instr: Instruction) -> None:
        self._unify_penalty()
        y = self._read(self.e + ENV_Y0 + instr.a, Zone.LOCAL)
        if self.mode_write:
            self.heap_push(y)
        else:
            if not self.unify(y, self._read(self.s, Zone.GLOBAL)):
                self.fail()
                return
            self.s += 1

    def _push_local_value(self, word: Word) -> Word:
        """Write-mode unify_local_value: append ``word`` to the open
        structure, globalising unbound local variables.

        The fresh heap cell doubles as the structure's argument slot
        (the classic WAM trick): pushing a separate cell would corrupt
        the argument layout.
        """
        word = self.deref(word)
        if word.type is Type.REF and word.zone is Zone.LOCAL:
            var = self.new_heap_var()       # lands in the arg slot
            self.bind(word.value, word.zone, var)
            return var
        self.heap_push(word)
        return word

    def _op_unify_x_local_value(self, instr: Instruction) -> None:
        self._unify_penalty()
        if self.mode_write:
            word = self._push_local_value(self.regs.x(instr.a))
            self.regs.set_x(instr.a, word)
        else:
            self._op_unify_x_value(instr)

    def _op_unify_y_local_value(self, instr: Instruction) -> None:
        self._unify_penalty()
        if self.mode_write:
            y = self._read(self.e + ENV_Y0 + instr.a, Zone.LOCAL)
            self._push_local_value(y)
        else:
            self._op_unify_y_value(instr)

    def _op_unify_constant(self, instr: Instruction) -> None:
        self._unify_penalty()
        if self.mode_write:
            self.heap_push(instr.a)
        else:
            word = self.deref(self._read(self.s, Zone.GLOBAL))
            self.s += 1
            if not self._bind_or_compare(word, instr.a):
                self.fail()

    def _op_unify_nil(self, instr: Instruction) -> None:
        if self.mode_write:
            self.heap_push(self.symbols.atom_word("[]"))
        else:
            word = self.deref(self._read(self.s, Zone.GLOBAL))
            self.s += 1
            if not self._bind_or_compare(word, self.symbols.atom_word("[]")):
                self.fail()

    def _op_unify_void(self, instr: Instruction) -> None:
        count = instr.a
        if self.mode_write:
            for _ in range(count):
                self.new_heap_var()
        else:
            self.s += count
        self.cycles += max(0, count - 1)

    # ------------------------------------------------------------------
    # data movement and arithmetic
    # ------------------------------------------------------------------

    def _op_move2(self, instr: Instruction) -> None:
        first = self.regs.x(instr.a)
        second = self.regs.x(instr.c) if instr.c is not None else None
        self.regs.set_x(instr.b, first)
        if second is not None:
            self.regs.set_x(instr.d, second)

    def _numeric_operand(self, index: int) -> Word:
        word = self.deref(self.regs.x(index))
        if word.type is Type.INT or word.type is Type.FLOAT:
            return word
        if word.type is Type.REF:
            raise ArithmeticError_("unbound variable in arithmetic")
        raise ArithmeticError_(
            f"non-numeric operand in arithmetic: "
            f"{self.symbols.describe_constant(word)}")

    def _op_arith(self, instr: Instruction) -> None:
        op: ArithOp = instr.a
        left = self._numeric_operand(instr.b)
        right = self._numeric_operand(instr.c) if instr.c is not None \
            else left
        is_float = (left.type is Type.FLOAT or right.type is Type.FLOAT)
        table = self.costs.arith_float if is_float else self.costs.arith_int
        # The base instruction cost already covered one cycle.
        self.cycles += table[op] - 1 + self.costs.arith_dispatch
        lv, rv = left.value, right.value
        try:
            if op is ArithOp.ADD:
                result = lv + rv
            elif op is ArithOp.SUB:
                result = lv - rv
            elif op is ArithOp.MUL:
                result = lv * rv
            elif op is ArithOp.DIV:
                # Warren-era '/' semantics: truncating integer division
                # on two integers, float division otherwise.
                result = (lv / rv) if is_float else int(lv / rv)
            elif op is ArithOp.IDIV:
                result = lv // rv if not is_float else int(lv // rv)
            elif op is ArithOp.MOD:
                result = lv % rv
            elif op is ArithOp.NEG:
                result = -lv
            elif op is ArithOp.ABS:
                result = abs(lv)
            elif op is ArithOp.MIN:
                result = min(lv, rv)
            elif op is ArithOp.MAX:
                result = max(lv, rv)
            elif op is ArithOp.AND:
                result = int(lv) & int(rv)
            elif op is ArithOp.OR:
                result = int(lv) | int(rv)
            elif op is ArithOp.XOR:
                result = int(lv) ^ int(rv)
            elif op is ArithOp.SHL:
                result = int(lv) << int(rv)
            elif op is ArithOp.SHR:
                result = int(lv) >> int(rv)
            else:
                raise InstructionError(f"unknown arithmetic op {op}")
        except ZeroDivisionError:
            raise ArithmeticError_("division by zero")
        if is_float:
            self.regs.set_x(instr.d, make_float(to_single_precision(
                float(result))))
        else:
            self.regs.set_x(instr.d, make_int(wrap_int32(int(result))))

    def _op_test(self, instr: Instruction) -> None:
        op: TestOp = instr.a
        left = self._numeric_operand(instr.b)
        right = self._numeric_operand(instr.c)
        self.cycles += self.costs.test_dispatch
        lv, rv = left.value, right.value
        if op is TestOp.LT:
            ok = lv < rv
        elif op is TestOp.GT:
            ok = lv > rv
        elif op is TestOp.LE:
            ok = lv <= rv
        elif op is TestOp.GE:
            ok = lv >= rv
        elif op is TestOp.EQ:
            ok = lv == rv
        else:
            ok = lv != rv
        if ok:
            return
        # A failed guard test is the shallow-backtracking sweet spot.
        self.cycles += self.costs.branch_taken_extra
        self.fail()

    def _op_gen_unify(self, instr: Instruction) -> None:
        if not self.unify(self.regs.x(instr.a), self.regs.x(instr.b)):
            self.fail()

    # ------------------------------------------------------------------
    # escapes (built-in predicates)
    # ------------------------------------------------------------------

    def _op_escape(self, instr: Instruction) -> None:
        handler = self.builtins.get(instr.a)
        if handler is None:
            name = self.symbols.functor_name(instr.c) if instr.c is not None \
                else f"builtin#{instr.a}"
            raise ExistenceError(f"undefined built-in {name}")
        self.cycles += instr.b * self.costs.escape_per_arg
        if not handler(self, instr.b):
            self.fail()

    # ------------------------------------------------------------------
    # conveniences for tests and tools
    # ------------------------------------------------------------------

    def x_deref(self, index: int) -> Word:
        """Dereferenced view of an X register (test helper)."""
        return self.deref(self.regs.x(index))

    def predicate_address(self, name: str, arity: int) -> int:
        """Entry address of a linked predicate."""
        try:
            return self.predicates[(name, arity)]
        except KeyError:
            raise ExistenceError(f"unknown predicate {name}/{arity}")
