"""KCM processor core: tagged words, instruction set, machine model.

See paper section 3.  :class:`Machine` is the execution engine;
:mod:`repro.core.costs` holds the calibrated cycle model and the
feature switches used for baselines and ablations.
"""

from repro.core.costs import (
    CostModel, Features, KCM_CYCLE_SECONDS, kcm_cost_model, kcm_features,
)
from repro.core.instruction import Instruction, disassemble_range
from repro.core.machine import Machine
from repro.core.opcodes import ArithOp, Op, TestOp
from repro.core.registers import RegisterFile
from repro.core.statistics import RunStats
from repro.core.symbols import SymbolTable
from repro.core.tags import Type, Zone
from repro.core.traps import MachineCheckpoint, TrapReport, TrapVector
from repro.core.word import Word

__all__ = [
    "CostModel", "Features", "KCM_CYCLE_SECONDS", "kcm_cost_model",
    "kcm_features", "Instruction", "disassemble_range", "Machine",
    "ArithOp", "Op", "TestOp", "RegisterFile", "RunStats", "SymbolTable",
    "Type", "Zone", "Word",
    "MachineCheckpoint", "TrapReport", "TrapVector",
]
