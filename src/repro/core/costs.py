"""The cycle cost model.

KCM executes "most data manipulation instructions ... in one cycle"
(section 3.1.1) at an 80 ns cycle time (section 3).  The paper pins
down several other costs explicitly, which this table encodes:

- immediate jumps and calls take 2 cycles (prefetch pipeline break,
  section 3.1.3);
- conditional branches: 1 cycle not taken, 4 cycles taken;
- a minimal call/return sequence is 5 cycles ("two prefetch pipeline
  breaks", section 4.2) — call 2 + proceed 3 here;
- dereferencing follows reference chains at 1 reference per cycle
  (section 3.1.4);
- choice-point save/restore moves 1 register per cycle through the RAC
  (section 3.1.5);
- the trail's three address comparisons run in parallel with
  dereferencing, so conditional trailing costs only the push itself;
- fast indirect calls via memory take 4 cycles (section 4.2);
- one list-concatenation step is 15 cycles (section 4.3) — the unit
  test ``test_calibration.py::test_con1_step_cycles`` pins this model
  to that figure;
- floating multiplication/division is *faster* than integer
  multiplication/division (section 4.2), hence the FPU costs below.

Baseline machines (PLM, Quintus) reuse the same functional simulator
with different :class:`CostModel` parameters and feature switches; see
:mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.core.opcodes import ArithOp, Op

#: KCM cycle time in seconds (80 ns, section 3).
KCM_CYCLE_SECONDS = 80e-9


def _default_base_costs() -> Dict[Op, int]:
    costs = {op: 1 for op in Op}
    costs.update({
        Op.CALL: 2,            # immediate call: 2-cycle pipeline break
        Op.EXECUTE: 2,
        Op.JUMP: 2,
        Op.PROCEED: 3,         # return via register: call+proceed = 5
        Op.ALLOCATE: 2,        # push CE and CP frame header
        Op.DEALLOCATE: 2,
        Op.TRY_ME_ELSE: 2,     # save 3 shadow registers (2 moves/cycle)
        Op.RETRY_ME_ELSE: 2,
        Op.TRUST_ME: 1,
        Op.TRY: 3,             # shadow save + jump to the clause
        Op.RETRY: 3,
        Op.TRUST: 2,
        Op.NECK: 0,            # flag folded into decode (section 3.1.5);
                               #   CP creation cost added dynamically
        Op.NECK_CUT: 1,
        Op.CUT: 1,
        Op.CUT_Y: 2,
        Op.GET_LEVEL: 1,
        Op.SWITCH_ON_TERM: 2,  # MWAC 16-way dispatch
        Op.SWITCH_ON_CONSTANT: 3,
        Op.SWITCH_ON_STRUCTURE: 3,
        Op.GET_LIST: 2,        # type dispatch + bind-or-enter-read-mode
        Op.GET_STRUCTURE: 2,
        Op.GET_CONSTANT: 1,
        Op.ESCAPE: 3,          # escape-mechanism entry (cf. the PLM
                               #   suite's standard 3-cycle assumption)
        Op.GEN_UNIFY: 2,       # microcode entry; per-cell work dynamic
        Op.FAIL: 1,
        Op.HALT: 0,
    })
    return costs


@dataclass
class CostModel:
    """All timing parameters of one machine configuration."""

    #: Seconds per cycle (80 ns for KCM).
    cycle_seconds: float = KCM_CYCLE_SECONDS
    #: Per-opcode base cycles (hit-case memory access included).
    base: Dict[Op, int] = field(default_factory=_default_base_costs)
    #: Extra cycles per instruction, modelling interpretation overhead
    #: of software systems (0 on real hardware).
    dispatch_overhead: int = 0

    # Dynamic costs -----------------------------------------------------------
    deref_per_link: int = 1         # one reference per cycle (MWAC+cache)
    trail_push: int = 1             # push on the trail stack
    trail_check: int = 0            # parallel comparators: free; the
                                    #   ablation sets 2 (serial compares)
    bind: int = 1                   # store through the data cache
    heap_push: int = 1
    cp_create_base: int = 4         # frame header words via RAC loop
    cp_save_per_reg: int = 1        # 1 register/cycle (RAC)
    cp_restore_base: int = 4
    cp_restore_per_reg: int = 1
    fail_shallow: int = 3           # restore 3 shadow registers + branch
    fail_deep_branch: int = 3       # taken-branch part of a deep fail
    branch_taken_extra: int = 3     # conditional: 4 taken vs 1 not taken
    unify_per_cell: int = 2         # general unifier cost per visited cell
    indirect_call: int = 4          # "fast indirect calls via memory"
    escape_per_arg: int = 1
    write_builtin: int = 5          # write/1, nl/0 as unit clauses: one
                                    #   minimal call/return (section 4.2)
    trail_unwind_per_entry: int = 1

    # Arithmetic.  The TTL ALU has no hardware multiplier: integer
    # multiply/divide run as microcode shift-add/subtract loops over the
    # 32-bit value, which is exactly why section 4.2 can say "floating
    # arithmetic is significantly faster than integer arithmetic on
    # multiplications and divisions" — those go to the FPU.
    arith_int: Dict[ArithOp, int] = field(default_factory=lambda: {
        ArithOp.ADD: 1, ArithOp.SUB: 1, ArithOp.MUL: 30, ArithOp.DIV: 50,
        ArithOp.IDIV: 50, ArithOp.MOD: 50, ArithOp.NEG: 1, ArithOp.ABS: 1,
        ArithOp.MIN: 1, ArithOp.MAX: 1, ArithOp.AND: 1, ArithOp.OR: 1,
        ArithOp.XOR: 1, ArithOp.SHL: 1, ArithOp.SHR: 1,
    })
    arith_float: Dict[ArithOp, int] = field(default_factory=lambda: {
        ArithOp.ADD: 3, ArithOp.SUB: 3, ArithOp.MUL: 5, ArithOp.DIV: 9,
        ArithOp.IDIV: 9, ArithOp.MOD: 9, ArithOp.NEG: 1, ArithOp.ABS: 1,
        ArithOp.MIN: 3, ArithOp.MAX: 3, ArithOp.AND: 3, ArithOp.OR: 3,
        ArithOp.XOR: 3, ArithOp.SHL: 3, ArithOp.SHR: 3,
    })
    #: Extra cycles per ARITH operation when the type combination has to
    #: be resolved without the MWAC's multi-way branch (generic-
    #: arithmetic ablation and baseline machines); software systems also
    #: pay number boxing/unboxing here.
    arith_dispatch: int = 0
    #: Extra cycles per TEST (numeric comparison) for the same reason.
    test_dispatch: int = 0

    def instruction_cost(self, op: Op) -> int:
        """Base cycles for ``op`` including interpretation overhead."""
        return self.base[op] + self.dispatch_overhead

    def static_cost_table(self) -> Dict[Op, int]:
        """The full opcode -> :meth:`instruction_cost` map, precomputed.

        The predecoder (:mod:`repro.core.predecode`) bakes these into
        its step tuples so the hot loop never calls back into the cost
        model.  The table is a snapshot: mutating ``base`` or
        ``dispatch_overhead`` afterwards requires re-predecoding (the
        machine rebuilds its table per :meth:`Machine.run` entry only
        when the code zone changed, so reconfigure costs between
        machines, not mid-flight — exactly the hardware constraint).
        """
        overhead = self.dispatch_overhead
        return {op: cost + overhead for op, cost in self.base.items()}

    def scaled(self, **changes) -> "CostModel":
        """A copy with the given fields replaced (baseline construction)."""
        return replace(self, **changes)


def kcm_cost_model() -> CostModel:
    """The calibrated KCM model (80 ns, all special units enabled)."""
    return CostModel()


@dataclass
class Features:
    """Architectural feature switches.

    The KCM configuration has everything on.  Baselines and the
    ablation benchmarks (A1–A3 in DESIGN.md) switch features off
    individually to measure the "influence of each specialized unit"
    the paper's future-work section calls for.
    """

    #: Delayed choice-point creation + shadow registers (section 3.1.5).
    shallow_backtracking: bool = True
    #: Profile-guided superinstruction fusion over the predecoded fast
    #: path (repro.core.superops): hot straight-line opcode runs execute
    #: as single generated host functions.  A host-side switch only —
    #: simulated statistics are bit-identical either way — kept here so
    #: the fusion layer can be ablated independently of ``fast_path``,
    #: like every other specialized-unit switch.
    superops: bool = True
    #: MWAC multi-way dispatch; off adds serial type-test cycles.
    mwac: bool = True
    #: Trail comparators in parallel with deref; off costs trail_check=2.
    parallel_trail: bool = True
    #: Zone-sectioned data cache; off = plain direct-mapped 8K.
    sectioned_cache: bool = True
    #: Zone check enabled (traps on bad addresses).
    zone_check: bool = True
    #: Extra cycles for switch instructions without the MWAC.
    mwac_off_switch_penalty: int = 4
    #: Extra cycles for unification instructions without the MWAC.
    mwac_off_unify_penalty: int = 1
    #: Serial trail-comparison cycles per binding when the parallel
    #: comparators are disabled (up to three compares, section 3.1.5).
    serial_trail_cycles: int = 2


def kcm_features() -> Features:
    """All KCM special units enabled."""
    return Features()
