"""Profile-guided superinstruction fusion over the predecoded fast path.

The predecode layer (:mod:`repro.core.predecode`) already pays decode
cost once per code word, but still executes one bound handler per
instruction.  Following the superinstruction literature for exactly
this interpreter shape (Körner et al., arXiv 2008.12543 — see
PAPERS.md), this module fuses hot straight-line opcode *runs* into
single generated host functions:

- :class:`FusionTable` holds the opcode sequences worth fusing.  The
  default table (:func:`default_table`) is the committed, generated
  artifact :mod:`repro.core.superops_table`, produced by profiling the
  PLM bench corpus with ``python -m repro.bench.superprofile`` rather
  than hand-picked.
- :class:`SuperopFuser` compiles one closure per fused basic block.
  The closure's source is generated per block: operand registers,
  fall-through addresses, code-cache probe constants and suffix cost
  sums are baked in as literals, the common data-movement and
  unification opcodes are inlined, and everything else calls the
  ordinary bound handler.

Correctness contract (the reason this is safe to switch on by
default): a fused block produces *bit-identical* simulated statistics
and solutions to the per-step loop, which in turn is bit-identical to
the ``fast_path=False`` seed interpreter.  Concretely:

- The outer loop still charges the block's summed static cycles,
  instruction count and inference count at block entry.  On any
  mid-run deviation — unification failure, builtin P redirect,
  ``running`` cleared, machine trap — the closure uncharges exactly
  the unexecuted suffix, using the same sums the per-step loop would
  have read from the fall-through table entry.
- Code-fetch timing still runs per instruction against the stateful
  code cache, with the hit path inlined (tag probe against baked
  constants) and hit counters batched and flushed on every exit path.
- ``m.p`` is maintained exactly as the seed loop does (set to the
  fall-through before each instruction executes), so trap reports,
  ``err.pc``, the recent-PC ring and ``resume()`` see identical state.
- Fused execution is only ever entered from
  :meth:`Machine._loop_predecoded`; the recovering loop (armed traps,
  fault injection) and any traced run execute per instruction.

Host-side only: no simulated observable depends on whether a block was
fused.  ``Features.superops=False`` ablates the layer independently of
``fast_path``.
"""

from __future__ import annotations

import builtins
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.opcodes import ArithOp, Op, TestOp
from repro.core.registers import X_REGISTERS
from repro.core.tags import ADDRESS_MASK
from repro.core.word import Type, Word, Zone
from repro.errors import ArithmeticError_, MachineError

#: Fusable run lengths.  Single-instruction blocks are worth fusing
#: only for opcodes with an inline emitter (the closure then replaces a
#: whole outer-loop iteration plus a handler dispatch with baked-operand
#: straight-line code); :meth:`SuperopFuser.fuse` enforces that.
#: MAX_FUSE_LEN caps the *profiled sequence* length recorded in the
#: table — longer profiled runs are truncated to their 32-opcode prefix
#: — but not the static block: a block of any length fuses when a
#: recorded prefix matches, since generation cost is paid once per
#: translation and the long once-per-query head blocks complete.
MIN_FUSE_LEN = 1
MAX_FUSE_LEN = 32


class FusionTable:
    """The set of opcode sequences selected for fusion.

    Built from ``(op_name_tuple, count)`` pairs as emitted by the
    profiler (:mod:`repro.bench.superprofile`).  A static block is
    fused when the executed-run profile says its opcode tuple — or any
    of its prefixes of fusable length — was hot: executed runs break
    at the same block enders the predecoder uses, so every profiled
    run is a prefix of some static block.
    """

    def __init__(self, sequences: Sequence) -> None:
        seqs = set()
        for entry in sequences:
            names = entry[0] if entry and isinstance(entry[0], tuple) \
                else entry
            names = tuple(names)[:MAX_FUSE_LEN]
            if len(names) < MIN_FUSE_LEN:
                continue
            try:
                seqs.add(tuple(Op[name] for name in names))
            except KeyError:
                # A sequence profiled by a different opcode vintage;
                # skip rather than fail the whole table.
                continue
        self._seqs = seqs
        self._max_len = max((len(s) for s in seqs), default=0)

    def __len__(self) -> int:
        return len(self._seqs)

    def matches(self, ops: Tuple[Op, ...]) -> bool:
        """Should a block with this opcode tuple be fused?  True when
        the tuple itself or any of its prefixes was recorded hot; the
        static block's own length is not capped (see MAX_FUSE_LEN)."""
        n = len(ops)
        if n < MIN_FUSE_LEN:
            return False
        seqs = self._seqs
        if ops in seqs:
            return True
        for length in range(MIN_FUSE_LEN, min(n, self._max_len + 1)):
            if ops[:length] in seqs:
                return True
        return False


_default: Optional[FusionTable] = None


def default_table() -> FusionTable:
    """The committed profile-selected table (cached).

    Falls back to an empty table (fusing nothing, fast path still
    correct) when the generated :mod:`repro.core.superops_table`
    module is missing; regenerate it with
    ``PYTHONPATH=src python -m repro.bench.superprofile``.
    """
    global _default
    if _default is None:
        try:
            from repro.core.superops_table import SEQUENCES
        except ImportError:         # pragma: no cover - regeneration gap
            SEQUENCES = ()
        _default = FusionTable(SEQUENCES)
    return _default


class _Demote(Exception):
    """Raised by an inline emitter on an operand shape it cannot bake
    (non-integer register index, unlinked target...); the instruction
    is emitted through its bound handler instead."""


class _Gen:
    """Accumulates generated source lines plus the closure environment
    (constants passed as default arguments, so they are LOAD_FAST in
    the compiled closure)."""

    def __init__(self, fixed_env: Dict[str, object]) -> None:
        self.lines: List[str] = []
        self._fixed_env = fixed_env
        self.env: Dict[str, object] = {"m": fixed_env["m"]}
        self._const_names: Dict[int, str] = {}
        self._counter = 0

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def use(self, name: str) -> str:
        """Bind one of the fixed environment objects into the closure."""
        self.env[name] = self._fixed_env[name]
        return name

    def const(self, obj, hint: str = "K") -> str:
        """Bind an arbitrary object (handler, Instruction, Word) as a
        named default argument; identical objects share one name."""
        key = id(obj)
        name = self._const_names.get(key)
        if name is None:
            name = f"{hint}{self._counter}"
            self._counter += 1
            self._const_names[key] = name
            self.env[name] = obj
        return name


def _reg(value) -> int:
    """Validate an X-register operand for inlining."""
    if isinstance(value, bool) or not isinstance(value, int) \
            or not 0 <= value < X_REGISTERS:
        raise _Demote()
    return value


def _intop(value) -> int:
    """Validate an integer operand (address, y-slot, count)."""
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise _Demote()
    return value


def _wordop(value) -> Word:
    """Validate a constant-Word operand whose tag/value compare can be
    baked as literals."""
    if not isinstance(value, Word):
        raise _Demote()
    if isinstance(value.value, bool) \
            or not isinstance(value.value, (int, float)):
        raise _Demote()
    return value


class SuperopFuser:
    """Per-machine superinstruction compiler.

    Captures the machine objects that are stable across
    ``reset_for_reuse`` (register file cells, code-cache tag list and
    stats, the code-fetch bound method — see the stability notes on
    :meth:`Machine.reset_for_reuse`); per-run state (``stats``, the
    fused memory closures, the recent-PC ring index) is fetched inside
    each closure call.
    """

    def __init__(self, machine, table: Optional[FusionTable] = None) -> None:
        # Machine is imported lazily: machine.py imports this module at
        # top level for _ensure_predecoded.
        from repro.core.machine import (CP_ALT, ENV_CE, ENV_CP, ENV_Y0,
                                        _RECENT_MASK)
        from repro.core.registers import SHADOW_ALT, SHADOW_H, SHADOW_TR
        self.machine = machine
        self.table = default_table() if table is None else table
        self.fused_built = 0
        self._env_y0 = ENV_Y0
        self._env_ce = ENV_CE
        self._env_cp = ENV_CP
        self._cp_alt = CP_ALT
        self._shadow_slots = (SHADOW_ALT, SHADOW_H, SHADOW_TR)
        self._ring_mask = _RECENT_MASK
        memory = machine.memory
        tags, self._index_mask, self._tag_shift = memory.code_probe_state()
        data_cache = memory.data_cache
        self._sectioned = data_cache.sectioned
        self._section_words = data_cache.section_words
        self._d_plain_mask = len(data_cache.tags) - 1
        self._zone_entries = memory.zones.entries
        self._costs = machine.costs
        features = machine.features
        self._mwac = features.mwac
        self._unify_penalty = features.mwac_off_unify_penalty
        self._switch_penalty = features.mwac_off_switch_penalty
        self._shallow = features.shallow_backtracking
        self._nil_word = machine.symbols.atom_word("[]")
        from repro.core import word as _word
        self._fixed_env: Dict[str, object] = {
            "m": machine,
            "cells": machine.regs.cells,
            "MEM": memory,
            "cfetch": memory.code_fetch,
            "tags": tags,
            "cs": memory.code_cache.stats,
            "ZN": memory.zones,
            "ST": memory.store,
            "chunks": memory.store._chunks,
            "dtags": data_cache.tags,
            "ddirty": data_cache.dirty,
            "ds": data_cache.stats,
            "MER": MachineError,
            "AER": ArithmeticError_,
            "DPT": Type.DATA_PTR,
            "INT": Type.INT,
            "FLOAT": Type.FLOAT,
            "MKI": _word.make_int,
            "MKF": _word.make_float,
            "WI": _word.wrap_int32,
            "SP": _word.to_single_precision,
            "REF": Type.REF,
            "NIL": Type.NIL,
            "LIST": Type.LIST,
            "STRUCT": Type.STRUCT,
            "GLOBAL": Zone.GLOBAL,
            "LOCAL": Zone.LOCAL,
            "CONTROL": Zone.CONTROL,
            "TRAIL": Zone.TRAIL,
            "UNB": _word.make_unbound,
            "MKL": _word.make_list,
            "MKS": _word.make_struct,
            "MKD": _word.make_data_ptr,
            "MKC": _word.make_code_ptr,
        }
        self._emitters: Dict[Op, Callable] = {
            Op.CALL: self._e_call,
            Op.EXECUTE: self._e_execute,
            Op.PROCEED: self._e_proceed,
            Op.JUMP: self._e_jump,
            Op.HALT: self._e_halt,
            Op.FAIL: self._e_fail,
            Op.SWITCH_ON_TERM: self._e_switch_on_term,
            Op.SWITCH_ON_CONSTANT: self._e_switch_on_constant,
            Op.SWITCH_ON_STRUCTURE: self._e_switch_on_structure,
            Op.TRY: self._e_try,
            Op.RETRY: self._e_retry,
            Op.TRUST: self._e_trust,
            Op.TRY_ME_ELSE: self._e_try_me_else,
            Op.RETRY_ME_ELSE: self._e_retry_me_else,
            Op.TRUST_ME: self._e_trust_me,
            Op.PUT_UNSAFE_VALUE: self._e_put_unsafe_value,
            Op.TEST: self._e_test,
            Op.ARITH: self._e_arith,
            Op.GEN_UNIFY: self._e_gen_unify,
            Op.NECK: self._e_neck,
            Op.NECK_CUT: self._e_neck_cut,
            Op.CUT: self._e_cut,
            Op.GET_LEVEL: self._e_get_level,
            Op.ALLOCATE: self._e_allocate,
            Op.DEALLOCATE: self._e_deallocate,
            Op.MOVE2: self._e_move2,
            Op.GET_X_VARIABLE: self._e_get_x_variable,
            Op.GET_Y_VARIABLE: self._e_get_y_variable,
            Op.GET_X_VALUE: self._e_get_x_value,
            Op.GET_Y_VALUE: self._e_get_y_value,
            Op.GET_CONSTANT: self._e_get_constant,
            Op.GET_NIL: self._e_get_nil,
            Op.GET_LIST: self._e_get_list,
            Op.GET_STRUCTURE: self._e_get_structure,
            Op.PUT_X_VARIABLE: self._e_put_x_variable,
            Op.PUT_Y_VARIABLE: self._e_put_y_variable,
            Op.PUT_X_VALUE: self._e_put_x_value,
            Op.PUT_Y_VALUE: self._e_put_y_value,
            Op.PUT_CONSTANT: self._e_put_constant,
            Op.PUT_NIL: self._e_put_nil,
            Op.PUT_LIST: self._e_put_list,
            Op.PUT_STRUCTURE: self._e_put_structure,
            Op.UNIFY_X_VARIABLE: self._e_unify_x_variable,
            Op.UNIFY_Y_VARIABLE: self._e_unify_y_variable,
            Op.UNIFY_X_VALUE: self._e_unify_x_value,
            Op.UNIFY_Y_VALUE: self._e_unify_y_value,
            Op.UNIFY_X_LOCAL_VALUE: self._e_unify_x_local_value,
            Op.UNIFY_Y_LOCAL_VALUE: self._e_unify_y_local_value,
            Op.UNIFY_CONSTANT: self._e_unify_constant,
            Op.UNIFY_NIL: self._e_unify_nil,
            Op.UNIFY_VOID: self._e_unify_void,
        }

    def _data_index(self, zone: Zone, var: str) -> Tuple[str, int]:
        """(index-expression, tag-shift) of the data-cache line for an
        address held in ``var``; the zone's section base is baked."""
        if self._sectioned:
            words = self._section_words
            base = (int(zone) & 7) * words
            shift = words.bit_length() - 1
            return f"{base} + ({var} & {words - 1})", shift
        mask = self._d_plain_mask
        return f"{var} & {mask}", (mask + 1).bit_length() - 1

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def fuse(self, address: int, steps: Tuple) -> Optional[Callable[[], None]]:
        """Compile the block at ``address`` into one closure, or return
        ``None`` when the profile says it is not worth fusing."""
        ops = tuple(step[4].op for step in steps)
        if not self.table.matches(ops):
            return None
        if len(steps) == 1 and ops[0] not in self._emitters:
            # A call-tier closure for one instruction saves nothing
            # over the per-step loop.
            return None
        source, env = self._generate(address, steps)
        code = compile(source, f"<superop:{address}>", "exec")
        namespace: Dict[str, object] = {"__builtins__": builtins}
        namespace.update(env)
        exec(code, namespace)
        self.fused_built += 1
        return namespace["_superop"]

    # ------------------------------------------------------------------
    # source generation
    # ------------------------------------------------------------------

    def _generate(self, address: int, steps: Tuple) -> Tuple[str, Dict]:
        count = len(steps)
        # Suffix sums: suf[u] = (cycles, instructions, inferences) of
        # instructions u..count-1 — what the per-step loop would read
        # from the fall-through table entry when instruction u-1
        # deviates.  suf[count] is all-zero (deviation in the last
        # instruction has nothing to uncharge).
        suf = [(0, 0, 0)] * (count + 1)
        for k in range(count - 1, -1, -1):
            cost_after, instr_after, infer_after = suf[k + 1]
            suf[k] = (cost_after + steps[k][1], instr_after + 1,
                      infer_after + steps[k][2])
        gen = _Gen(self._fixed_env)
        for name in ("cells", "MEM", "cfetch", "tags", "cs", "MER"):
            gen.use(name)
        gen.env["SUF"] = tuple(suf)

        body: List[Tuple[int, str]] = []   # (indent, text) under `try:`
        uses: set = set()

        pc = address
        for k, step in enumerate(steps):
            instr = step[4]
            fall_through = pc + instr.size
            is_last = k == count - 1
            chunk = _Chunk(self, gen, body, uses, k, pc, fall_through,
                           instr, is_last, suf, count)
            chunk.emit_preamble(step)
            emitter = self._emitters.get(instr.op)
            emitted = False
            if emitter is not None:
                mark = len(body)
                try:
                    emitter(chunk)
                    emitted = True
                except _Demote:
                    del body[mark:]
            if not emitted:
                chunk.emit_call_tier(step)
            pc = fall_through

        lines = gen.lines
        lines.append("    stats = m.stats")
        lines.append("    recent = m._recent_pcs")
        lines.append("    ri = m._recent_index")
        for local, attr in (("read", "_read"), ("write", "_write"),
                            ("deref", "deref"), ("bind", "bind"),
                            ("unify", "unify")):
            if local in uses:
                lines.append(f"    {local} = m.{attr}")
        if "ze" in uses:
            gen.use("ZN")
            lines.append("    ze = ZN.enabled")
        lines.append("    timing = MEM.timing_enabled")
        lines.append("    h_ = 0")
        lines.append("    try:")
        for indent, text in body:
            gen.line(indent, text)
        lines.append("    except MER:")
        lines.append("        c_, i_, f_ = SUF[u]")
        lines.append("        m.cycles -= c_")
        lines.append("        stats.instructions -= i_")
        lines.append("        stats.inferences -= f_")
        lines.append("        m._recent_index = ri + u")
        lines.append("        if h_:")
        lines.append("            cs.reads += h_")
        lines.append("            cs.read_hits += h_")
        lines.append("        raise")
        lines.append(f"    m._recent_index = ri + {count}")
        lines.append("    if h_:")
        lines.append("        cs.reads += h_")
        lines.append("        cs.read_hits += h_")

        params = ", ".join(f"{name}={name}" for name in gen.env)
        header = f"def _superop({params}):"
        return header + "\n" + "\n".join(lines) + "\n", gen.env

    # ------------------------------------------------------------------
    # per-opcode inline emitters.  Each receives a _Chunk positioned
    # after the per-instruction preamble (u/p/ring/code-fetch timing)
    # and emits statements observationally identical to the bound
    # handler's body, with operands baked as literals.  Raising _Demote
    # falls back to the handler call.
    # ------------------------------------------------------------------

    # -- control transfer (always block-terminal) ----------------------

    def _e_call(self, c: "_Chunk") -> None:
        target = _intop(c.instr.a)
        c.put(f"m.cp = {c.fall_through}")
        c.put("m.b0 = m.b")
        c.put(f"m.p = {target}")

    def _e_execute(self, c: "_Chunk") -> None:
        target = _intop(c.instr.a)
        c.put("m.b0 = m.b")
        c.put(f"m.p = {target}")

    def _e_proceed(self, c: "_Chunk") -> None:
        c.put("m.p = m.cp")

    def _e_jump(self, c: "_Chunk") -> None:
        c.put(f"m.p = {_intop(c.instr.a)}")

    def _e_halt(self, c: "_Chunk") -> None:
        c.put("m.running = False")
        c.put("m.halted = True")

    def _e_fail(self, c: "_Chunk") -> None:
        c.put("m.fail()")

    # -- clause indexing (always block-terminal) -----------------------

    def _switch_targets(self, c: "_Chunk", pairs) -> None:
        for cond, target in pairs:
            c.put(cond)
            if target is None:
                c.put("    m.fail()")
            else:
                c.put(f"    m.p = {_intop(target)}")

    def _e_switch_on_term(self, c: "_Chunk") -> None:
        instr = c.instr
        c.switch_penalty()
        c.use("deref", "REF", "LIST", "STRUCT")
        c.put("w_ = cells[0]")
        c.put("if w_.type is REF:")
        c.put("    w_ = deref(w_)")
        c.put("cells[0] = w_")
        c.put("t_ = w_.type")
        self._switch_targets(c, (("if t_ is REF:", instr.a),
                                 ("elif t_ is LIST:", instr.c),
                                 ("elif t_ is STRUCT:", instr.d),
                                 ("else:", instr.b)))

    def _switch_lookup_tail(self, c: "_Chunk", table_name: str,
                            key: str, default) -> None:
        if default is not None:
            default = _intop(default)
        c.put(f"t_ = {table_name}.get({key}, {default!r})")
        c.put("if t_ is None:")
        c.put("    m.fail()")
        c.put("else:")
        c.put("    m.p = t_")

    def _e_switch_on_constant(self, c: "_Chunk") -> None:
        instr = c.instr
        if not isinstance(instr.a, dict):
            raise _Demote()
        c.switch_penalty()
        c.use("deref", "REF")
        table_name = c.gen.const(instr.a, "D")
        c.put("w_ = cells[0]")
        c.put("if w_.type is REF:")
        c.put("    w_ = deref(w_)")
        self._switch_lookup_tail(c, table_name, "(w_.tag, w_.value)",
                                 instr.b)

    def _e_switch_on_structure(self, c: "_Chunk") -> None:
        instr = c.instr
        if not isinstance(instr.a, dict):
            raise _Demote()
        c.switch_penalty()
        c.use("read", "deref", "REF")
        table_name = c.gen.const(instr.a, "D")
        c.put("w_ = cells[0]")
        c.put("if w_.type is REF:")
        c.put("    w_ = deref(w_)")
        c.put("y_ = read(w_.value, w_.zone)")
        self._switch_lookup_tail(c, table_name, "int(y_.value)", instr.b)

    # -- choice-point management ---------------------------------------

    def _enter_alternatives(self, c: "_Chunk", alt: int, arity) -> None:
        """Inline Machine._enter_with_alternatives (try / try_me_else):
        the shadow-register save of section 3.1.5, or a materialised
        choice point with shallow backtracking ablated."""
        if not self._shallow:
            c.put(f"m._create_choice_point({alt}, {_intop(arity)}, m.h, "
                  f"m.trail.top, m.local_top())")
            return
        from repro.core.word import make_code_ptr
        slot_alt, slot_h, slot_tr = self._shadow_slots
        alt_word = c.gen.const(make_code_ptr(alt), "W")
        c.use("GLOBAL", "TRAIL")
        c.gen.use("MKD")
        c.put("m.shallow_flag = True")
        c.put("m.cp_flag = False")
        c.put("t_ = m.h")
        c.put("v_ = m.trail.top")
        c.put("s_ = m.shadow")
        c.put(f"s_.alt = {alt}")
        c.put("s_.h = t_")
        c.put("s_.tr = v_")
        c.put(f"cells[{slot_alt}] = {alt_word}")
        c.put(f"cells[{slot_h}] = MKD(t_, GLOBAL)")
        c.put(f"cells[{slot_tr}] = MKD(v_, TRAIL)")
        c.put("m.hb = t_")
        c.put("m.lb = m.local_top()")

    def _e_try(self, c: "_Chunk") -> None:
        # The handler reads self.p as the saved alternative; the
        # preamble has already set it to the fall-through.
        target = _intop(c.instr.a)
        self._enter_alternatives(c, c.fall_through, c.instr.b)
        c.put(f"m.p = {target}")

    def _e_try_me_else(self, c: "_Chunk") -> None:
        self._enter_alternatives(c, _intop(c.instr.a), c.instr.b)

    def _retry_body(self, c: "_Chunk", alt: int) -> None:
        from repro.core.word import make_code_ptr
        slot_alt, slot_h, slot_tr = self._shadow_slots
        alt_word = c.gen.const(make_code_ptr(alt), "W")
        c.use("write", "CONTROL")
        if not self._shallow:
            c.put(f"write(m.b + {self._cp_alt}, {alt_word}, CONTROL)")
            return
        c.use("GLOBAL", "TRAIL")
        c.gen.use("MKD")
        c.put("if m.cp_flag:")
        c.put(f"    write(m.b + {self._cp_alt}, {alt_word}, CONTROL)")
        c.put("else:")
        c.put("    s_ = m.shadow")
        c.put(f"    s_.alt = {alt}")
        c.put(f"    cells[{slot_alt}] = {alt_word}")
        c.put(f"    cells[{slot_h}] = MKD(s_.h, GLOBAL)")
        c.put(f"    cells[{slot_tr}] = MKD(s_.tr, TRAIL)")

    def _e_retry(self, c: "_Chunk") -> None:
        target = _intop(c.instr.a)
        self._retry_body(c, c.fall_through)
        if self._shallow:
            c.put("m.shallow_flag = True")
        c.put(f"m.p = {target}")

    def _e_retry_me_else(self, c: "_Chunk") -> None:
        self._retry_body(c, _intop(c.instr.a))
        if self._shallow:
            c.put("m.shallow_flag = True")

    def _trust_body(self, c: "_Chunk") -> None:
        if not self._shallow:
            c.put("m._pop_choice_point()")
            return
        c.put("if m.cp_flag:")
        c.put("    m._pop_choice_point()")
        c.put("else:")
        c.put("    m._refresh_barriers()")
        c.put("m.shallow_flag = False")

    def _e_trust(self, c: "_Chunk") -> None:
        target = _intop(c.instr.a)
        self._trust_body(c)
        c.put(f"m.p = {target}")

    def _e_trust_me(self, c: "_Chunk") -> None:
        self._trust_body(c)

    # -- frames, cut, shallow backtracking -----------------------------

    def _e_neck(self, c: "_Chunk") -> None:
        if not self._shallow:
            c.put("pass")
            return
        arity = _intop(c.instr.a)
        c.put("if m.shallow_flag and not m.cp_flag:")
        c.put("    s_ = m.shadow")
        c.put(f"    m._create_choice_point(s_.alt, {arity}, s_.h, s_.tr, "
              f"m.lb)")
        c.put("    m.cp_flag = True")
        c.put("m.shallow_flag = False")

    def _e_neck_cut(self, c: "_Chunk") -> None:
        if self._shallow:
            c.put("if m.shallow_flag and not m.cp_flag:")
            c.put("    stats.choice_points_avoided += 1")
            c.put("    m.shallow_flag = False")
            c.put("    m._refresh_barriers()")
            c.put("else:")
            c.put("    m.shallow_flag = False")
            c.put("    if m.b != m.b0:")
            c.put("        m.b = m.b0")
            c.put("        m._refresh_barriers()")
        else:
            c.put("m.shallow_flag = False")
            c.put("if m.b != m.b0:")
            c.put("    m.b = m.b0")
            c.put("    m._refresh_barriers()")

    def _e_cut(self, c: "_Chunk") -> None:
        c.put("if m.b != m.b0:")
        c.put("    m.b = m.b0")
        c.put("    m._refresh_barriers()")

    def _e_get_level(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        c.use("CONTROL")
        c.gen.use("MKD")
        c.write_zone(f"m.e + {slot}", "MKD(m.b0, CONTROL)", "LOCAL")

    def _e_allocate(self, c: "_Chunk") -> None:
        c.gen.use("MKD")
        c.gen.use("MKC")
        c.put("a_ = m.local_top()")
        c.write_zone(f"a_ + {self._env_ce}", "MKD(m.e, LOCAL)", "LOCAL")
        c.write_zone(f"a_ + {self._env_cp}", "MKC(m.cp)", "LOCAL")
        c.put("m.e = a_")

    def _e_deallocate(self, c: "_Chunk") -> None:
        c.put("a_ = m.e")
        c.read_zone("y_", f"a_ + {self._env_cp}", "LOCAL")
        c.put("m.cp = int(y_.value)")
        c.read_zone("y_", f"a_ + {self._env_ce}", "LOCAL")
        c.put("m.e = int(y_.value)")

    def _e_move2(self, c: "_Chunk") -> None:
        instr = c.instr
        src1, dst1 = _reg(instr.a), _reg(instr.b)
        if instr.c is None:
            c.put(f"cells[{dst1}] = cells[{src1}]")
            return
        src2, dst2 = _reg(instr.c), _reg(instr.d)
        c.put(f"t_ = cells[{src1}]")
        c.put(f"v_ = cells[{src2}]")
        c.put(f"cells[{dst1}] = t_")
        c.put(f"cells[{dst2}] = v_")

    # -- arithmetic and guard tests ------------------------------------

    def _numeric_inline(self, c: "_Chunk", reg: int, var: str) -> None:
        """Inline Machine._numeric_operand for X register ``reg`` into
        ``var``: deref, then raise the handler's exact arithmetic traps
        on non-numeric operands."""
        c.use("deref", "REF", "INT", "FLOAT")
        c.gen.use("AER")
        c.put(f"{var} = cells[{reg}]")
        c.put(f"if {var}.type is REF:")
        c.put(f"    {var} = deref({var})")
        c.put(f"t_ = {var}.type")
        c.put("if t_ is not INT and t_ is not FLOAT:")
        c.put("    if t_ is REF:")
        c.put('        raise AER("unbound variable in arithmetic")')
        c.put('    raise AER("non-numeric operand in arithmetic: "')
        c.put(f"              + m.symbols.describe_constant({var}))")

    def _e_test(self, c: "_Chunk") -> None:
        op = c.instr.a
        if not isinstance(op, int):
            raise _Demote()
        # Any op outside the five below compares not-equal, exactly as
        # the handler's else branch does.
        sym = {TestOp.LT: "<", TestOp.GT: ">", TestOp.LE: "<=",
               TestOp.GE: ">=", TestOp.EQ: "=="}.get(op, "!=")
        self._numeric_inline(c, _reg(c.instr.b), "w_")
        self._numeric_inline(c, _reg(c.instr.c), "y_")
        costs = self._costs
        if costs.test_dispatch:
            c.put(f"m.cycles += {costs.test_dispatch}")
        c.put(f"if not (w_.value {sym} y_.value):")
        if costs.branch_taken_extra:
            c.put(f"    m.cycles += {costs.branch_taken_extra}")
        c.put("    m.fail()")
        c.settle(1)

    def _e_arith(self, c: "_Chunk") -> None:
        instr = c.instr
        op = instr.a
        if not isinstance(op, int):
            raise _Demote()
        # Only the trap-free operators inline; DIV/MOD and friends keep
        # the handler's ZeroDivisionError translation.
        binary = {ArithOp.ADD: "w_.value + y_.value",
                  ArithOp.SUB: "w_.value - y_.value",
                  ArithOp.MUL: "w_.value * y_.value",
                  # '/' and mod trap on a zero divisor; the guard below
                  # replicates the handler's ZeroDivisionError
                  # translation after the cycle charge, where the
                  # handler's try block raises.  The shared expression
                  # works for '/' because the handler's int branch is
                  # int(lv / rv) (truncating float division, the
                  # Warren-era semantics) and the emitter's int branch
                  # wraps the expression in int() anyway.
                  ArithOp.DIV: "w_.value / y_.value",
                  ArithOp.IDIV: "w_.value // y_.value",
                  ArithOp.MOD: "w_.value % y_.value"}
        unary = {ArithOp.NEG: "-w_.value", ArithOp.ABS: "abs(w_.value)"}
        guarded = (ArithOp.DIV, ArithOp.IDIV, ArithOp.MOD)
        costs = self._costs
        try:
            icost = costs.arith_int[op] - 1 + costs.arith_dispatch
            fcost = costs.arith_float[op] - 1 + costs.arith_dispatch
        except (KeyError, TypeError):
            raise _Demote()
        dst = _reg(instr.d)
        if op in binary and instr.c is not None:
            expr = binary[op]
            self._numeric_inline(c, _reg(instr.b), "w_")
            self._numeric_inline(c, _reg(instr.c), "y_")
            float_test = "w_.type is FLOAT or y_.type is FLOAT"
        elif op in unary and instr.c is None:
            expr = unary[op]
            self._numeric_inline(c, _reg(instr.b), "w_")
            float_test = "w_.type is FLOAT"
        else:
            raise _Demote()
        # The handler computes integer floor division even for float
        # operands and converts afterwards; mirror that on the float
        # branch (int() of an infinite quotient must still overflow
        # exactly where the handler's would).
        fexpr = f"int({expr})" if op is ArithOp.IDIV else expr
        c.use("FLOAT")
        c.use_env("MKI", "WI", "MKF", "SP")
        if op in guarded:
            c.gen.use("AER")
        zero_guard = 'if y_.value == 0: raise AER("division by zero")'
        c.put(f"if {float_test}:")
        if fcost:
            c.put(f"    m.cycles += {fcost}")
        if op in guarded:
            c.put(f"    {zero_guard}")
        c.put(f"    cells[{dst}] = MKF(SP(float({fexpr})))")
        c.put("else:")
        if icost:
            c.put(f"    m.cycles += {icost}")
        if op in guarded:
            c.put(f"    {zero_guard}")
        c.put(f"    cells[{dst}] = MKI(WI(int({expr})))")

    def _e_gen_unify(self, c: "_Chunk") -> None:
        a, b = _reg(c.instr.a), _reg(c.instr.b)
        c.use("unify")
        c.put(f"if not unify(cells[{a}], cells[{b}]):")
        c.put("    m.fail()")
        c.settle(1)

    # -- get instructions (head unification) ---------------------------

    def _e_get_x_variable(self, c: "_Chunk") -> None:
        c.put(f"cells[{_reg(c.instr.a)}] = cells[{_reg(c.instr.b)}]")

    def _e_get_y_variable(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        c.write_zone(f"m.e + {slot}", f"cells[{_reg(c.instr.b)}]",
                     "LOCAL")

    def _e_get_x_value(self, c: "_Chunk") -> None:
        c.penalty()
        c.use("unify")
        c.put(f"if not unify(cells[{_reg(c.instr.a)}], "
              f"cells[{_reg(c.instr.b)}]):")
        c.put("    m.fail()")
        c.settle(1)

    def _e_get_y_value(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        c.penalty()
        c.use("unify")
        c.read_zone("y_", f"m.e + {slot}", "LOCAL")
        c.put(f"if not unify(y_, cells[{_reg(c.instr.b)}]):")
        c.put("    m.fail()")
        c.settle(1)

    def _e_get_constant(self, c: "_Chunk") -> None:
        const = _wordop(c.instr.a)
        reg = _reg(c.instr.b)
        c.penalty()
        c.use("deref", "bind", "REF")
        const_name = c.gen.const(const, "W")
        c.put(f"w_ = cells[{reg}]")
        c.put("if w_.type is REF:")
        c.put("    w_ = deref(w_)")
        c.put("if w_.type is REF:")
        c.put(f"    bind(w_.value, w_.zone, {const_name})")
        c.put(f"elif w_.tag != {const.tag} or w_.value != {const.value!r}:")
        c.put("    m.fail()")
        c.settle(1)

    def _e_get_nil(self, c: "_Chunk") -> None:
        reg = _reg(c.instr.a)
        c.penalty()
        c.use("deref", "bind", "REF", "NIL")
        nil_name = c.gen.const(self._nil_word, "W")
        c.put(f"w_ = cells[{reg}]")
        c.put("if w_.type is REF:")
        c.put("    w_ = deref(w_)")
        c.put("if w_.type is REF:")
        c.put(f"    bind(w_.value, w_.zone, {nil_name})")
        c.put("elif w_.type is not NIL:")
        c.put("    m.fail()")
        c.settle(1)

    def _e_get_list(self, c: "_Chunk") -> None:
        reg = _reg(c.instr.a)
        c.penalty()
        c.use("deref", "bind", "REF", "LIST")
        c.gen.use("MKL")
        c.put(f"w_ = cells[{reg}]")
        c.put("if w_.type is REF:")
        c.put("    w_ = deref(w_)")
        c.put("t_ = w_.type")
        c.put("if t_ is LIST:")
        c.put("    m.s = w_.value")
        c.put("    m.mode_write = False")
        c.put("elif t_ is REF:")
        c.put("    bind(w_.value, w_.zone, MKL(m.h))")
        c.put("    m.mode_write = True")
        c.put("else:")
        c.put("    m.fail()")
        c.settle(1)

    def _e_get_structure(self, c: "_Chunk") -> None:
        findex = _intop(c.instr.a)
        reg = _reg(c.instr.b)
        c.penalty()
        c.use("read", "write", "deref", "bind", "REF", "STRUCT", "GLOBAL")
        c.gen.use("MKS")
        from repro.core.word import make_functor
        functor_name = c.gen.const(make_functor(findex), "W")
        c.put(f"w_ = cells[{reg}]")
        c.put("if w_.type is REF:")
        c.put("    w_ = deref(w_)")
        c.put("t_ = w_.type")
        c.put("if t_ is STRUCT:")
        c.put("    y_ = read(w_.value, w_.zone)")
        c.put(f"    if int(y_.value) != {findex}:")
        c.put("        m.fail()")
        c.settle(2)
        c.put("    m.s = w_.value + 1")
        c.put("    m.mode_write = False")
        c.put("elif t_ is REF:")
        c.put("    bind(w_.value, w_.zone, MKS(m.h))")
        c.put("    a_ = m.h")
        c.write_zone("a_", functor_name, "GLOBAL", indent=1)
        c.put("    m.h = a_ + 1")
        c.put("    m.mode_write = True")
        c.put("else:")
        c.put("    m.fail()")
        c.settle(1)

    # -- put instructions (argument loading) ---------------------------

    def _e_put_x_variable(self, c: "_Chunk") -> None:
        reg_a, reg_b = _reg(c.instr.a), _reg(c.instr.b)
        c.new_heap_var("v_")
        c.put(f"cells[{reg_a}] = v_")
        c.put(f"cells[{reg_b}] = v_")

    def _e_put_y_variable(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        reg = _reg(c.instr.b)
        c.use("LOCAL")
        c.gen.use("UNB")
        c.put(f"a_ = m.e + {slot}")
        c.put("v_ = UNB(a_, LOCAL)")
        c.write_zone("a_", "v_", "LOCAL")
        c.put(f"cells[{reg}] = v_")

    def _e_put_x_value(self, c: "_Chunk") -> None:
        c.put(f"cells[{_reg(c.instr.b)}] = cells[{_reg(c.instr.a)}]")

    def _e_put_y_value(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        c.read_zone("y_", f"m.e + {slot}", "LOCAL")
        c.put(f"cells[{_reg(c.instr.b)}] = y_")

    def _e_put_unsafe_value(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        reg = _reg(c.instr.b)
        c.use("deref", "bind", "REF", "LOCAL")
        c.read_zone("w_", f"m.e + {slot}", "LOCAL")
        c.put("if w_.type is REF:")
        c.put("    w_ = deref(w_)")
        c.put("if w_.type is REF and w_.zone is LOCAL "
              "and w_.value >= m.e:")
        c.new_heap_var("v_", indent=1)
        c.put("    bind(w_.value, w_.zone, v_)")
        c.put("    w_ = v_")
        c.put(f"cells[{reg}] = w_")

    def _e_put_constant(self, c: "_Chunk") -> None:
        const = c.instr.a
        if not isinstance(const, Word):
            raise _Demote()
        name = c.gen.const(const, "W")
        c.put(f"cells[{_reg(c.instr.b)}] = {name}")

    def _e_put_nil(self, c: "_Chunk") -> None:
        name = c.gen.const(self._nil_word, "W")
        c.put(f"cells[{_reg(c.instr.a)}] = {name}")

    def _e_put_list(self, c: "_Chunk") -> None:
        c.gen.use("MKL")
        c.put(f"cells[{_reg(c.instr.a)}] = MKL(m.h)")
        c.put("m.mode_write = True")

    def _e_put_structure(self, c: "_Chunk") -> None:
        findex = _intop(c.instr.a)
        reg = _reg(c.instr.b)
        c.use("GLOBAL")
        c.gen.use("MKS")
        from repro.core.word import make_functor
        functor_name = c.gen.const(make_functor(findex), "W")
        c.put("a_ = m.h")
        c.write_zone("a_", functor_name, "GLOBAL")
        c.put("m.h = a_ + 1")
        c.put(f"cells[{reg}] = MKS(a_)")
        c.put("m.mode_write = True")

    # -- unify instructions (structure arguments) ----------------------

    def _e_unify_x_variable(self, c: "_Chunk") -> None:
        reg = _reg(c.instr.a)
        c.use("GLOBAL")
        c.put("if m.mode_write:")
        c.new_heap_var("v_", indent=1)
        c.put(f"    cells[{reg}] = v_")
        c.put("else:")
        c.read_zone("v_", "m.s", "GLOBAL", indent=1)
        c.put(f"    cells[{reg}] = v_")
        c.put("    m.s += 1")

    def _e_unify_y_variable(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        c.use("LOCAL", "GLOBAL")
        c.put("if m.mode_write:")
        c.new_heap_var("v_", indent=1)
        c.put("else:")
        c.read_zone("v_", "m.s", "GLOBAL", indent=1)
        c.put("    m.s += 1")
        c.write_zone(f"m.e + {slot}", "v_", "LOCAL")

    def _e_unify_x_value(self, c: "_Chunk") -> None:
        reg = _reg(c.instr.a)
        c.penalty()
        c.use("unify", "GLOBAL")
        c.put("if m.mode_write:")
        c.put("    a_ = m.h")
        c.write_zone("a_", f"cells[{reg}]", "GLOBAL", indent=1)
        c.put("    m.h = a_ + 1")
        c.put("else:")
        c.read_zone("v_", "m.s", "GLOBAL", indent=1)
        c.put(f"    if not unify(cells[{reg}], v_):")
        c.put("        m.fail()")
        c.settle(2)
        c.put("    m.s += 1")

    def _e_unify_y_value(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        c.penalty()
        c.use("unify", "LOCAL", "GLOBAL")
        c.read_zone("y_", f"m.e + {slot}", "LOCAL")
        c.put("if m.mode_write:")
        c.put("    a_ = m.h")
        c.write_zone("a_", "y_", "GLOBAL", indent=1)
        c.put("    m.h = a_ + 1")
        c.put("else:")
        c.read_zone("v_", "m.s", "GLOBAL", indent=1)
        c.put("    if not unify(y_, v_):")
        c.put("        m.fail()")
        c.settle(2)
        c.put("    m.s += 1")

    def _e_unify_x_local_value(self, c: "_Chunk") -> None:
        reg = _reg(c.instr.a)
        c.penalty()
        c.use("deref", "bind", "unify", "REF", "LOCAL", "GLOBAL")
        c.gen.use("UNB")
        c.put("if m.mode_write:")
        c.put(f"    w_ = cells[{reg}]")
        c.put("    if w_.type is REF:")
        c.put("        w_ = deref(w_)")
        c.put("    if w_.type is REF and w_.zone is LOCAL:")
        c.new_heap_var("v_", indent=2)
        c.put("        bind(w_.value, w_.zone, v_)")
        c.put(f"        cells[{reg}] = v_")
        c.put("    else:")
        c.put("        a_ = m.h")
        c.write_zone("a_", "w_", "GLOBAL", indent=2)
        c.put("        m.h = a_ + 1")
        c.put(f"        cells[{reg}] = w_")
        c.put("else:")
        # Read mode delegates to unify_x_value in the handler, which
        # charges its own MWAC-off penalty again; keep that faithfully.
        c.penalty(indent=1)
        c.read_zone("v_", "m.s", "GLOBAL", indent=1)
        c.put(f"    if not unify(cells[{reg}], v_):")
        c.put("        m.fail()")
        c.settle(2)
        c.put("    m.s += 1")

    def _e_unify_y_local_value(self, c: "_Chunk") -> None:
        slot = self._env_y0 + _intop(c.instr.a)
        c.penalty()
        c.use("deref", "bind", "unify", "REF", "LOCAL", "GLOBAL")
        c.gen.use("UNB")
        c.put("if m.mode_write:")
        c.read_zone("w_", f"m.e + {slot}", "LOCAL", indent=1)
        c.put("    if w_.type is REF:")
        c.put("        w_ = deref(w_)")
        c.put("    if w_.type is REF and w_.zone is LOCAL:")
        c.new_heap_var("v_", indent=2)
        c.put("        bind(w_.value, w_.zone, v_)")
        c.put("    else:")
        c.put("        a_ = m.h")
        c.write_zone("a_", "w_", "GLOBAL", indent=2)
        c.put("        m.h = a_ + 1")
        c.put("else:")
        c.penalty(indent=1)
        c.read_zone("y_", f"m.e + {slot}", "LOCAL", indent=1)
        c.read_zone("v_", "m.s", "GLOBAL", indent=1)
        c.put("    if not unify(y_, v_):")
        c.put("        m.fail()")
        c.settle(2)
        c.put("    m.s += 1")

    def _e_unify_constant(self, c: "_Chunk") -> None:
        const = _wordop(c.instr.a)
        c.penalty()
        self._unify_const_body(c, const)

    def _e_unify_nil(self, c: "_Chunk") -> None:
        # No MWAC penalty in the handler (unlike unify_constant).
        self._unify_const_body(c, self._nil_word)

    def _unify_const_body(self, c: "_Chunk", const: Word) -> None:
        c.use("deref", "bind", "REF", "GLOBAL")
        name = c.gen.const(const, "W")
        c.put("if m.mode_write:")
        c.put("    a_ = m.h")
        c.write_zone("a_", name, "GLOBAL", indent=1)
        c.put("    m.h = a_ + 1")
        c.put("else:")
        c.read_zone("w_", "m.s", "GLOBAL", indent=1)
        c.put("    if w_.type is REF:")
        c.put("        w_ = deref(w_)")
        c.put("    m.s += 1")
        c.put("    if w_.type is REF:")
        c.put(f"        bind(w_.value, w_.zone, {name})")
        c.put(f"    elif w_.tag != {const.tag} "
              f"or w_.value != {const.value!r}:")
        c.put("        m.fail()")
        c.settle(2)

    def _e_unify_void(self, c: "_Chunk") -> None:
        count = _intop(c.instr.a)
        if count:
            c.use("write", "GLOBAL")
            c.gen.use("UNB")
            c.put("if m.mode_write:")
            c.put(f"    for _ in range({count}):")
            c.new_heap_var(None, indent=2)
            c.put("else:")
            c.put(f"    m.s += {count}")
        if count > 1:
            c.put(f"m.cycles += {count - 1}")


class _Chunk:
    """Emission context for one instruction inside a fused block."""

    def __init__(self, fuser: SuperopFuser, gen: _Gen, body: List,
                 uses: set, k: int, pc: int, fall_through: int,
                 instr, is_last: bool, suf: List, count: int) -> None:
        self.fuser = fuser
        self.gen = gen
        self.body = body
        self.uses = uses
        self.k = k
        self.pc = pc
        self.fall_through = fall_through
        self.instr = instr
        self.is_last = is_last
        self.suf = suf
        self.count = count

    #: Names that are closure locals fetched in the prologue
    #: (everything else in use() is a fixed env binding).
    _LOCALS = frozenset(("read", "write", "deref", "bind", "unify",
                         "ze"))

    def put(self, text: str, indent: int = 0) -> None:
        # Chunk statements live at indent 2 (function body 1, try 2).
        self.body.append((2 + indent, text))

    def use(self, *names: str) -> None:
        for name in names:
            if name in self._LOCALS:
                self.uses.add(name)
            else:
                self.gen.use(name)

    def use_env(self, *names: str) -> None:
        for name in names:
            self.gen.use(name)

    def read_zone(self, target: str, addr: str, zone_name: str,
                  indent: int = 0) -> None:
        """Emit a data read at a build-time-constant zone with the
        cache/zone *hit* path inlined (the layered path's counters
        committed only once every condition has passed); any edge —
        timing off, zone checking off, missing chunk, uninitialised
        cell, zone bounds, cache miss — falls back to the fused read
        closure, which owns those cases."""
        fuser = self.fuser
        zone = getattr(Zone, zone_name)
        entry = fuser._zone_entries.get(zone)
        self.use("read", zone_name)
        if entry is None:
            self.put(f"{target} = read({addr}, {zone_name})", indent)
            return
        self.use("ze")
        self.use_env("chunks", "dtags", "ds", "DPT")
        en = self.gen.const(entry, "Z")
        jexpr, shift = fuser._data_index(zone, "ra_")
        self.put(f"ra_ = {addr}", indent)
        self.put(f"{target} = None", indent)
        self.put("if timing and ze:", indent)
        self.put("    rk_ = chunks.get(ra_ >> 16)", indent)
        self.put(f"    if rk_ is not None and dtags[{jexpr}] == "
                 f"ra_ >> {shift}:", indent)
        self.put("        rw_ = rk_[ra_ & 65535]", indent)
        self.put(f"        if rw_ is not None "
                 f"and DPT in {en}.allowed_types "
                 f"and {en}.low_bound <= ra_ < {en}.high_bound "
                 f"and 0 <= ra_ <= {ADDRESS_MASK}:", indent)
        self.put(f"            {en}.checks += 1", indent)
        self.put("            ds.reads += 1", indent)
        self.put("            ds.read_hits += 1", indent)
        self.put("            stats.data_reads += 1", indent)
        self.put(f"            {target} = rw_", indent)
        self.put(f"if {target} is None:", indent)
        self.put(f"    {target} = read(ra_, {zone_name})", indent)

    def write_zone(self, addr: str, word: str, zone_name: str,
                   indent: int = 0) -> None:
        """Emit a data write at a build-time-constant zone with the
        hit path inlined; anything off the happy path (an armed undo
        log, dirty-chunk tracking, timing/zone checking off, zone
        bounds, a missing chunk, cache miss) falls back to the fused
        write closure."""
        fuser = self.fuser
        zone = getattr(Zone, zone_name)
        entry = fuser._zone_entries.get(zone)
        self.use("write", zone_name)
        if entry is None:
            self.put(f"write({addr}, {word}, {zone_name})", indent)
            return
        self.use("ze")
        self.use_env("chunks", "dtags", "ddirty", "ds", "DPT", "ST")
        en = self.gen.const(entry, "Z")
        jexpr, shift = fuser._data_index(zone, "wa_")
        self.put(f"wa_ = {addr}", indent)
        self.put(f"ww_ = {word}", indent)
        self.put(f"wj_ = {jexpr}", indent)
        self.put(f"if (timing and ze and m._undo_log is None "
                 f"and not ST.track_dirty "
                 f"and dtags[wj_] == wa_ >> {shift} "
                 f"and DPT in {en}.allowed_types "
                 f"and not {en}.write_protected "
                 f"and {en}.low_bound <= wa_ < {en}.high_bound "
                 f"and 0 <= wa_ <= {ADDRESS_MASK}):", indent)
        self.put("    wk_ = chunks.get(wa_ >> 16)", indent)
        self.put("    if wk_ is None:", indent)
        self.put(f"        write(wa_, ww_, {zone_name})", indent)
        self.put("    else:", indent)
        self.put(f"        {en}.checks += 1", indent)
        self.put("        wk_[wa_ & 65535] = ww_", indent)
        self.put("        ds.writes += 1", indent)
        self.put("        ds.write_hits += 1", indent)
        self.put("        ddirty[wj_] = True", indent)
        self.put("        stats.data_writes += 1", indent)
        self.put("else:", indent)
        self.put(f"    write(wa_, ww_, {zone_name})", indent)

    def penalty(self, indent: int = 0) -> None:
        """The MWAC-off unification penalty (no-op in the default
        all-units-on configuration, baked accordingly)."""
        if not self.fuser._mwac and self.fuser._unify_penalty:
            self.put(f"m.cycles += {self.fuser._unify_penalty}", indent)

    def switch_penalty(self, indent: int = 0) -> None:
        """The MWAC-off clause-indexing penalty (baked away in the
        default all-units-on configuration)."""
        if not self.fuser._mwac and self.fuser._switch_penalty:
            self.put(f"m.cycles += {self.fuser._switch_penalty}", indent)

    def new_heap_var(self, target: Optional[str], indent: int = 0) -> None:
        """Inline Machine.new_heap_var(); ``target`` receives the new
        unbound Word (or None to discard it)."""
        self.use("GLOBAL")
        self.gen.use("UNB")
        self.put("a_ = m.h", indent)
        if target is None:
            self.write_zone("a_", "UNB(a_, GLOBAL)", "GLOBAL", indent)
        else:
            self.put(f"{target} = UNB(a_, GLOBAL)", indent)
            self.write_zone("a_", target, "GLOBAL", indent)
        self.put("m.h = a_ + 1", indent)

    def settle(self, indent: int) -> None:
        """Emit the early-exit sequence after a deviation in this
        instruction: uncharge the unexecuted suffix (baked literals),
        publish the recent-PC ring index, flush batched code-cache
        hits, and return.  ``m.p`` is already the fall-through (set in
        the preamble) unless the deviation itself redirected it —
        exactly the seed loop's state."""
        cost, instrs, infers = self.suf[self.k + 1]
        if cost:
            self.put(f"m.cycles -= {cost}", indent)
        if instrs:
            self.put(f"stats.instructions -= {instrs}", indent)
        if infers:
            self.put(f"stats.inferences -= {infers}", indent)
        self.put(f"m._recent_index = ri + {self.k + 1}", indent)
        self.put("if h_:", indent)
        self.put("    cs.reads += h_", indent)
        self.put("    cs.read_hits += h_", indent)
        self.put("return", indent)

    def emit_preamble(self, step: Tuple) -> None:
        """Per-instruction bookkeeping identical to the per-step loop:
        deviation cursor, P advance, recent-PC ring write, and the
        inlined code-cache probe (miss path charges the fetch and, on
        a fetch trap, takes back this instruction's own share — the
        function-level handler takes back the suffix)."""
        fuser = self.fuser
        k = self.k
        self.put(f"u = {k + 1}")
        self.put(f"m.p = {self.fall_through}")
        self.put(f"recent[(ri + {k}) & {fuser._ring_mask}] = {self.pc}")
        self.put("if timing:")
        self.put(f"    if tags[{self.pc & fuser._index_mask}] == "
                 f"{self.pc >> fuser._tag_shift}:")
        self.put("        h_ += 1")
        self.put("    else:")
        self.put("        try:")
        self.put(f"            m.cycles += cfetch({self.pc})")
        self.put("        except MER:")
        self.put(f"            m.cycles -= {step[1]}")
        self.put("            stats.instructions -= 1")
        if step[2]:
            self.put(f"            stats.inferences -= {step[2]}")
        self.put("            raise")

    def emit_call_tier(self, step: Tuple) -> None:
        """Dispatch through the bound handler (opcodes without an
        inline emitter, or inline ones demoted on odd operands), with
        the per-step loop's deviation check on the way out."""
        handler_name = self.gen.const(step[0], "H")
        instr_name = self.gen.const(self.instr, "I")
        self.put(f"{handler_name}({instr_name})")
        if not self.is_last:
            self.put(f"if m.p != {self.fall_through} or not m.running:")
            self.settle(1)
