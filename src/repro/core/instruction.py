"""Instruction objects and the disassembler.

One :class:`Instruction` stands for one (or, for switches, several)
64-bit code words.  Operands are kept symbolic during code generation
(label strings, functor indices) and resolved to absolute addresses by
the assembler/linker — all KCM branch targets are absolute (section
3.1.3).

Field usage by opcode group (see :mod:`repro.core.opcodes` for the
operand signatures):

=============  =====  =====  =====  =====
group          a      b      c      d
=============  =====  =====  =====  =====
call           target nperms findex --
execute/jump   target --     findex --
try family     target --     --     --
switch_o_term  lvar   lconst llist  lstruct
switch_o_c/s   table  default --    --
get/put x,a    reg    areg   --     --
get/put const  const  areg   --     --
get/put f      findex areg   --     --
unify reg      reg    --     --     --
move2          src1   dst1   src2   dst2
arith          op     src1   src2   dst
test           op     src1   src2   --
escape         bid    arity  findex --
=============  =====  =====  =====  =====
"""

from __future__ import annotations

from typing import Optional

from repro.core.opcodes import OP_INFO, Op
from repro.core.word import Word


class Instruction:
    """One decoded instruction.

    ``infer`` marks instructions that begin a source-level goal, used
    by the inference counter (the Klips definition of section 4.2:
    every goal invocation at the source level is one inference,
    built-ins included, cut excluded).
    """

    __slots__ = ("op", "a", "b", "c", "d", "infer", "size")

    def __init__(self, op: Op, a=None, b=None, c=None, d=None,
                 infer: bool = False, size: Optional[int] = None):
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.infer = infer
        if size is None:
            size = OP_INFO[op].base_words
            if op in (Op.SWITCH_ON_CONSTANT, Op.SWITCH_ON_STRUCTURE):
                size += len(a) if a else 0
        self.size = size

    def __repr__(self) -> str:
        return f"Instruction({self.disassemble()})"

    def disassemble(self) -> str:
        """A readable one-line rendering (the paper's macrocode monitor
        equivalent)."""
        name = self.op.name.lower()
        fields = []
        for value in (self.a, self.b, self.c, self.d):
            if value is None:
                continue
            if isinstance(value, Word):
                fields.append(repr(value))
            elif isinstance(value, dict):
                fields.append("{" + ", ".join(
                    f"{k}->{v}" for k, v in list(value.items())[:4])
                    + ("..." if len(value) > 4 else "") + "}")
            else:
                fields.append(str(value))
        marker = " ; goal" if self.infer else ""
        return f"{name} {', '.join(fields)}{marker}".rstrip()


def disassemble_range(code, start: int, end: int) -> str:
    """Disassemble code words in [start, end); skips continuation words
    of multi-word instructions."""
    lines = []
    address = start
    while address < end:
        instr = code[address]
        if instr is None:
            address += 1
            continue
        lines.append(f"{address:6d}: {instr.disassemble()}")
        address += instr.size
    return "\n".join(lines)
