"""Generator for the instruction-set reference (docs/INSTRUCTION_SET.md).

The reference is *generated* from the live opcode metadata and cost
model so it can never drift from the implementation;
``tests/test_isa_doc.py`` asserts the checked-in file matches this
renderer's output.  Regenerate with::

    python -m repro.core.isa_doc > docs/INSTRUCTION_SET.md
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.costs import CostModel
from repro.core.opcodes import BRANCHING_OPS, Format, OP_INFO, Op

#: One-line semantics per opcode (the human half of the reference).
_DESCRIPTIONS: Dict[Op, str] = {
    Op.CALL: "Call a predicate; saves the continuation in CP, sets the "
             "cut barrier B0. Carries the caller's live-permanents "
             "count for environment trimming.",
    Op.EXECUTE: "Last-call jump to a predicate (no continuation saved).",
    Op.PROCEED: "Return through CP.",
    Op.ALLOCATE: "Push an environment frame (CE, CP, Y slots).",
    Op.DEALLOCATE: "Pop the current environment frame.",
    Op.HALT: "Stop the machine (bootstrap epilogue).",
    Op.JUMP: "Unconditional jump (absolute target).",
    Op.FAIL: "Force backtracking.",
    Op.TRY_ME_ELSE: "First clause of a chain: save the three shadow "
                    "registers (alternative, H, TR); no choice point "
                    "yet (section 3.1.5).",
    Op.RETRY_ME_ELSE: "Middle clause: update the alternative (shadow "
                      "or choice-point field).",
    Op.TRUST_ME: "Last clause: discard the shadow / pop the choice "
                 "point.",
    Op.TRY: "Indexed try: like try_me_else with the clause address as "
            "operand and the next chain entry as alternative.",
    Op.RETRY: "Indexed retry.",
    Op.TRUST: "Indexed trust.",
    Op.NECK: "Clause commit point: materialise the delayed choice "
             "point if the clause still has alternatives. Free when "
             "the flags are clear (decode-time folding).",
    Op.NECK_CUT: "Cut in neck position: discard the shadow (one "
                 "cycle, no choice point was ever built) or cut to B0.",
    Op.GET_LEVEL: "Yn := B0 (save the cut barrier).",
    Op.CUT: "Cut to B0 (before the first body call).",
    Op.CUT_Y: "Cut to the barrier saved in Yn.",
    Op.SWITCH_ON_TERM: "4-way dispatch on A1's type through the MWAC "
                       "(variable / constant / list / structure).",
    Op.SWITCH_ON_CONSTANT: "Hash dispatch on a constant value "
                           "(multi-word: table follows).",
    Op.SWITCH_ON_STRUCTURE: "Hash dispatch on a functor (multi-word).",
    Op.GET_X_VARIABLE: "Xn := Ai.",
    Op.GET_Y_VARIABLE: "Yn := Ai.",
    Op.GET_X_VALUE: "Unify Xn with Ai.",
    Op.GET_Y_VALUE: "Unify Yn with Ai.",
    Op.GET_CONSTANT: "Unify Ai with a constant.",
    Op.GET_NIL: "Unify Ai with [].",
    Op.GET_LIST: "Dispatch on Ai: enter read mode on a list, bind and "
                 "enter write mode on a variable, else fail.",
    Op.GET_STRUCTURE: "Dispatch on Ai against a functor.",
    Op.PUT_X_VARIABLE: "Fresh heap variable into Xn and Ai.",
    Op.PUT_Y_VARIABLE: "Fresh local variable into Yn and Ai.",
    Op.PUT_X_VALUE: "Ai := Xn.",
    Op.PUT_Y_VALUE: "Ai := Yn.",
    Op.PUT_UNSAFE_VALUE: "Ai := deref(Yn), globalising an unbound "
                         "variable of the dying environment.",
    Op.PUT_CONSTANT: "Ai := constant.",
    Op.PUT_NIL: "Ai := [].",
    Op.PUT_LIST: "Ai := list pointer to H; enter write mode.",
    Op.PUT_STRUCTURE: "Push a functor cell; Ai := structure pointer; "
                      "write mode.",
    Op.UNIFY_X_VARIABLE: "Read: Xn := next cell. Write: fresh heap "
                         "variable.",
    Op.UNIFY_Y_VARIABLE: "Y-register variant.",
    Op.UNIFY_X_VALUE: "Read: unify Xn with the next cell. Write: push "
                      "Xn.",
    Op.UNIFY_Y_VALUE: "Y-register variant.",
    Op.UNIFY_X_LOCAL_VALUE: "Like unify_value but globalises unbound "
                            "local variables when writing.",
    Op.UNIFY_Y_LOCAL_VALUE: "Y-register variant.",
    Op.UNIFY_CONSTANT: "Read: unify the next cell with a constant. "
                       "Write: push it.",
    Op.UNIFY_NIL: "Constant [] variant.",
    Op.UNIFY_VOID: "Skip (read) or push (write) N anonymous cells.",
    Op.MOVE2: "Two register-to-register moves in one cycle (the "
              "four-address format, section 3.1.1).",
    Op.ARITH: "dst := src1 <op> src2 over tagged numbers (generic: the "
              "type pair selects integer ALU or FPU).",
    Op.TEST: "Fail unless src1 <relation> src2 (numeric).",
    Op.GEN_UNIFY: "Full unification of two registers (=/2, is/2 "
                  "result binding).",
    Op.ESCAPE: "Call a built-in through the escape mechanism.",
}


def render() -> str:
    """The full reference as markdown."""
    costs = CostModel()
    lines: List[str] = [
        "# KCM instruction set reference",
        "",
        "Generated from `repro.core.opcodes` and `repro.core.costs` by",
        "`python -m repro.core.isa_doc`; do not edit by hand",
        "(`tests/test_isa_doc.py` keeps it in sync).",
        "",
        "All instructions are 64-bit words in one of the two formats of",
        "paper figure 3; the switch instructions are the only multi-word",
        "instructions (their tables follow inline).  Base cycles are the",
        "calibrated KCM costs (80 ns each); dynamic costs (dereference",
        "chains, choice-point register loops, trail pushes, cache misses)",
        "are added at run time.",
        "",
        "| opcode | format | words | base cycles | operands | semantics |",
        "|---|---|---|---|---|---|",
    ]
    for op in Op:
        info = OP_INFO[op]
        fmt = "R4" if info.format is Format.R4 else "ADDR"
        words = str(info.base_words) + ("+" if op in (
            Op.SWITCH_ON_CONSTANT, Op.SWITCH_ON_STRUCTURE) else "")
        base = costs.base[op]
        operands = info.operands or "—"
        description = _DESCRIPTIONS[op]
        lines.append(f"| `{op.name.lower()}` | {fmt} | {words} | {base} "
                     f"| `{operands}` | {description} |")
    lines += [
        "",
        "Relocatable (absolute-target) instructions: "
        + ", ".join(f"`{op.name.lower()}`"
                    for op in sorted(BRANCHING_OPS, key=lambda o: o.name))
        + ".",
        "",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(), end="")
