"""Run statistics: what the paper's monitors measured.

One :class:`RunStats` instance accumulates everything the evaluation
section reports or reasons about: cycles (hence milliseconds at the
machine's cycle time), inferences (hence Klips, using the paper's
implementation-independent definition), instruction counts, choice
point and trail traffic, and shallow/deep backtracking splits — the
latter being the headline architectural claim of section 3.1.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass
class RunStats:
    """Counters for one query execution."""

    cycles: int = 0
    instructions: int = 0
    inferences: int = 0

    # Backtracking behaviour (section 3.1.5).
    shallow_fails: int = 0
    deep_fails: int = 0
    choice_points_created: int = 0
    choice_points_avoided: int = 0    # neck reached with no CP needed
    trail_pushes: int = 0
    trail_checks: int = 0

    # Unification behaviour (section 3.1.4).
    dereference_links: int = 0
    general_unifications: int = 0

    # Memory behaviour (section 3.2.4).
    data_reads: int = 0
    data_writes: int = 0

    solutions: int = 0

    # Trap-and-recovery behaviour (sections 2.2, 3.2.3, 3.2.5).
    traps_raised: int = 0
    traps_recovered: int = 0
    recovery_cycles: int = 0          # cycles spent restoring + in handlers
    faults_injected: int = 0          # deterministic fault-injection events

    per_opcode: Dict[str, int] = field(default_factory=dict)
    per_trap: Dict[str, int] = field(default_factory=dict)

    def count_opcode(self, name: str) -> None:
        """Bump the per-opcode histogram (kept by name for readability)."""
        self.per_opcode[name] = self.per_opcode.get(name, 0) + 1

    def count_trap(self, kind: str) -> None:
        """Bump the per-trap-kind histogram."""
        self.per_trap[kind] = self.per_trap.get(kind, 0) + 1

    def copy(self) -> "RunStats":
        """An independent snapshot (used by machine checkpoints)."""
        duplicate = replace(self)
        duplicate.per_opcode = dict(self.per_opcode)
        duplicate.per_trap = dict(self.per_trap)
        return duplicate

    # -- derived figures ---------------------------------------------------------

    def milliseconds(self, cycle_seconds: float) -> float:
        """Wall-clock ms at the given cycle time."""
        return self.cycles * cycle_seconds * 1e3

    def klips(self, cycle_seconds: float) -> float:
        """Kilo logical inferences per second (paper's definition)."""
        seconds = self.cycles * cycle_seconds
        if seconds <= 0:
            return 0.0
        return self.inferences / seconds / 1e3

    @property
    def read_write_ratio(self) -> float:
        """Data reads per write — about 1:1 for Prolog (section 3.2.4)."""
        return self.data_reads / self.data_writes if self.data_writes else 0.0

    def summary(self) -> str:
        """A short human-readable digest."""
        text = (f"{self.inferences} inferences in {self.cycles} cycles; "
                f"{self.shallow_fails} shallow / {self.deep_fails} deep "
                f"fails; {self.choice_points_created} CPs created, "
                f"{self.choice_points_avoided} avoided; "
                f"{self.solutions} solution(s)")
        if self.traps_raised:
            text += (f"; {self.traps_recovered}/{self.traps_raised} traps "
                     f"recovered in {self.recovery_cycles} cycles")
        return text
