"""Decoding heap words back into source-level terms.

Used by the ``'$answer'`` escape (solution collection), by real-I/O
``write/1`` and by tests.  Decoding is a *host-side* operation — the
workstation reading KCM memory over the VME interface (figure 1) — so
it reads the functional store directly and costs no simulated cycles.
"""

from __future__ import annotations

from typing import Dict

from repro.core.tags import Type
from repro.core.word import Word
from repro.prolog.terms import Atom, Float, Int, Struct, Term, Var

#: Safety bound against decoding cyclic or runaway structures.
MAX_DECODE_CELLS = 1_000_000


def decode_word(machine, word: Word,
                names: "Dict[int, str] | None" = None) -> Term:
    """Convert a tagged heap word into a :mod:`repro.prolog.terms` term.

    Unbound variables decode to :class:`Var` named ``_<address>`` (or
    via the optional ``names`` map keyed by cell address).
    """
    store = machine.memory.store
    symbols = machine.symbols
    read = store.read

    def walk(w: Word, budget: list) -> Term:
        # Dereference without simulated cycle cost — but charge the
        # host-side budget per hop: a REF loop longer than one cell
        # (a->b->a) never hits the direct self-reference test below and
        # would otherwise spin forever.
        while w.type is Type.REF:
            budget[0] -= 1
            if budget[0] < 0:
                raise ValueError("term too large to decode (cyclic?)")
            cell = read(w.value)
            if cell.type is Type.REF and cell.value == w.value:
                if names and w.value in names:
                    return Var(names[w.value])
                return Var(f"_{w.value}")
            w = cell
        budget[0] -= 1
        if budget[0] < 0:
            raise ValueError("term too large to decode (cyclic?)")
        t = w.type
        if t is Type.INT:
            return Int(int(w.value))
        if t is Type.FLOAT:
            return Float(float(w.value))
        if t is Type.ATOM:
            return Atom(symbols.atom_name(int(w.value)))
        if t is Type.NIL:
            return Atom("[]")
        if t is Type.LIST:
            # Iterate down the spine: benchmark answers are thousands
            # of elements long, far beyond the Python recursion limit.
            heads = []
            while True:
                heads.append(walk(read(w.value), budget))
                budget[0] -= 1
                if budget[0] < 0:
                    raise ValueError("term too large to decode (cyclic?)")
                tail = read(w.value + 1)
                # Same per-hop budget charge as above: a cyclic tail
                # REF chain must error out, not hang the host.
                while tail.type is Type.REF:
                    budget[0] -= 1
                    if budget[0] < 0:
                        raise ValueError(
                            "term too large to decode (cyclic?)")
                    cell = read(tail.value)
                    if cell.type is Type.REF and cell.value == tail.value:
                        break
                    tail = cell
                if tail.type is not Type.LIST:
                    break
                w = tail
            result = walk(tail, budget)
            for head in reversed(heads):
                result = Struct(".", (head, result))
            return result
        if t is Type.STRUCT:
            functor = read(w.value)
            name, arity = symbols.functor_key(int(functor.value))
            args = tuple(walk(read(w.value + 1 + i), budget)
                         for i in range(arity))
            return Struct(name, args)
        raise ValueError(f"cannot decode word of type {t.name}")

    return walk(word, [MAX_DECODE_CELLS])


def encode_term(machine, term: Term) -> Word:
    """Build ``term`` on the machine's heap; returns the root word.

    The inverse of :func:`decode_word`, used by tests and the query
    harness to preload arguments.  Variables sharing a name share one
    fresh heap cell.
    """
    cache: Dict[str, Word] = {}

    def build(t: Term) -> Word:
        if isinstance(t, Int):
            from repro.core.word import make_int
            return make_int(t.value)
        if isinstance(t, Float):
            from repro.core.word import make_float
            return make_float(t.value)
        if isinstance(t, Atom):
            return machine.symbols.atom_word(t.name)
        if isinstance(t, Var):
            if t.name not in cache:
                cache[t.name] = machine.new_heap_var()
            return cache[t.name]
        if isinstance(t, Struct):
            from repro.core.word import make_functor, make_list, make_struct
            args = [build(a) for a in t.args]
            if t.name == "." and len(args) == 2:
                address = machine.h
                machine.heap_push(args[0])
                machine.heap_push(args[1])
                return make_list(address)
            findex = machine.symbols.functor_index(t.name, t.arity)
            address = machine.heap_push(make_functor(findex))
            for arg in args:
                machine.heap_push(arg)
            return make_struct(address)
        raise TypeError(f"cannot encode {t!r}")

    return build(term)
