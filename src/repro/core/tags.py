"""KCM word and address formats (paper sections 2.3, 3.2.2, figures 2 and 7).

A KCM word is 64 bits: a 32-bit *value* part (bits 31..0) and a 32-bit
*tag* part (bits 63..32).  Within the tag part the paper defines:

====  =======  ==================================================
bits  name     meaning
====  =======  ==================================================
63    GC mark  garbage-collection mark bit (manipulated by the TVM)
62    GC link  second garbage-collection bit
55-52 zone     virtual-memory zone of an address (16 zones)
51-48 type     one of 16 data types (integer, list, reference, ...)
====  =======  ==================================================

Bits 47..32 and 61..56 are unused in the current implementation; the
simulator keeps them zero, and the zone check verifies this for
addresses, exactly as section 3.2.3 describes.

The value part of an address uses only the 28 least significant bits.
Bits 27..14 are the virtual page number and bits 13..0 the page offset
(16K-word pages), which is what the MMU model in
:mod:`repro.memory.mmu` decodes.

This module is the single source of truth for the bit layout; the
figure renderers in :mod:`repro.bench.figures` draw figures 2 and 7
from these constants rather than from a hand-maintained copy.
"""

from __future__ import annotations

import enum

# ---------------------------------------------------------------------------
# Bit layout constants (figure 2 / figure 7)
# ---------------------------------------------------------------------------

WORD_BITS = 64
VALUE_BITS = 32
TAG_BITS = 32

VALUE_MASK = (1 << VALUE_BITS) - 1

TYPE_SHIFT = 48          # bits 51..48 of the full 64-bit word
TYPE_BITS = 4
TYPE_MASK = (1 << TYPE_BITS) - 1

ZONE_SHIFT = 52          # bits 55..52
ZONE_BITS = 4
ZONE_MASK = (1 << ZONE_BITS) - 1

GC_MARK_SHIFT = 63
GC_LINK_SHIFT = 62

# Address decomposition (figure 7): 28-bit word addresses, 16K-word pages.
ADDRESS_BITS = 28
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
PAGE_OFFSET_BITS = 14
PAGE_SIZE_WORDS = 1 << PAGE_OFFSET_BITS        # 16K words per page
PAGE_OFFSET_MASK = PAGE_SIZE_WORDS - 1
PAGE_NUMBER_BITS = ADDRESS_BITS - PAGE_OFFSET_BITS  # 14 -> 16K virtual pages
PAGE_NUMBER_MASK = (1 << PAGE_NUMBER_BITS) - 1

# Zone-check granularity: bits 27..12, i.e. 4K-word granules (section 3.2.3).
ZONE_GRANULE_BITS = 12
ZONE_GRANULE_WORDS = 1 << ZONE_GRANULE_BITS


class Type(enum.IntEnum):
    """The 16 possible data types encoded in tag bits 51..48.

    The paper names integer, floating point, variable (reference), list,
    data pointer and code pointer explicitly; the remainder are the types
    any WAM-family machine needs (atoms, structures, nil, ...) plus a few
    spares, mirroring SEPIA's type system which KCM was built to run.
    """

    REF = 0            # unbound variable / reference chain link
    STRUCT = 1         # pointer to a functor cell on the global stack
    LIST = 2           # pointer to a cons cell on the global stack
    ATOM = 3           # constant: index into the atom table
    INT = 4            # 32-bit signed integer (immediate)
    FLOAT = 5          # 32-bit IEEE float (immediate)
    NIL = 6            # the empty list constant
    FUNCTOR = 7        # functor descriptor cell (name/arity), heap only
    DATA_PTR = 8       # untyped data pointer (runtime system use)
    CODE_PTR = 9       # pointer into the code address space
    ENV_PTR = 10       # saved environment pointer (local stack frames)
    CP_PTR = 11        # saved choice-point pointer (control stack frames)
    TRAIL_PTR = 12     # saved trail pointer
    STRING = 13        # string table reference (SEPIA extension)
    DID = 14           # dictionary identifier (SEPIA extension)
    SPARE = 15         # unused, reserved for extensions


class Zone(enum.IntEnum):
    """Virtual-memory zones encoded in tag bits 55..52 (section 3.2.2).

    "Stacks, heaps, and other data areas are mapped to zones."  The
    assignment of numbers is an implementation choice; what matters is
    that every stack pointer carries a distinct zone so the zone check
    and the zone-sectioned data cache can tell the stacks apart.
    """

    NONE = 0           # non-address data (integers, floats, atoms...)
    GLOBAL = 1         # global stack (heap): lists and structures
    LOCAL = 2          # local stack: environments
    CONTROL = 3        # choice-point stack (split-stack model, section 2.4)
    TRAIL = 4          # trail stack
    STATIC = 5         # static data area (atom table, functor table)
    CODE = 6           # code space (separate address space, section 3.2.1)
    SYSTEM = 7         # runtime-system scratch area


# Types acceptable as *addresses into* each zone (section 3.2.3).  Numbers
# are never valid addresses anywhere.  Lists and structures are built on
# the global stack only; the local stack takes references and data
# pointers; the control stack takes data pointers only.
ZONE_ADDRESS_TYPES = {
    Zone.GLOBAL: frozenset({Type.REF, Type.STRUCT, Type.LIST, Type.DATA_PTR}),
    Zone.LOCAL: frozenset({Type.REF, Type.DATA_PTR}),
    Zone.CONTROL: frozenset({Type.DATA_PTR, Type.CP_PTR}),
    Zone.TRAIL: frozenset({Type.DATA_PTR, Type.TRAIL_PTR}),
    Zone.STATIC: frozenset({Type.REF, Type.DATA_PTR, Type.FUNCTOR}),
    Zone.CODE: frozenset({Type.CODE_PTR}),
    Zone.SYSTEM: frozenset({Type.DATA_PTR}),
}

#: Types that are immediate values (the value part is *not* an address).
IMMEDIATE_TYPES = frozenset(
    {Type.INT, Type.FLOAT, Type.ATOM, Type.NIL, Type.FUNCTOR,
     Type.STRING, Type.DID}
)

#: Types whose value part points into the data address space.
POINTER_TYPES = frozenset(
    {Type.REF, Type.STRUCT, Type.LIST, Type.DATA_PTR, Type.ENV_PTR,
     Type.CP_PTR, Type.TRAIL_PTR}
)


def make_tag(type_: Type, zone: Zone = Zone.NONE,
             gc_mark: bool = False, gc_link: bool = False) -> int:
    """Pack a 32-bit tag from its fields.

    The returned integer is the *tag part* (bits 63..32 of the word
    shifted down by 32), which is how the simulator stores tags.
    """
    tag = (int(type_) & TYPE_MASK) << (TYPE_SHIFT - VALUE_BITS)
    tag |= (int(zone) & ZONE_MASK) << (ZONE_SHIFT - VALUE_BITS)
    if gc_mark:
        tag |= 1 << (GC_MARK_SHIFT - VALUE_BITS)
    if gc_link:
        tag |= 1 << (GC_LINK_SHIFT - VALUE_BITS)
    return tag


# Precomputed field-decode tables.  Tag-field extraction sits on the
# hottest paths of the whole simulator (every deref, bind, zone check
# and unification type-dispatch goes through it); indexing a tuple is
# several times cheaper on the host than calling the enum constructor,
# and is exactly the 16-way decode ROM the hardware TVM uses.
TAG_TYPE_SHIFT = TYPE_SHIFT - VALUE_BITS
TAG_ZONE_SHIFT = ZONE_SHIFT - VALUE_BITS
TYPE_BY_INDEX = tuple(Type(i) for i in range(16))
#: Zone uses only 8 of its 16 encodings; the spare slots keep the
#: invalid-value ValueError of the enum constructor.
ZONE_BY_INDEX = tuple(Zone(i) if i < 8 else None for i in range(16))


def tag_type(tag: int) -> Type:
    """Extract the 4-bit type field from a 32-bit tag part."""
    return TYPE_BY_INDEX[(tag >> TAG_TYPE_SHIFT) & TYPE_MASK]


def tag_zone(tag: int) -> Zone:
    """Extract the 4-bit zone field from a 32-bit tag part."""
    zone = ZONE_BY_INDEX[(tag >> TAG_ZONE_SHIFT) & ZONE_MASK]
    if zone is None:
        return Zone((tag >> TAG_ZONE_SHIFT) & ZONE_MASK)  # raises
    return zone


def tag_gc_mark(tag: int) -> bool:
    """Extract the garbage-collection mark bit from a tag part."""
    return bool((tag >> (GC_MARK_SHIFT - VALUE_BITS)) & 1)


def tag_gc_link(tag: int) -> bool:
    """Extract the second garbage-collection bit from a tag part."""
    return bool((tag >> (GC_LINK_SHIFT - VALUE_BITS)) & 1)


def with_gc_mark(tag: int, value: bool) -> int:
    """Return ``tag`` with the GC mark bit set to ``value``.

    In hardware this is one of the Tag-Value-Multiplexer (TVM)
    manipulations described in section 3.1.1.
    """
    bit = 1 << (GC_MARK_SHIFT - VALUE_BITS)
    return (tag | bit) if value else (tag & ~bit)


def with_gc_link(tag: int, value: bool) -> int:
    """Return ``tag`` with the GC link bit set to ``value`` (TVM op)."""
    bit = 1 << (GC_LINK_SHIFT - VALUE_BITS)
    return (tag | bit) if value else (tag & ~bit)


def page_number(address: int) -> int:
    """Virtual page number of a word address (bits 27..14, figure 7)."""
    return (address >> PAGE_OFFSET_BITS) & PAGE_NUMBER_MASK


def page_offset(address: int) -> int:
    """Offset of a word address within its 16K-word page (bits 13..0)."""
    return address & PAGE_OFFSET_MASK


def zone_granule(address: int) -> int:
    """The 4K-word granule index used by the zone-limit comparators
    (bits 27..12, section 3.2.3)."""
    return (address >> ZONE_GRANULE_BITS) & ((1 << 16) - 1)


def address_in_range(address: int) -> bool:
    """True when the 4 most significant address bits (31..28) are zero,
    the first thing the zone check verifies (section 3.2.3)."""
    return 0 <= address <= ADDRESS_MASK
