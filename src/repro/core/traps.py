"""The trap vector: hardware-trap delivery to software handlers.

The KCM survives its own faults by design: the zone check raises traps
on bad or out-of-limits accesses (section 3.2.3), the RAM-resident page
table turns missing translations into page faults the host services
(sections 2.1 and 3.2.5), and the host interface delivers every trap to
a software handler which may repair the cause — grow a stack, trigger
garbage collection, map a page — and restart the faulting instruction
(sections 2.2 and 4).  This module is that delivery layer:

- :class:`TrapReport` — the structured machine-state snapshot built at
  every trap (kind, PC, faulting address, register snapshot, cycle
  count), attached to the trap exception and logged on the machine;
- :class:`TrapVector` — the handler table.  Handlers are registered per
  trap class and called most-recently-registered first; a handler
  returns ``True`` when it repaired the fault (the machine restarts the
  faulting instruction) or ``False``/``None`` to decline (the next
  handler is tried, and the trap aborts the run when all decline);
- :class:`MachineCheckpoint` — a full snapshot of the machine's dynamic
  state (registers, stacks, trail, zone limits, dirty store pages) so
  long runs can be resumed after a fatal trap or a watchdog stop.

The hot path pays nothing for any of this: a machine whose trap vector
has no handlers (and no fault injector) runs the exact seed loop, and
simulated cycle counts are bit-identical.  Recovery costs cycles only
when a trap actually fires; the accounting lands in
``RunStats.recovery_cycles``.

Handler contract (see ``docs/TRAPS.md``): ``handler(machine, trap,
report) -> bool``.  Handlers run in *system mode* — the zone check is
disabled around the call, as on the real machine where trap handlers
execute privileged host/runtime code — and any memory traffic or
explicit ``machine.cycles`` charges they make are attributed to
recovery overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.tags import Zone
from repro.core.word import Word

#: handler signature: (machine, trap, report) -> recovered?
TrapHandler = Callable[[object, BaseException, "TrapReport"], bool]

#: cycles charged for trap delivery + handler dispatch itself (the
#: host-interface round trip is far more expensive than a cache miss;
#: this is deliberately conservative and configurable per vector).
DEFAULT_SERVICE_CYCLES = 100

#: how many TrapReports a machine's audit log retains (newest wins).
#: A long-lived session engine may service thousands of recovered page
#: faults over its lifetime; an unbounded list would grow the engine's
#: resident size — and every checkpoint — without bound.
TRAP_LOG_RING = 256


@dataclass
class TrapReport:
    """Structured description of one delivered trap.

    Built by the machine's trap dispatcher before handlers run;
    attached to the trap exception (``trap.report``) and appended to
    ``machine.trap_log``, so both recovered and fatal traps leave an
    audit trail.
    """

    kind: str                          # trap class name, e.g. "PageFault"
    message: str
    pc: int                            # address of the faulting instruction
    cycles: int                        # cycle count when the trap fired
    instructions: int                  # instructions retired so far
    faulting_address: Optional[int] = None
    zone: Optional[Zone] = None
    virtual_page: Optional[int] = None
    registers: Dict[str, int] = field(default_factory=dict)
    recovered: bool = False
    handler: Optional[str] = None      # name of the handler that recovered
    retry: int = 0                     # consecutive services at this PC
    injected: bool = False             # raised by the fault injector

    def describe(self) -> str:
        """One-line human-readable rendering."""
        where = f"P={self.pc}, cycle {self.cycles}"
        target = ""
        if self.faulting_address is not None:
            target = f", address {self.faulting_address:#x}"
            if self.zone is not None:
                target += f" ({self.zone.name})"
        elif self.virtual_page is not None:
            target = f", page {self.virtual_page}"
        outcome = "recovered" if self.recovered else "fatal"
        via = f" by {self.handler}" if self.handler else ""
        return f"{self.kind} at {where}{target}: {outcome}{via}"


class TrapLogRing:
    """``machine.trap_log``: a bounded, ordered trap audit log.

    Behaves like the list it replaced — ``append``, ``len``, indexing,
    iteration oldest-first — but retains only the newest
    ``capacity`` reports, counting evictions in ``dropped`` (the same
    keep-the-tail discipline as the machine's recent-PC ring, applied
    to reports rather than addresses).  The total delivered count is
    therefore always ``len(ring) + ring.dropped``, and a long-lived
    engine's audit trail stops growing with its lifetime.

    :meth:`snapshot` / :meth:`restore` round-trip the ring through
    :class:`MachineCheckpoint` bit-identically — entries, drop count
    and capacity all survive, so a resumed engine's log is
    indistinguishable from an uninterrupted one's.
    """

    __slots__ = ("capacity", "dropped", "_entries")

    def __init__(self, capacity: int = TRAP_LOG_RING,
                 entries: Optional[List[TrapReport]] = None,
                 dropped: int = 0):
        if capacity < 1:
            raise ValueError("trap log capacity must be >= 1")
        self.capacity = capacity
        self.dropped = dropped
        self._entries: List[TrapReport] = list(entries or ())
        overflow = len(self._entries) - capacity
        if overflow > 0:
            del self._entries[:overflow]
            self.dropped += overflow

    def append(self, report: TrapReport) -> None:
        self._entries.append(report)
        if len(self._entries) > self.capacity:
            del self._entries[0]
            self.dropped += 1

    def clear(self) -> None:
        self._entries = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, index):
        return self._entries[index]

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __eq__(self, other) -> bool:
        if isinstance(other, TrapLogRing):
            return (self._entries == other._entries
                    and self.dropped == other.dropped
                    and self.capacity == other.capacity)
        if isinstance(other, list):
            return self._entries == other and not self.dropped
        return NotImplemented

    def __repr__(self) -> str:
        return (f"TrapLogRing({len(self._entries)} of {self.capacity} "
                f"retained, {self.dropped} dropped)")

    def snapshot(self) -> Tuple[List[TrapReport], int, int]:
        """Checkpoint form: ``(entries, dropped, capacity)``."""
        return (list(self._entries), self.dropped, self.capacity)

    @classmethod
    def restore(cls, snapshot) -> "TrapLogRing":
        """Rebuild from :meth:`snapshot` output (or, for checkpoints
        predating the ring, a plain report list)."""
        if isinstance(snapshot, tuple):
            entries, dropped, capacity = snapshot
            return cls(capacity=capacity, entries=entries, dropped=dropped)
        return cls(entries=list(snapshot))


class TrapVector:
    """The software trap-handler table.

    Registration is per trap *class*; delivery walks the registered
    (class, handler) pairs most-recently-registered first and offers the
    trap to every handler whose class matches (``isinstance``), stopping
    at the first that returns ``True``.  Most-specific-wins therefore
    falls out of registering specific handlers after generic ones, and
    the default installer does exactly that.
    """

    def __init__(self, service_cycles: int = DEFAULT_SERVICE_CYCLES):
        self._handlers: List[Tuple[type, TrapHandler, str]] = []
        #: cycles charged per delivered trap for the dispatch itself.
        self.service_cycles = service_cycles

    @property
    def armed(self) -> bool:
        """Whether any handler is registered (the machine checks this
        once per run to pick the zero-overhead loop when idle)."""
        return bool(self._handlers)

    def register(self, trap_type: type, handler: TrapHandler,
                 name: Optional[str] = None) -> None:
        """Install ``handler`` for ``trap_type`` and its subclasses."""
        label = name or getattr(handler, "__name__",
                                type(handler).__name__)
        self._handlers.append((trap_type, handler, label))

    def unregister(self, handler: TrapHandler) -> int:
        """Remove every registration of ``handler``; returns how many
        entries were removed."""
        before = len(self._handlers)
        self._handlers = [(t, h, n) for (t, h, n) in self._handlers
                          if h is not handler]
        return before - len(self._handlers)

    def clear(self) -> None:
        """Drop all handlers (returns the machine to abort-on-trap)."""
        self._handlers = []

    def dispatch(self, machine, trap: BaseException,
                 report: TrapReport) -> bool:
        """Offer ``trap`` to matching handlers; True when recovered."""
        for trap_type, handler, label in reversed(self._handlers):
            if isinstance(trap, trap_type):
                if handler(machine, trap, report):
                    report.handler = label
                    return True
        return False


@dataclass
class MachineCheckpoint:
    """A restorable snapshot of everything dynamic in a machine.

    Captures the register file, the dedicated state registers, the
    dirty store pages (the chunked backing store, which holds all four
    stacks and the trail contents), the zone limits, run statistics and
    collected solutions — plus, since the resilient-serving work, the
    *timing* state (cache tags, MMU translations, traffic counters via
    :meth:`~repro.memory.memory_system.MemorySystem.timing_state`) and
    the host-side run context (recent-PC ring, entry name, trap log,
    livelock counters, fault-injector progress).  The original
    "timing state is expendable" tradeoff — the paper's host-serviced
    process switch — still holds when restoring onto the machine that
    captured the snapshot, but resuming on a *fresh* machine in another
    process needs all of it to make the resumed run bit-identical
    (solutions **and** ``RunStats``) to the uninterrupted one.

    Checkpoints are pickle-safe (words, zone enums and trap reports all
    pickle) and support **incremental capture**: pass the previous
    checkpoint as ``since`` while the store's ``track_dirty`` flag is
    armed and only chunks written since that capture are copied; clean
    chunks share the previous snapshot's (never mutated) lists.
    ``copied_chunks`` records which chunk keys were actually copied.

    Use :meth:`repro.core.machine.Machine.checkpoint` /
    :meth:`~repro.core.machine.Machine.restore`; after a restore,
    :meth:`~repro.core.machine.Machine.resume` continues the run loop
    from the captured program counter.
    """

    label: str
    state: Dict[str, int]                      # named machine registers
    registers: List[Word]                      # the 64-word register file
    store_chunks: Dict[int, List[Optional[Word]]]
    zone_limits: Dict[Zone, Tuple[int, int, bool]]
    stats: object                              # RunStats copy
    solutions: List[dict]
    output: List[str]
    answer_names: List[str]
    collect_all: bool
    timing: Optional[Dict[str, object]] = None
    host: Optional[Dict[str, object]] = None
    copied_chunks: Tuple[int, ...] = ()

    @property
    def cycles(self) -> int:
        """Simulated cycle count at the capture point."""
        return self.state["cycles"]

    @classmethod
    def capture(cls, machine, label: str = "",
                since: Optional["MachineCheckpoint"] = None) \
            -> "MachineCheckpoint":
        """Snapshot ``machine`` (words are immutable, so page and
        register copies are shallow).

        With ``since`` (a previous capture of the *same run*) and the
        store's dirty tracking armed, chunks untouched since that
        capture are shared rather than copied; the dirty set is
        consumed — it restarts empty so the next delta is relative to
        this checkpoint.
        """
        shadow = machine.shadow
        state = {
            "p": machine.p, "cp": machine.cp, "e": machine.e,
            "b": machine.b, "b0": machine.b0, "h": machine.h,
            "hb": machine.hb, "s": machine.s, "lb": machine.lb,
            "mode_write": machine.mode_write,
            "shallow_flag": machine.shallow_flag,
            "cp_flag": machine.cp_flag,
            "shadow_alt": shadow.alt, "shadow_h": shadow.h,
            "shadow_tr": shadow.tr,
            "trail_top": machine.trail.top,
            "trail_pushes": machine.trail.pushes,
            "trail_checks": machine.trail.checks,
            "cycles": machine.cycles, "max_cycles": machine.max_cycles,
            "running": machine.running, "halted": machine.halted,
            "exhausted": machine.exhausted,
            "stop_on_solution": machine.stop_on_solution,
            "solution_paused": machine.solution_paused,
        }
        store = machine.memory.store
        if since is not None and store.track_dirty:
            dirty = store.dirty_chunks
            base = since.store_chunks
            chunks = {}
            copied = []
            for key, chunk in store._chunks.items():
                if key in dirty or key not in base:
                    chunks[key] = list(chunk)
                    copied.append(key)
                else:
                    chunks[key] = base[key]
        else:
            chunks = {key: list(chunk)
                      for key, chunk in store._chunks.items()}
            copied = sorted(store._chunks)
        if store.track_dirty:
            store.dirty_chunks.clear()
        zones = {zone: (entry.min_address, entry.max_address,
                        entry.write_protected)
                 for zone, entry in machine.memory.zones.entries.items()}
        injector = machine.injector
        host = {
            "recent_pcs": list(machine._recent_pcs),
            "recent_index": machine._recent_index,
            "entry_name": machine._entry_name,
            "retry_pc": machine._retry_pc,
            "retry_kind": machine._retry_kind,
            "retry_count": machine._retry_count,
            "trap_log": (machine.trap_log.snapshot()
                         if isinstance(machine.trap_log, TrapLogRing)
                         else list(machine.trap_log)),
            "injector": (injector.runtime_state()
                         if injector is not None else None),
        }
        return cls(
            label=label,
            state=state,
            registers=list(machine.regs.cells),
            store_chunks=chunks,
            zone_limits=zones,
            stats=machine.stats.copy(),
            solutions=[dict(s) for s in machine.solutions],
            output=list(machine.output),
            answer_names=list(machine.answer_names),
            collect_all=machine.collect_all,
            timing=machine.memory.timing_state(),
            host=host,
            copied_chunks=tuple(copied),
        )

    def restore(self, machine) -> None:
        """Put ``machine`` back into the captured state.

        Safe on the capturing machine and on a fresh machine loaded
        with the same image (resume-on-respawn): every captured
        container is written in place — the fused data path and the
        run loops hold references to the store's chunk dict, the cache
        tag lists and the recent-PC ring.
        """
        state = self.state
        machine.p = state["p"]
        machine.cp = state["cp"]
        machine.e = state["e"]
        machine.b = state["b"]
        machine.b0 = state["b0"]
        machine.h = state["h"]
        machine.hb = state["hb"]
        machine.s = state["s"]
        machine.lb = state["lb"]
        machine.mode_write = state["mode_write"]
        machine.shallow_flag = state["shallow_flag"]
        machine.cp_flag = state["cp_flag"]
        machine.shadow.set(state["shadow_alt"], state["shadow_h"],
                           state["shadow_tr"])
        machine.trail.top = state["trail_top"]
        machine.trail.pushes = state["trail_pushes"]
        machine.trail.checks = state.get("trail_checks", 0)
        machine.cycles = state["cycles"]
        machine.max_cycles = state["max_cycles"]
        machine.running = state["running"]
        machine.halted = state["halted"]
        machine.exhausted = state["exhausted"]
        machine.stop_on_solution = state.get("stop_on_solution", False)
        machine.solution_paused = state.get("solution_paused", False)
        machine.regs.cells[:] = self.registers
        store = machine.memory.store
        store._chunks.clear()
        for key, chunk in self.store_chunks.items():
            store._chunks[key] = list(chunk)
        store.dirty_chunks.clear()
        zones = machine.memory.zones
        for zone, (low, high, protected) in self.zone_limits.items():
            zones.set_limits(zone, low, high)
            zones.set_write_protected(zone, protected)
        machine.stats = self.stats.copy()
        machine.solutions = [dict(s) for s in self.solutions]
        machine.output = list(self.output)
        machine.answer_names = list(self.answer_names)
        machine.collect_all = self.collect_all
        if self.timing is not None:
            machine.memory.restore_timing_state(self.timing)
        host = self.host
        if host is not None:
            machine._recent_pcs[:] = host["recent_pcs"]
            machine._recent_index = host["recent_index"]
            machine._entry_name = host["entry_name"]
            machine._retry_pc = host["retry_pc"]
            machine._retry_kind = host["retry_kind"]
            machine._retry_count = host["retry_count"]
            machine.trap_log = TrapLogRing.restore(host["trap_log"])
            if host["injector"] is not None and machine.injector is not None:
                machine.injector.set_runtime_state(host["injector"])
