"""Predecoded threaded-dispatch code representation.

The seed interpreter re-decodes every instruction on every execution:
an ``Op`` dict dispatch, a cost-table call, attribute loads on the
:class:`~repro.core.instruction.Instruction` and a per-instruction
cycle-limit branch.  KCM itself pays decode cost once per code word —
the prefetch unit of section 3.1.3 — and the bytecode-interpreter
literature (Körner et al., PAPERS.md) shows predecoding plus
threaded-style dispatch is the dominant host-side win for this
interpreter shape.

This module translates the code zone once, at load time, into *bound
step tuples*::

    (handler, static_cost, infer, next_p, instr)

where ``handler`` is the machine's already-bound ``_op_*`` method,
``static_cost`` the precomputed ``CostModel.instruction_cost`` for the
opcode, ``infer`` 0/1 for the inference counter, and ``next_p`` the
fall-through address.  Steps are grouped into *basic blocks*: for every
code address the table holds the straight-line run of steps from that
address to the next block-ending instruction, together with the block's
summed static cost / instruction count / inference count.  The hot loop
(:meth:`Machine._loop_predecoded`) charges those sums once per block
and "uncharges" the unexecuted suffix — whose sums are exactly the
table entry of the fall-through address — when a mid-block failure or
trap transfers control early.  Simulated cycle accounting is therefore
bit-identical to the seed loop; only host work changes.

The table is a pure cache over ``machine.code``: anything that writes
the code zone (the linker's :meth:`LinkedImage.install`, the
incremental loader, the bootstrap-stub allocator) must call
``machine.invalidate_predecode()``.  A code-length check catches
stragglers defensively.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.opcodes import Op

#: Opcodes that always (or typically) end a straight-line block: every
#: unconditional control transfer, plus ESCAPE because builtins may
#: redirect P (call/1) or stop the machine ('$answer', halt/0) without
#: touching P.  Conditional transfers — unification failure, TEST,
#: arithmetic faults — need no entry here: the block loop detects any
#: deviation of P (or of ``running``) after each step and settles the
#: accounts then.
BLOCK_ENDERS = frozenset({
    Op.CALL, Op.EXECUTE, Op.PROCEED, Op.JUMP, Op.FAIL, Op.HALT,
    Op.TRY, Op.RETRY, Op.TRUST,
    Op.SWITCH_ON_TERM, Op.SWITCH_ON_CONSTANT, Op.SWITCH_ON_STRUCTURE,
    Op.ESCAPE,
})

#: One predecoded instruction: (handler, static_cost, infer, next_p, instr).
Step = Tuple[Callable, int, int, int, object]

#: One table entry: (steps-from-here-to-block-end, static-cycle sum,
#: instruction count, inference count).
BlockView = Tuple[Tuple[Step, ...], int, int, int]


class PredecodedCode:
    """The per-address block table for one machine's code zone."""

    __slots__ = ("entries", "code_len")

    def __init__(self, entries: List[Optional[BlockView]], code_len: int):
        self.entries = entries
        self.code_len = code_len

    def valid_for(self, code: list) -> bool:
        """Cheap staleness check: the code zone is append-mostly, so a
        length change catches every install/extend that forgot the
        explicit ``invalidate_predecode`` call."""
        return self.code_len == len(code)


def predecode(code: list, dispatch: Dict[Op, Callable],
              static_costs: Dict[Op, int]) -> PredecodedCode:
    """Translate ``code`` into a :class:`PredecodedCode` table.

    ``dispatch`` maps opcodes to bound handlers (the machine's dispatch
    table); ``static_costs`` maps opcodes to their fixed per-execution
    cycle charge (:meth:`CostModel.static_cost_table`).

    Entries are built right to left so each address's block view shares
    the step tuples (not the tuples-of-steps) of its suffix addresses:
    the suffix sums needed for mid-block uncharging are then simply the
    table entry at the fall-through address.
    """
    n = len(code)
    steps: List[Optional[Step]] = [None] * n
    for address, instr in enumerate(code):
        if instr is None:
            continue  # continuation word of a multi-word instruction
        op = instr.op
        steps[address] = (dispatch[op], static_costs[op],
                          1 if instr.infer else 0,
                          address + instr.size, instr)

    entries: List[Optional[BlockView]] = [None] * n
    for address in range(n - 1, -1, -1):
        step = steps[address]
        if step is None:
            continue
        next_p = step[3]
        if (code[address].op in BLOCK_ENDERS
                or next_p >= n or entries[next_p] is None):
            entries[address] = ((step,), step[1], 1, step[2])
        else:
            tail_steps, tail_cost, tail_instr, tail_infer = entries[next_p]
            entries[address] = ((step,) + tail_steps,
                                step[1] + tail_cost,
                                1 + tail_instr,
                                step[2] + tail_infer)
    return PredecodedCode(entries, n)
