"""Predecoded threaded-dispatch code representation.

The seed interpreter re-decodes every instruction on every execution:
an ``Op`` dict dispatch, a cost-table call, attribute loads on the
:class:`~repro.core.instruction.Instruction` and a per-instruction
cycle-limit branch.  KCM itself pays decode cost once per code word —
the prefetch unit of section 3.1.3 — and the bytecode-interpreter
literature (Körner et al., PAPERS.md) shows predecoding plus
threaded-style dispatch is the dominant host-side win for this
interpreter shape.

This module translates the code zone once, at load time, into *bound
step tuples*::

    (handler, static_cost, infer, next_p, instr)

where ``handler`` is the machine's already-bound ``_op_*`` method,
``static_cost`` the precomputed ``CostModel.instruction_cost`` for the
opcode, ``infer`` 0/1 for the inference counter, and ``next_p`` the
fall-through address.  Steps are grouped into *basic blocks*: for every
code address the table holds the straight-line run of steps from that
address to the next block-ending instruction, together with the block's
summed static cost / instruction count / inference count.  The hot loop
(:meth:`Machine._loop_predecoded`) charges those sums once per block
and "uncharges" the unexecuted suffix — whose sums are exactly the
table entry of the fall-through address — when a mid-block failure or
trap transfers control early.  Simulated cycle accounting is therefore
bit-identical to the seed loop; only host work changes.

On top of the block views sits the superinstruction layer
(:mod:`repro.core.superops`): when a fuser is supplied, blocks whose
opcode runs the profile marked hot are compiled into single closures
and their entries carry that closure in the ``fused`` slot (with the
same sums, so mid-block uncharges that land on a fused fall-through
address still read correct suffix totals).  The per-address plain
steps survive in :attr:`PredecodedCode.singles` for the recovering
loop, which always executes one instruction at a time.

The table is a pure cache over ``machine.code``: anything that writes
the code zone (the linker's :meth:`LinkedImage.install`, the
incremental loader, the bootstrap-stub allocator, ``patch_code``) must
call ``machine.invalidate_predecode()`` or bump the machine's code
generation.  Staleness is checked on both the code length *and* the
generation counter — a length check alone misses same-length in-place
code-word rewrites.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.opcodes import Op

#: Opcodes that always (or typically) end a straight-line block: every
#: unconditional control transfer, plus ESCAPE because builtins may
#: redirect P (call/1) or stop the machine ('$answer', halt/0) without
#: touching P.  Conditional transfers — unification failure, TEST,
#: arithmetic faults — need no entry here: the block loop detects any
#: deviation of P (or of ``running``) after each step and settles the
#: accounts then.
BLOCK_ENDERS = frozenset({
    Op.CALL, Op.EXECUTE, Op.PROCEED, Op.JUMP, Op.FAIL, Op.HALT,
    Op.TRY, Op.RETRY, Op.TRUST,
    Op.SWITCH_ON_TERM, Op.SWITCH_ON_CONSTANT, Op.SWITCH_ON_STRUCTURE,
    Op.ESCAPE,
})

#: One predecoded instruction: (handler, static_cost, infer, next_p, instr).
Step = Tuple[Callable, int, int, int, object]

#: One table entry: (steps-from-here-to-block-end, static-cycle sum,
#: instruction count, inference count, fused-closure-or-None).  Fused
#: entries keep their sums but carry an empty steps tuple — the closure
#: embodies the whole run.
BlockView = Tuple[Tuple[Step, ...], int, int, int, Optional[Callable]]


class PredecodedCode:
    """The per-address block table for one machine's code zone."""

    __slots__ = ("entries", "singles", "code_len", "generation",
                 "fused_count")

    #: Total code-zone translations performed in this process; serving
    #: regression tests snapshot it around ``reset_for_reuse`` cycles
    #: to prove warm engines do not re-translate (mirrors the linker's
    #: ``links_performed`` counter).
    translations_performed = 0

    def __init__(self, entries: List[Optional[BlockView]], code_len: int,
                 singles: Optional[List[Optional[Step]]] = None,
                 generation: int = 0, fused_count: int = 0):
        self.entries = entries
        self.singles = singles if singles is not None else \
            [entry[0][0] if entry and entry[0] else None
             for entry in entries]
        self.code_len = code_len
        self.generation = generation
        self.fused_count = fused_count

    def valid_for(self, code: list, generation: Optional[int] = None) -> bool:
        """Staleness check: code length (catches installs/extends that
        forgot the explicit ``invalidate_predecode`` call) plus, when
        given, the machine's code-zone generation counter (catches
        same-length in-place rewrites, e.g. ``patch_code``)."""
        if self.code_len != len(code):
            return False
        return generation is None or self.generation == generation


def predecode(code: list, dispatch: Dict[Op, Callable],
              static_costs: Dict[Op, int],
              fuser=None, generation: int = 0) -> PredecodedCode:
    """Translate ``code`` into a :class:`PredecodedCode` table.

    ``dispatch`` maps opcodes to bound handlers (the machine's dispatch
    table); ``static_costs`` maps opcodes to their fixed per-execution
    cycle charge (:meth:`CostModel.static_cost_table`).  ``fuser``, when
    given, is a :class:`repro.core.superops.SuperopFuser` consulted per
    block entry; blocks it fuses execute as one closure on the fast
    loop.  ``generation`` stamps the table with the machine's code-zone
    generation for the :meth:`PredecodedCode.valid_for` check.

    Entries are built right to left so each address's block view shares
    the step tuples (not the tuples-of-steps) of its suffix addresses:
    the suffix sums needed for mid-block uncharging are then simply the
    table entry at the fall-through address.
    """
    n = len(code)
    steps: List[Optional[Step]] = [None] * n
    for address, instr in enumerate(code):
        if instr is None:
            continue  # continuation word of a multi-word instruction
        op = instr.op
        steps[address] = (dispatch[op], static_costs[op],
                          1 if instr.infer else 0,
                          address + instr.size, instr)

    entries: List[Optional[BlockView]] = [None] * n
    for address in range(n - 1, -1, -1):
        step = steps[address]
        if step is None:
            continue
        next_p = step[3]
        if (code[address].op in BLOCK_ENDERS
                or next_p >= n or entries[next_p] is None):
            entries[address] = ((step,), step[1], 1, step[2], None)
        else:
            tail_steps, tail_cost, tail_instr, tail_infer, _ = \
                entries[next_p]
            entries[address] = ((step,) + tail_steps,
                                step[1] + tail_cost,
                                1 + tail_instr,
                                step[2] + tail_infer,
                                None)

    fused_count = 0
    if fuser is not None:
        for address in range(n):
            entry = entries[address]
            if entry is None:
                continue
            closure = fuser.fuse(address, entry[0])
            if closure is not None:
                entries[address] = ((), entry[1], entry[2], entry[3],
                                    closure)
                fused_count += 1

    PredecodedCode.translations_performed += 1
    return PredecodedCode(entries, n, singles=steps,
                          generation=generation, fused_count=fused_count)
