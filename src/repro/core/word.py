"""The 64-bit tagged data word (paper figure 2).

:class:`Word` is the unit the whole simulator trades in: register file
cells, data-memory cells and trail entries are all Words.  A Word pairs
a 32-bit tag part with a 32-bit value part; constructors below build the
common shapes (integers, atoms, references, list/structure pointers).

Floats deserve a note: KCM uses 32-bit IEEE single precision (section
3.1.1, "32 bit IEEE data format").  We round every float value through
single precision so arithmetic results match what the FPU would
produce, observable in tests as reduced precision.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.core.tags import (
    TAG_TYPE_SHIFT,
    TAG_ZONE_SHIFT,
    TYPE_BY_INDEX,
    TYPE_MASK,
    Type,
    Zone,
    ZONE_BY_INDEX,
    ZONE_MASK,
    make_tag,
    tag_gc_link,
    tag_gc_mark,
    tag_type,
    with_gc_link,
    with_gc_mark,
    VALUE_MASK,
)

# Signed range of the 32-bit value part, used for integer wrap-around.
INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1


def to_single_precision(x: float) -> float:
    """Round a Python float through IEEE single precision (the FPU's
    32-bit data format)."""
    return struct.unpack("<f", struct.pack("<f", x))[0]


def wrap_int32(n: int) -> int:
    """Wrap a Python integer into the signed 32-bit range of the value
    part, the way a 32-bit ALU would."""
    n &= 0xFFFFFFFF
    return n - (1 << 32) if n > INT_MAX else n


class Word:
    """One 64-bit KCM word: ``(tag, value)``.

    ``tag`` is the 32-bit tag part (see :mod:`repro.core.tags`);
    ``value`` is the 32-bit value part, held as a signed Python int for
    integers and as an unsigned word address for pointers.  Words are
    immutable; memory cells are replaced, never mutated.
    """

    __slots__ = ("tag", "value", "type", "zone")

    def __init__(self, tag: int, value: Union[int, float]):
        self.tag = tag
        self.value = value
        #: The 4-bit type and zone fields, decoded eagerly: reading
        #: ``.type``/``.zone`` are the hottest operations in the
        #: simulator (deref, bind, zone check, MWAC dispatch) and
        #: outnumber Word creations, so a plain slot beats a property
        #: frame per access.  The type decode is total over the 16
        #: possible field values; the zone decode leaves ``None`` in
        #: the slot for the 8 invalid encodings — accessors that must
        #: preserve the seed's raise-on-access behaviour (deref) call
        #: :func:`repro.core.tags.tag_zone` on the tag when they see
        #: ``None``.
        self.type = TYPE_BY_INDEX[(tag >> TAG_TYPE_SHIFT) & TYPE_MASK]
        self.zone = ZONE_BY_INDEX[(tag >> TAG_ZONE_SHIFT) & ZONE_MASK]

    # -- field accessors ----------------------------------------------------

    @property
    def gc_mark(self) -> bool:
        """The garbage-collection mark bit."""
        return tag_gc_mark(self.tag)

    @property
    def gc_link(self) -> bool:
        """The second garbage-collection bit."""
        return tag_gc_link(self.tag)

    def is_pointer(self) -> bool:
        """True when the value part is a data-space address."""
        t = tag_type(self.tag)
        return t in (Type.REF, Type.STRUCT, Type.LIST, Type.DATA_PTR,
                     Type.ENV_PTR, Type.CP_PTR, Type.TRAIL_PTR)

    def is_ref(self) -> bool:
        """True for reference words (type REF)."""
        return tag_type(self.tag) is Type.REF

    def is_number(self) -> bool:
        """True for the two numeric immediate types."""
        return tag_type(self.tag) in (Type.INT, Type.FLOAT)

    # -- TVM operations (section 3.1.1) -------------------------------------

    def with_gc_mark(self, value: bool) -> "Word":
        """Copy of this word with the GC mark bit set/cleared (TVM op)."""
        return Word(with_gc_mark(self.tag, value), self.value)

    def with_gc_link(self, value: bool) -> "Word":
        """Copy of this word with the GC link bit set/cleared (TVM op)."""
        return Word(with_gc_link(self.tag, value), self.value)

    def swapped(self) -> "Word":
        """Copy with tag and value parts exchanged (a TVM capability the
        paper lists; used by system code, exposed for completeness)."""
        return Word(int(self.value) & VALUE_MASK, self.tag)

    # -- comparison / hashing ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Word)
                and self.tag == other.tag and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.tag, self.value))

    def __repr__(self) -> str:
        t = self.type
        z = self.zone
        zone_part = f",{z.name}" if z is not None and z is not Zone.NONE \
            else ""
        return f"<{t.name}{zone_part}:{self.value}>"


# ---------------------------------------------------------------------------
# Constructors for the common word shapes
# ---------------------------------------------------------------------------

# Tag constants, precomputed once per (type, zone): the constructors
# below run inside the interpreter's hottest handlers, and packing the
# tag through make_tag on every call was measurable host overhead.
_INT_TAG = make_tag(Type.INT)
_FLOAT_TAG = make_tag(Type.FLOAT)
_ATOM_TAG = make_tag(Type.ATOM)
_NIL_TAG = make_tag(Type.NIL)
_FUNCTOR_TAG = make_tag(Type.FUNCTOR)
_CODE_PTR_TAG = make_tag(Type.CODE_PTR, Zone.CODE)
_REF_TAGS = {zone: make_tag(Type.REF, zone) for zone in Zone}
_LIST_TAGS = {zone: make_tag(Type.LIST, zone) for zone in Zone}
_STRUCT_TAGS = {zone: make_tag(Type.STRUCT, zone) for zone in Zone}
_DATA_PTR_TAGS = {zone: make_tag(Type.DATA_PTR, zone) for zone in Zone}


def make_int(n: int) -> Word:
    """An immediate 32-bit signed integer word (wraps like the ALU)."""
    return Word(_INT_TAG, wrap_int32(n))


def make_float(x: float) -> Word:
    """An immediate 32-bit IEEE float word (rounded to single precision)."""
    return Word(_FLOAT_TAG, to_single_precision(x))


def make_atom(atom_index: int) -> Word:
    """An atom constant; the value is an index into the atom table."""
    return Word(_ATOM_TAG, atom_index)


def make_nil() -> Word:
    """The empty-list constant ``[]``."""
    return Word(_NIL_TAG, 0)


def make_ref(address: int, zone: Zone) -> Word:
    """A reference (possibly unbound variable) pointing at ``address``."""
    return Word(_REF_TAGS[zone], address)


def make_unbound(address: int, zone: Zone) -> Word:
    """An unbound variable: a REF whose value is its own address (the
    standard WAM self-reference representation)."""
    return Word(_REF_TAGS[zone], address)


def make_list(address: int, zone: Zone = Zone.GLOBAL) -> Word:
    """A list pointer to a cons cell (two consecutive words) on the
    global stack."""
    return Word(_LIST_TAGS[zone], address)


def make_struct(address: int, zone: Zone = Zone.GLOBAL) -> Word:
    """A structure pointer to a functor cell on the global stack."""
    return Word(_STRUCT_TAGS[zone], address)


def make_functor(functor_index: int) -> Word:
    """A functor descriptor cell (name/arity id into the functor table)."""
    return Word(_FUNCTOR_TAG, functor_index)


def make_data_ptr(address: int, zone: Zone) -> Word:
    """An untyped data pointer used by the runtime system (stack links,
    choice-point fields, trail entries)."""
    return Word(_DATA_PTR_TAGS[zone], address)


def make_code_ptr(address: int) -> Word:
    """A pointer into the code address space (continuation pointers,
    alternative-clause addresses in choice points)."""
    return Word(_CODE_PTR_TAG, address)


#: A fixed all-zero word used to initialise memory; reads of it in tests
#: make uninitialised accesses obvious.
ZERO_WORD = make_int(0)
