"""The 64 x 64-bit register file and the Register Address Calculator.

Section 3.1.1: "Source and destination for all data manipulation
instructions are registers in the 64 x 64 bit register file.  The
addresses are supplied to the register file by the Register Address
Calculator RAC".  Section 3.1.5 adds that the RAC "can increment and
decrement register addresses and therefore a microcode loop can
store/load one register per cycle" for choice-point creation, and that
shallow backtracking saves "three state registers ... into shadow
registers in the register file".

Layout used here (an implementation choice the paper leaves open):

======  =========================================================
cells   contents
======  =========================================================
0..55   X registers (argument registers A1..An live in X0..)
56..58  shadow registers: alternative-P, H, TR (shallow backtrack)
59..63  reserved for microcode temporaries
======  =========================================================

State registers with dedicated hardware (P, CP, E, B, H, TR, S, HB,
LB, B0) are attributes of the machine itself, not file cells — they
feed dedicated data paths (trail comparators, prefetch unit).
"""

from __future__ import annotations

from typing import List

from repro.core.word import Word, ZERO_WORD

FILE_SIZE = 64
X_REGISTERS = 56
SHADOW_ALT = 56
SHADOW_H = 57
SHADOW_TR = 58


class RegisterFile:
    """The register file plus RAC-style block save/load helpers."""

    def __init__(self):
        self.cells: List[Word] = [ZERO_WORD] * FILE_SIZE

    def clear(self) -> None:
        """Zero every cell in place (engine reuse: a reused machine
        must present the same power-on register file as a fresh one)."""
        self.cells[:] = [ZERO_WORD] * FILE_SIZE

    def read(self, index: int) -> Word:
        """Read one register."""
        return self.cells[index]

    def write(self, index: int, word: Word) -> None:
        """Write one register."""
        self.cells[index] = word

    # -- X registers ------------------------------------------------------------

    def x(self, index: int) -> Word:
        """Read X register ``index`` (0-based; A_i is x(i-1))."""
        if index >= X_REGISTERS:
            raise IndexError(f"X register {index} out of range")
        return self.cells[index]

    def set_x(self, index: int, word: Word) -> None:
        """Write X register ``index``."""
        if index >= X_REGISTERS:
            raise IndexError(f"X register {index} out of range")
        self.cells[index] = word

    def arguments(self, arity: int) -> List[Word]:
        """Snapshot A1..A_arity (a RAC incrementing loop: one register
        per cycle; the caller accounts the cycles)."""
        return self.cells[:arity]

    def restore_arguments(self, words: List[Word]) -> None:
        """Restore A1..A_n from a choice point (RAC loop)."""
        self.cells[:len(words)] = words

    # -- shadow registers (shallow backtracking) -----------------------------------

    def save_shadow(self, alt: Word, h: Word, tr: Word) -> None:
        """Save the three state registers of section 3.1.5."""
        self.cells[SHADOW_ALT] = alt
        self.cells[SHADOW_H] = h
        self.cells[SHADOW_TR] = tr

    def shadow(self) -> "tuple[Word, Word, Word]":
        """The (alternative, H, TR) shadow triple."""
        return (self.cells[SHADOW_ALT], self.cells[SHADOW_H],
                self.cells[SHADOW_TR])


class ShadowState:
    """Decoded shallow-backtracking shadow state.

    A convenience view over the three shadow registers holding plain
    Python integers (code address, heap top, trail top); the machine
    keeps one instance and mirrors it into the register file through
    :class:`RegisterFile` so both views agree (tests assert this).
    """

    __slots__ = ("alt", "h", "tr")

    def __init__(self, alt: int = 0, h: int = 0, tr: int = 0):
        self.alt = alt
        self.h = h
        self.tr = tr

    def set(self, alt: int, h: int, tr: int) -> None:
        """Record a shallow entry point."""
        self.alt = alt
        self.h = h
        self.tr = tr

    def __repr__(self) -> str:
        return f"ShadowState(alt={self.alt}, h={self.h:#x}, tr={self.tr:#x})"
