"""Exception hierarchy for the KCM reproduction.

Every error raised by the simulator, compiler or front end derives from
:class:`KCMError` so library users can catch everything from this package
with a single ``except`` clause.  Traps that the real hardware would raise
(zone violations, page faults, stack overflows) are modelled as dedicated
exception classes so tests can assert on the precise trap kind.

Traps carry *structured* fault information (zone, faulting address,
virtual page) in addition to their message, because the trap-and-recovery
subsystem (:mod:`repro.core.traps`, :mod:`repro.recovery`) dispatches on
it: a software handler cannot parse prose to find out which zone
overflowed.  Runtime errors escaping :meth:`Machine.run` additionally
carry the partial :class:`~repro.core.statistics.RunStats` and the program
counter at the fault (``stats`` / ``pc`` attributes), so callers can
report how far execution got before the error.

See ``docs/TRAPS.md`` for the trap vector and handler contract.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "KCMError",
    "PrologSyntaxError",
    "CompileError",
    "LinkError",
    "MachineError",
    "MachineTrap",
    "ZoneTrap",
    "StackOverflowTrap",
    "PageFault",
    "ProtectionFault",
    "SpuriousTrap",
    "InstructionError",
    "ArithmeticError_",
    "ExistenceError",
    "CycleLimitExceeded",
    "UnrecoverableTrap",
]


class KCMError(Exception):
    """Base class for all errors raised by this package."""


class PrologSyntaxError(KCMError):
    """Raised by the reader when source text is not valid Prolog.

    Carries the ``line`` and ``column`` (1-based) of the offending token
    when known, to support precise error reporting in tools.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CompileError(KCMError):
    """Raised when a clause cannot be compiled to KCM code."""


class LinkError(KCMError):
    """Raised by the static linker (undefined predicate, duplicate, ...)."""


class MachineError(KCMError):
    """Base class for runtime errors inside the simulated machine.

    When one escapes :meth:`Machine.run`, the machine attaches:

    - ``stats`` — the partial :class:`RunStats` of the interrupted run
      (cycles, instructions, ... up to the fault), and
    - ``pc`` — the program counter at the point of the error,

    so callers can report how far execution got.  Both are ``None`` for
    errors raised outside a run.
    """

    #: partial run statistics, attached by Machine.run on the way out.
    stats: Optional[object] = None
    #: program counter at the fault, attached by Machine.run.
    pc: Optional[int] = None


class MachineTrap(MachineError):
    """Base class for conditions the hardware signals as traps.

    A trap is recoverable in principle: the host interface delivers it
    to a software handler which may repair the cause (grow a zone, map
    a page, collect garbage) and restart the faulting instruction
    (paper sections 2.2 and 4).  The trap-vector layer in
    :class:`repro.core.machine.Machine` implements exactly that; a trap
    with no registered handler aborts the run.

    ``report`` is filled in by the trap dispatcher with the
    :class:`repro.core.traps.TrapReport` describing the machine state
    at the fault.
    """

    #: structured machine-state snapshot, attached by the trap vector.
    report: Optional[object] = None


class ZoneTrap(MachineTrap):
    """Zone check violation: bad type for a zone, limits exceeded, or a
    write to a write-protected zone (paper section 3.2.3)."""

    def __init__(self, message: str, zone=None,
                 address: Optional[int] = None):
        super().__init__(message)
        #: the :class:`repro.core.tags.Zone` the access went through.
        self.zone = zone
        #: the faulting word address, when known.
        self.address = address


class StackOverflowTrap(ZoneTrap):
    """A stack pointer moved beyond its zone limits (hardware stack
    overflow check, detected on the next access through the pointer)."""


class PageFault(MachineTrap):
    """Access to a virtual page with no valid translation (section 3.2.5).

    Carries the faulting ``virtual_page`` and whether the access went
    through the ``code_space`` table, so the page-fault handler can
    service the miss without re-deriving the address.
    """

    def __init__(self, message: str, virtual_page: Optional[int] = None,
                 code_space: bool = False):
        super().__init__(message)
        self.virtual_page = virtual_page
        self.code_space = code_space


class ProtectionFault(MachineTrap):
    """MMU-level access-rights violation on a physical page."""

    def __init__(self, message: str, virtual_page: Optional[int] = None,
                 code_space: bool = False):
        super().__init__(message)
        self.virtual_page = virtual_page
        self.code_space = code_space


class SpuriousTrap(MachineTrap):
    """A trap with no underlying fault.

    Raised only by the deterministic fault-injection harness
    (:mod:`repro.recovery.inject`) to exercise the dispatch/resume path:
    the correct handler action is to do nothing and restart the
    instruction.  The real hardware can produce the equivalent (e.g. a
    transient parity trap), which is why resuming from a no-fault trap
    must work.
    """


class InstructionError(MachineError):
    """Malformed or unknown instruction reached the decoder."""


class ArithmeticError_(MachineError):
    """Evaluation error inside ``is/2`` or an arithmetic comparison
    (unbound variable, non-numeric operand, division by zero)."""


class ExistenceError(MachineError):
    """Call to a predicate with no definition and no escape entry."""


class CycleLimitExceeded(MachineError):
    """The machine ran longer than the configured cycle budget.

    Guards tests and benchmarks against accidental infinite loops in
    compiled programs; the real hardware has no such notion.  The
    message names the entry predicate and the most recently executed
    code addresses (a small ring buffer kept by the run loop) so a
    runaway loop can be located without re-running under a tracer.
    The machine state is left intact, so after raising this a caller
    may extend the budget and :meth:`Machine.resume` the run.
    """

    def __init__(self, message: str, entry: Optional[str] = None,
                 recent_addresses: Optional[list] = None):
        super().__init__(message)
        #: ``name/arity`` of the predicate the run was started from.
        self.entry = entry
        #: last executed code addresses, oldest first.
        self.recent_addresses = recent_addresses or []


class UnrecoverableTrap(MachineError):
    """A trap reached the trap vector but no handler could recover it.

    Wraps the original trap (``__cause__``) and carries its
    :class:`~repro.core.traps.TrapReport` as ``report``.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
