"""Exception hierarchy for the KCM reproduction.

Every error raised by the simulator, compiler or front end derives from
:class:`KCMError` so library users can catch everything from this package
with a single ``except`` clause.  Traps that the real hardware would raise
(zone violations, page faults, stack overflows) are modelled as dedicated
exception classes so tests can assert on the precise trap kind.
"""

from __future__ import annotations


class KCMError(Exception):
    """Base class for all errors raised by this package."""


class PrologSyntaxError(KCMError):
    """Raised by the reader when source text is not valid Prolog.

    Carries the ``line`` and ``column`` (1-based) of the offending token
    when known, to support precise error reporting in tools.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CompileError(KCMError):
    """Raised when a clause cannot be compiled to KCM code."""


class LinkError(KCMError):
    """Raised by the static linker (undefined predicate, duplicate, ...)."""


class MachineError(KCMError):
    """Base class for runtime errors inside the simulated machine."""


class MachineTrap(MachineError):
    """Base class for conditions the hardware signals as traps."""


class ZoneTrap(MachineTrap):
    """Zone check violation: bad type for a zone, limits exceeded, or a
    write to a write-protected zone (paper section 3.2.3)."""


class StackOverflowTrap(ZoneTrap):
    """A stack pointer moved beyond its zone limits (hardware stack
    overflow check, detected on the next access through the pointer)."""


class PageFault(MachineTrap):
    """Access to a virtual page with no valid translation (section 3.2.5)."""


class ProtectionFault(MachineTrap):
    """MMU-level access-rights violation on a physical page."""


class InstructionError(MachineError):
    """Malformed or unknown instruction reached the decoder."""


class ArithmeticError_(MachineError):
    """Evaluation error inside ``is/2`` or an arithmetic comparison
    (unbound variable, non-numeric operand, division by zero)."""


class ExistenceError(MachineError):
    """Call to a predicate with no definition and no escape entry."""


class CycleLimitExceeded(MachineError):
    """The machine ran longer than the configured cycle budget.

    Guards tests and benchmarks against accidental infinite loops in
    compiled programs; the real hardware has no such notion.
    """
